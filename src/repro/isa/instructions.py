"""Instruction set definition.

Every executable operation of the miniature RISC machine is listed here as a
member of :class:`Opcode`, tagged with the :class:`Format` that determines its
operand fields and its binary encoding layout.  Decoded instructions are
represented by the immutable :class:`Instruction` dataclass; the functional
simulator dispatches directly on ``Opcode`` so encoding is only exercised when
programs are written to or read from disk.

Formats
-------
``R``    register-register ALU:        ``op rd, rs1, rs2``
``I``    register-immediate ALU:       ``op rd, rs1, imm``
``LOAD`` memory load:                  ``op rd, imm(rs1)``
``STORE`` memory store:                ``op rs2, imm(rs1)``
``B``    conditional branch:           ``op rs1, rs2, target``
``J``    jump-and-link:                ``op rd, target``
``JR``   indirect jump-and-link:       ``op rd, rs1, imm``
``U``    upper immediate:              ``op rd, imm``
``SYS``  environment call / halt:      ``op``
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class Format(enum.Enum):
    """Operand/encoding format classes."""

    R = "R"
    I = "I"  # noqa: E741 - conventional ISA format name
    LOAD = "LOAD"
    STORE = "STORE"
    B = "B"
    J = "J"
    JR = "JR"
    U = "U"
    SYS = "SYS"


class Opcode(enum.IntEnum):
    """All machine opcodes, with stable numeric values used by the encoder."""

    # R-type ALU
    ADD = 0x01
    SUB = 0x02
    MUL = 0x03
    DIV = 0x04
    REM = 0x05
    AND = 0x06
    OR = 0x07
    XOR = 0x08
    SLL = 0x09
    SRL = 0x0A
    SRA = 0x0B
    SLT = 0x0C
    SLTU = 0x0D
    # I-type ALU
    ADDI = 0x20
    ANDI = 0x21
    ORI = 0x22
    XORI = 0x23
    SLLI = 0x24
    SRLI = 0x25
    SRAI = 0x26
    SLTI = 0x27
    # Memory
    LW = 0x30
    LB = 0x31
    SW = 0x34
    SB = 0x35
    # Conditional branches (the objects of study)
    BEQ = 0x40
    BNE = 0x41
    BLT = 0x42
    BGE = 0x43
    BLTU = 0x44
    BGEU = 0x45
    # Unconditional control
    JAL = 0x50
    JALR = 0x51
    # Upper immediate
    LUI = 0x60
    # Environment
    ECALL = 0x70
    HALT = 0x71


#: Map from opcode to its format class.
OPCODE_FORMAT = {
    Opcode.ADD: Format.R,
    Opcode.SUB: Format.R,
    Opcode.MUL: Format.R,
    Opcode.DIV: Format.R,
    Opcode.REM: Format.R,
    Opcode.AND: Format.R,
    Opcode.OR: Format.R,
    Opcode.XOR: Format.R,
    Opcode.SLL: Format.R,
    Opcode.SRL: Format.R,
    Opcode.SRA: Format.R,
    Opcode.SLT: Format.R,
    Opcode.SLTU: Format.R,
    Opcode.ADDI: Format.I,
    Opcode.ANDI: Format.I,
    Opcode.ORI: Format.I,
    Opcode.XORI: Format.I,
    Opcode.SLLI: Format.I,
    Opcode.SRLI: Format.I,
    Opcode.SRAI: Format.I,
    Opcode.SLTI: Format.I,
    Opcode.LW: Format.LOAD,
    Opcode.LB: Format.LOAD,
    Opcode.SW: Format.STORE,
    Opcode.SB: Format.STORE,
    Opcode.BEQ: Format.B,
    Opcode.BNE: Format.B,
    Opcode.BLT: Format.B,
    Opcode.BGE: Format.B,
    Opcode.BLTU: Format.B,
    Opcode.BGEU: Format.B,
    Opcode.JAL: Format.J,
    Opcode.JALR: Format.JR,
    Opcode.LUI: Format.U,
    Opcode.ECALL: Format.SYS,
    Opcode.HALT: Format.SYS,
}

#: Opcodes that are conditional branches — the instructions this whole
#: reproduction profiles, analyses and predicts.
CONDITIONAL_BRANCHES = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLTU, Opcode.BGEU}
)

#: Opcodes that transfer control unconditionally.
UNCONDITIONAL_JUMPS = frozenset({Opcode.JAL, Opcode.JALR})


@dataclass(frozen=True)
class Instruction:
    """A decoded machine instruction.

    Fields that do not apply to the opcode's format are ``None``/0.  The
    simulator treats instances as immutable; programs share them freely.

    Attributes:
        opcode: the operation.
        rd: destination register number (R/I/LOAD/J/JR/U formats).
        rs1: first source register (R/I/LOAD/STORE/B/JR formats).
        rs2: second source register (R/STORE/B formats).
        imm: immediate operand; for B/J formats this is a *byte* offset
            relative to the branch's own address (resolved by the assembler).
        label: optional symbolic target kept for disassembly/debugging.
    """

    opcode: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    label: Optional[str] = None

    @property
    def format(self) -> Format:
        """The instruction's format class."""
        return OPCODE_FORMAT[self.opcode]

    @property
    def is_conditional_branch(self) -> bool:
        """True for the six conditional branch opcodes."""
        return self.opcode in CONDITIONAL_BRANCHES

    @property
    def is_control(self) -> bool:
        """True for any control transfer (conditional or not)."""
        return (
            self.opcode in CONDITIONAL_BRANCHES
            or self.opcode in UNCONDITIONAL_JUMPS
        )

    @property
    def is_direct_jump(self) -> bool:
        """True for ``jal`` — an unconditional jump with a static target."""
        return self.opcode is Opcode.JAL

    @property
    def is_indirect_jump(self) -> bool:
        """True for ``jalr`` — the target is computed at run time."""
        return self.opcode is Opcode.JALR

    @property
    def is_call(self) -> bool:
        """True for jumps that link a return address (``rd != zero``)."""
        return self.opcode in UNCONDITIONAL_JUMPS and self.rd != 0

    @property
    def is_return(self) -> bool:
        """True for ``jalr zero, ra, 0`` — the canonical ``ret``."""
        return (
            self.opcode is Opcode.JALR
            and self.rd == 0
            and self.rs1 == 1
            and self.imm == 0
        )

    @property
    def is_halt(self) -> bool:
        """True for the machine-stop instruction."""
        return self.opcode is Opcode.HALT

    @property
    def falls_through(self) -> bool:
        """True if execution can continue at the next instruction.

        Conditional branches fall through on the not-taken path; calls fall
        through once the callee returns.  Unconditional non-linking jumps,
        returns, other indirect jumps and ``halt`` do not.
        """
        if self.opcode in CONDITIONAL_BRANCHES:
            return True
        if self.opcode in UNCONDITIONAL_JUMPS:
            return self.is_call
        return self.opcode is not Opcode.HALT

    def disassemble(self) -> str:
        """Render the instruction in assembler syntax."""
        from .registers import register_name as rn

        fmt = self.format
        name = self.opcode.name.lower()
        if fmt is Format.R:
            return f"{name} {rn(self.rd)}, {rn(self.rs1)}, {rn(self.rs2)}"
        if fmt is Format.I:
            return f"{name} {rn(self.rd)}, {rn(self.rs1)}, {self.imm}"
        if fmt is Format.LOAD:
            return f"{name} {rn(self.rd)}, {self.imm}({rn(self.rs1)})"
        if fmt is Format.STORE:
            return f"{name} {rn(self.rs2)}, {self.imm}({rn(self.rs1)})"
        if fmt is Format.B:
            target = self.label if self.label else f".{self.imm:+d}"
            return f"{name} {rn(self.rs1)}, {rn(self.rs2)}, {target}"
        if fmt is Format.J:
            target = self.label if self.label else f".{self.imm:+d}"
            return f"{name} {rn(self.rd)}, {target}"
        if fmt is Format.JR:
            return f"{name} {rn(self.rd)}, {rn(self.rs1)}, {self.imm}"
        if fmt is Format.U:
            return f"{name} {rn(self.rd)}, {self.imm}"
        return name
