"""Miniature RISC instruction set architecture.

This package defines the ISA executed by the trace substrate: register file
(:mod:`~repro.isa.registers`), opcodes and decoded instruction objects
(:mod:`~repro.isa.instructions`), 32-bit binary encoding
(:mod:`~repro.isa.encoding`) and the loadable :class:`~repro.isa.program.
Program` container.
"""

from .encoding import EncodingError, decode, encode
from .instructions import (
    CONDITIONAL_BRANCHES,
    UNCONDITIONAL_JUMPS,
    Format,
    Instruction,
    Opcode,
)
from .program import (
    DATA_BASE,
    INSTRUCTION_SIZE,
    STACK_TOP,
    TEXT_BASE,
    Program,
)
from .registers import (
    ABI_NAMES,
    NUM_REGISTERS,
    is_register,
    register_name,
    register_number,
)

__all__ = [
    "ABI_NAMES",
    "CONDITIONAL_BRANCHES",
    "DATA_BASE",
    "EncodingError",
    "Format",
    "INSTRUCTION_SIZE",
    "Instruction",
    "NUM_REGISTERS",
    "Opcode",
    "Program",
    "STACK_TOP",
    "TEXT_BASE",
    "UNCONDITIONAL_JUMPS",
    "decode",
    "encode",
    "is_register",
    "register_name",
    "register_number",
]
