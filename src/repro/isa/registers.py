"""Register file definition for the miniature RISC ISA.

The reproduction's trace substrate executes programs for a small 32-register
RISC machine.  Register naming follows familiar RISC conventions so the
hand-written workload kernels in :mod:`repro.workloads` stay readable:

* ``x0``/``zero`` is hard-wired to zero,
* ``ra`` (x1) holds return addresses written by ``jal``/``call``,
* ``sp`` (x2) is the stack pointer initialised by the simulator,
* ``t0``–``t6`` are caller-saved temporaries,
* ``s0``–``s11`` are callee-saved,
* ``a0``–``a7`` carry arguments and return values (and syscall numbers).
"""

from __future__ import annotations

from typing import Dict, List

NUM_REGISTERS = 32

#: Canonical ABI names indexed by register number.
ABI_NAMES: List[str] = [
    "zero", "ra", "sp", "gp", "tp",
    "t0", "t1", "t2",
    "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
]

assert len(ABI_NAMES) == NUM_REGISTERS

#: Accepted spellings (ABI names, ``x<N>``, ``r<N>`` and ``fp``) -> number.
REGISTER_ALIASES: Dict[str, int] = {}
for _num, _name in enumerate(ABI_NAMES):
    REGISTER_ALIASES[_name] = _num
    REGISTER_ALIASES[f"x{_num}"] = _num
    REGISTER_ALIASES[f"r{_num}"] = _num
REGISTER_ALIASES["fp"] = REGISTER_ALIASES["s0"]


def register_number(name: str) -> int:
    """Resolve a register spelling to its number.

    Accepts ABI names (``sp``, ``t3``), ``x``-prefixed (``x7``) and
    ``r``-prefixed (``r7``) spellings, case-insensitively.

    Raises:
        KeyError: if the spelling is not a register.
    """
    key = name.strip().lower()
    if key not in REGISTER_ALIASES:
        raise KeyError(f"unknown register {name!r}")
    return REGISTER_ALIASES[key]


def register_name(number: int) -> str:
    """Return the canonical ABI name for a register number."""
    if not 0 <= number < NUM_REGISTERS:
        raise ValueError(f"register number out of range: {number}")
    return ABI_NAMES[number]


def is_register(name: str) -> bool:
    """Return True if *name* spells a register."""
    return name.strip().lower() in REGISTER_ALIASES
