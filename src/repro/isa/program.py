"""Executable program container.

A :class:`Program` is what the assembler produces and the simulator loads:
a text segment (decoded instructions), an initialised data segment and a
symbol table.  Addresses are byte addresses; instructions occupy 4 bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from .encoding import decode, encode
from .instructions import Instruction

TEXT_BASE = 0x0000_1000
DATA_BASE = 0x0010_0000
STACK_TOP = 0x0100_0000
INSTRUCTION_SIZE = 4


@dataclass
class Program:
    """A loadable program image.

    Attributes:
        instructions: the text segment, in address order.
        data: initialised data bytes placed at :data:`DATA_BASE`.
        symbols: label -> byte address (text and data labels).
        name: optional human-readable program name.
        text_base: load address of the first instruction.
        data_base: load address of the data segment.
        address_taken: text addresses whose value is stored in the data
            segment (``.word label`` jump tables).  These are the only
            statically-known targets of indirect jumps; the CFG builder
            treats them as potential successors of every ``jalr``.
    """

    instructions: List[Instruction] = field(default_factory=list)
    data: bytes = b""
    symbols: Dict[str, int] = field(default_factory=dict)
    name: str = "<anonymous>"
    text_base: int = TEXT_BASE
    data_base: int = DATA_BASE
    address_taken: FrozenSet[int] = frozenset()

    def __len__(self) -> int:
        return len(self.instructions)

    def address_of(self, index: int) -> int:
        """Byte address of the instruction at *index*."""
        return self.text_base + index * INSTRUCTION_SIZE

    def index_of(self, address: int) -> int:
        """Instruction index for a text-segment byte *address*.

        Raises:
            ValueError: if the address is outside the text segment or not
                word aligned.
        """
        offset = address - self.text_base
        if offset % INSTRUCTION_SIZE:
            raise ValueError(f"misaligned text address 0x{address:x}")
        index = offset // INSTRUCTION_SIZE
        if not 0 <= index < len(self.instructions):
            raise ValueError(f"address 0x{address:x} outside text segment")
        return index

    def fetch(self, address: int) -> Instruction:
        """Return the instruction stored at byte *address*."""
        return self.instructions[self.index_of(address)]

    @property
    def entry_point(self) -> int:
        """Start address: the ``main`` symbol if present, else text base."""
        return self.symbols.get("main", self.text_base)

    def in_text(self, address: int) -> bool:
        """True if *address* is a word-aligned text-segment address."""
        offset = address - self.text_base
        return (
            offset % INSTRUCTION_SIZE == 0
            and 0 <= offset < len(self.instructions) * INSTRUCTION_SIZE
        )

    def jump_table_targets(self) -> FrozenSet[int]:
        """Statically-known indirect-jump targets.

        Prefers the assembler-recorded :attr:`address_taken` metadata; for
        programs reconstructed without it (e.g. :meth:`from_image`), falls
        back to scanning the data segment for word-aligned values that land
        in the text segment — conservative, but sound for jump tables.
        """
        if self.address_taken:
            return self.address_taken
        found = set()
        for offset in range(0, len(self.data) - 3, 4):
            value = int.from_bytes(self.data[offset : offset + 4], "little")
            if self.in_text(value):
                found.add(value)
        return frozenset(found)

    def static_conditional_branches(self) -> List[int]:
        """Addresses of every static conditional branch in the program."""
        return [
            self.address_of(i)
            for i, ins in enumerate(self.instructions)
            if ins.is_conditional_branch
        ]

    def listing(self) -> str:
        """Disassembly listing with addresses and labels, for debugging."""
        by_addr: Dict[int, List[str]] = {}
        for label, addr in self.symbols.items():
            by_addr.setdefault(addr, []).append(label)
        lines: List[str] = []
        for i, ins in enumerate(self.instructions):
            addr = self.address_of(i)
            for label in sorted(by_addr.get(addr, [])):
                lines.append(f"{label}:")
            lines.append(f"  0x{addr:08x}  {ins.disassemble()}")
        return "\n".join(lines)

    # -- serialization ----------------------------------------------------

    def to_image(self) -> Tuple[bytes, bytes]:
        """Encode the text segment to raw bytes; returns (text, data)."""
        text = b"".join(
            encode(ins).to_bytes(4, "little") for ins in self.instructions
        )
        return text, self.data

    @classmethod
    def from_image(
        cls,
        text: bytes,
        data: bytes = b"",
        symbols: Optional[Dict[str, int]] = None,
        name: str = "<image>",
    ) -> "Program":
        """Decode a raw text image back into a Program."""
        if len(text) % INSTRUCTION_SIZE:
            raise ValueError("text image length not a multiple of 4")
        instructions = [
            decode(int.from_bytes(text[i : i + 4], "little"))
            for i in range(0, len(text), INSTRUCTION_SIZE)
        ]
        return cls(
            instructions=instructions,
            data=data,
            symbols=dict(symbols or {}),
            name=name,
        )
