"""Binary encoding and decoding of instructions.

Instructions are 32 bits.  Bits 31..24 always hold the opcode; the remaining
24 bits are laid out per format:

====== =============================================================
Format Layout (high to low)
====== =============================================================
R      rd[23:19] rs1[18:14] rs2[13:9] zero[8:0]
I      rd[23:19] rs1[18:14] imm14[13:0]          (signed)
LOAD   rd[23:19] rs1[18:14] imm14[13:0]          (signed)
STORE  rs2[23:19] rs1[18:14] imm14[13:0]         (signed)
B      rs1[23:19] rs2[18:14] off14[13:0]         (signed, byte offset / 4)
J      rd[23:19] off19[18:0]                     (signed, byte offset / 4)
JR     rd[23:19] rs1[18:14] imm14[13:0]          (signed)
U      rd[23:19] imm19[18:0]                     (signed)
SYS    zero[23:0]
====== =============================================================

The functional simulator executes decoded :class:`~repro.isa.instructions.
Instruction` objects directly — encoding is used for on-disk program images
and exercised by round-trip tests.
"""

from __future__ import annotations

from ..errors import ReproError
from .instructions import Format, Instruction, Opcode

WORD_BITS = 32
IMM14_MIN, IMM14_MAX = -(1 << 13), (1 << 13) - 1
IMM19_MIN, IMM19_MAX = -(1 << 18), (1 << 18) - 1


class EncodingError(ReproError, ValueError):
    """Raised when an instruction cannot be encoded (field out of range)."""

    code = "encoding_error"


def _check_imm(value: int, lo: int, hi: int, what: str) -> int:
    if not lo <= value <= hi:
        raise EncodingError(f"{what} out of range [{lo}, {hi}]: {value}")
    return value


def _to_unsigned(value: int, bits: int) -> int:
    return value & ((1 << bits) - 1)


def _to_signed(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value ^ sign) - sign


def encode(instr: Instruction) -> int:
    """Encode a decoded instruction into its 32-bit word."""
    op = int(instr.opcode) << 24
    fmt = instr.format
    if fmt is Format.R:
        return op | (instr.rd << 19) | (instr.rs1 << 14) | (instr.rs2 << 9)
    if fmt in (Format.I, Format.LOAD):
        imm = _check_imm(instr.imm, IMM14_MIN, IMM14_MAX, "imm14")
        return op | (instr.rd << 19) | (instr.rs1 << 14) | _to_unsigned(imm, 14)
    if fmt is Format.STORE:
        imm = _check_imm(instr.imm, IMM14_MIN, IMM14_MAX, "imm14")
        return op | (instr.rs2 << 19) | (instr.rs1 << 14) | _to_unsigned(imm, 14)
    if fmt is Format.B:
        if instr.imm % 4:
            raise EncodingError(f"branch offset not word aligned: {instr.imm}")
        off = _check_imm(instr.imm >> 2, IMM14_MIN, IMM14_MAX, "branch offset/4")
        return op | (instr.rs1 << 19) | (instr.rs2 << 14) | _to_unsigned(off, 14)
    if fmt is Format.J:
        if instr.imm % 4:
            raise EncodingError(f"jump offset not word aligned: {instr.imm}")
        off = _check_imm(instr.imm >> 2, IMM19_MIN, IMM19_MAX, "jump offset/4")
        return op | (instr.rd << 19) | _to_unsigned(off, 19)
    if fmt is Format.JR:
        imm = _check_imm(instr.imm, IMM14_MIN, IMM14_MAX, "imm14")
        return op | (instr.rd << 19) | (instr.rs1 << 14) | _to_unsigned(imm, 14)
    if fmt is Format.U:
        imm = _check_imm(instr.imm, IMM19_MIN, IMM19_MAX, "imm19")
        return op | (instr.rd << 19) | _to_unsigned(imm, 19)
    # SYS
    return op


def decode(word: int) -> Instruction:
    """Decode a 32-bit word back into an :class:`Instruction`.

    Raises:
        EncodingError: if the opcode byte is not a valid opcode.
    """
    opnum = (word >> 24) & 0xFF
    try:
        opcode = Opcode(opnum)
    except ValueError as exc:
        raise EncodingError(f"invalid opcode byte 0x{opnum:02x}") from exc
    fmt = Instruction(opcode).format
    f5 = lambda shift: (word >> shift) & 0x1F  # noqa: E731 - tiny local helper
    if fmt is Format.R:
        return Instruction(opcode, rd=f5(19), rs1=f5(14), rs2=f5(9))
    if fmt in (Format.I, Format.LOAD):
        return Instruction(
            opcode, rd=f5(19), rs1=f5(14), imm=_to_signed(word & 0x3FFF, 14)
        )
    if fmt is Format.STORE:
        return Instruction(
            opcode, rs2=f5(19), rs1=f5(14), imm=_to_signed(word & 0x3FFF, 14)
        )
    if fmt is Format.B:
        return Instruction(
            opcode,
            rs1=f5(19),
            rs2=f5(14),
            imm=_to_signed(word & 0x3FFF, 14) << 2,
        )
    if fmt is Format.J:
        return Instruction(
            opcode, rd=f5(19), imm=_to_signed(word & 0x7FFFF, 19) << 2
        )
    if fmt is Format.JR:
        return Instruction(
            opcode, rd=f5(19), rs1=f5(14), imm=_to_signed(word & 0x3FFF, 14)
        )
    if fmt is Format.U:
        return Instruction(opcode, rd=f5(19), imm=_to_signed(word & 0x7FFFF, 19))
    return Instruction(opcode)
