"""Table conflict cost — the objective branch allocation minimises.

Table 3's criterion is "the BHT size necessary to allow branch allocation to
reduce the table conflicts to below that of a 1024-entry conventional BHT
with PC indexing".  We define the **conflict cost** of an index mapping as
the sum, over all conflict-graph edges whose endpoints map to the same BHT
entry, of the edge's interleave count — i.e. how many interleaved dynamic
re-executions hit an aliased history register.  This is the quantity the
colouring allocator minimises and the quantity the sizing search compares
against the conventional baseline.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

from ..analysis.conflict_graph import ConflictGraph
from ..predictors.indexing import IndexFunction, PCModuloIndex

Mapping = Union[Dict[int, int], IndexFunction, Callable[[int], int]]


def _lookup(mapping: Mapping) -> Callable[[int], int]:
    if isinstance(mapping, dict):
        return mapping.__getitem__
    if isinstance(mapping, IndexFunction):
        return mapping.index
    return mapping


def conflict_cost(graph: ConflictGraph, mapping: Mapping) -> int:
    """Total interleave weight landing on shared BHT entries.

    Args:
        graph: the (pruned, possibly classification-filtered) conflict graph.
        mapping: PC -> entry, as a dict, an IndexFunction or a callable.

    Returns:
        Sum of edge counts over same-entry pairs.
    """
    index_of = _lookup(mapping)
    cost = 0
    for a, b, count in graph.edges():
        if index_of(a) == index_of(b):
            cost += count
    return cost


def conventional_cost(
    graph: ConflictGraph, bht_size: int = 1024
) -> int:
    """Conflict cost of conventional PC-modulo indexing (the baseline)."""
    return conflict_cost(graph, PCModuloIndex(bht_size))


def conflicting_pairs(
    graph: ConflictGraph, mapping: Mapping
) -> Dict[tuple, int]:
    """The same-entry pairs and their weights (diagnostic view)."""
    index_of = _lookup(mapping)
    return {
        (a, b): count
        for a, b, count in graph.edges()
        if index_of(a) == index_of(b)
    }
