"""Graph colouring for branch allocation (paper §5.1).

The allocator follows the Chaitin/Briggs register-allocation shape the paper
cites, with the key difference the paper spells out: **there is no spill**.
When a working set has more members than the table has entries, the
overflowing branches simply share an entry, and "the allocation routine
chooses the branches with the fewest conflicts among the working set
branches to map to the same location".

Phases:

1. **Simplify** — repeatedly remove a node with degree < K (it is trivially
   colourable) and push it on a stack.  When no such node exists, remove the
   node with the *smallest weighted degree* (fewest conflicts — the paper's
   sharing victim) and push it marked as an overflow candidate.
2. **Select** — pop nodes and assign each a colour unused by its coloured
   neighbours; a node with no free colour takes the colour that minimises
   the summed interleave weight to its same-coloured neighbours.

Among the conflict-free colours, the allocator picks the one carrying the
least execution weight so far.  Two branches from *different* working sets
can share an entry without any conflict-graph cost (they never interleave),
but each still evicts the other's history across phase transitions; load
balancing spreads branches over the whole table exactly the way the paper's
one-to-one intent implies when the table is big enough.

The result is deterministic: ties break on PC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..analysis.conflict_graph import ConflictGraph


@dataclass(frozen=True)
class ColoringResult:
    """Outcome of one colouring run.

    Attributes:
        assignment: PC -> colour in ``range(colors)``.
        colors: number of colours (BHT entries) made available.
        shared_nodes: PCs that ended up sharing a colour with a conflict
            neighbour (the no-spill overflow case).
        cost: summed interleave weight across same-colour conflict edges.
    """

    assignment: Dict[int, int]
    colors: int
    shared_nodes: frozenset
    cost: int

    @property
    def colors_used(self) -> int:
        """Distinct colours actually assigned."""
        return len(set(self.assignment.values()))


def color_graph(
    graph: ConflictGraph,
    colors: int,
    color_offset: int = 0,
) -> ColoringResult:
    """Colour *graph* with *colors* colours, minimising shared-entry weight.

    Args:
        graph: the pruned conflict graph.
        colors: available colours (BHT entries); must be positive.
        color_offset: first colour number to use (the classified allocator
            reserves low entries for biased classes).

    Raises:
        ValueError: if *colors* is not positive.
    """
    if colors <= 0:
        raise ValueError(f"colors must be positive, got {colors}")

    # ---- simplify ----------------------------------------------------------
    degrees: Dict[int, int] = {pc: graph.degree(pc) for pc in graph.nodes()}
    weighted: Dict[int, int] = {
        pc: graph.weighted_degree(pc) for pc in graph.nodes()
    }
    remaining: Set[int] = set(degrees)
    # bucket of currently-simplifiable nodes (degree < colors)
    stack: List[int] = []
    while remaining:
        simplifiable = [pc for pc in remaining if degrees[pc] < colors]
        if simplifiable:
            # remove all currently simplifiable nodes, lightest first for
            # determinism (order within this batch does not affect safety)
            simplifiable.sort(key=lambda pc: (degrees[pc], pc))
            victim = simplifiable[0]
        else:
            # overflow: the paper's rule — fewest conflicts shares
            victim = min(remaining, key=lambda pc: (weighted[pc], pc))
        stack.append(victim)
        remaining.discard(victim)
        for neighbor, weight in graph.neighbors(victim).items():
            if neighbor in remaining:
                degrees[neighbor] -= 1
                weighted[neighbor] -= weight

    # ---- select ------------------------------------------------------------
    assignment: Dict[int, int] = {}
    shared: Set[int] = set()
    palette = list(range(color_offset, color_offset + colors))
    load: Dict[int, int] = {color: 0 for color in palette}
    while stack:
        pc = stack.pop()
        neighbor_colors: Dict[int, int] = {}
        for neighbor, weight in graph.neighbors(pc).items():
            color = assignment.get(neighbor)
            if color is not None:
                neighbor_colors[color] = neighbor_colors.get(color, 0) + weight
        free = [color for color in palette if color not in neighbor_colors]
        if free:
            # conflict-free: balance execution weight across the table
            chosen = min(free, key=lambda c: (load[c], c))
        else:
            # every colour conflicts: take the cheapest one
            chosen = min(palette, key=lambda c: (neighbor_colors[c], c))
            shared.add(pc)
        assignment[pc] = chosen
        load[chosen] += graph.node_weight(pc) or 1

    cost = 0
    for a, b, count in graph.edges():
        if assignment[a] == assignment[b]:
            cost += count
    return ColoringResult(
        assignment=assignment,
        colors=colors,
        shared_nodes=frozenset(shared),
        cost=cost,
    )


def verify_coloring(
    graph: ConflictGraph, assignment: Dict[int, int]
) -> Tuple[bool, int]:
    """Check an assignment: (conflict-free?, same-colour edge weight)."""
    clashes = 0
    for a, b, count in graph.edges():
        if assignment.get(a) == assignment.get(b):
            clashes += count
    return clashes == 0, clashes
