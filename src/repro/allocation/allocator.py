"""The branch allocator: profile -> BHT index assignment (paper §5.1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..analysis.conflict_graph import (
    DEFAULT_THRESHOLD,
    ConflictGraph,
    build_conflict_graph,
)
from ..predictors.indexing import PCModuloIndex, StaticIndexMap
from ..profiling.profile import InterleaveProfile
from .coloring import ColoringResult, color_graph


@dataclass(frozen=True)
class AllocationResult:
    """A complete branch allocation for one BHT size.

    Attributes:
        bht_size: entries in the target BHT.
        assignment: static branch PC -> BHT entry.
        cost: conflict cost of the assignment on the pruned graph.
        shared_branches: branches forced to share an entry with a conflict
            neighbour.
        threshold: edge threshold the conflict graph was pruned at.
    """

    bht_size: int
    assignment: Dict[int, int]
    cost: int
    shared_branches: frozenset
    threshold: int

    def index_map(self) -> StaticIndexMap:
        """The predictor-facing index function for this allocation.

        Unmapped (cold / unprofiled) branches fall back to PC-modulo
        indexing, matching the paper's treatment of unannotated code.
        """
        return StaticIndexMap(
            self.bht_size,
            self.assignment,
            fallback=PCModuloIndex(self.bht_size),
        )


class BranchAllocator:
    """Computes branch-to-BHT-entry assignments from a profile.

    The three paper steps: interleave profile (done upstream), conflict
    graph construction with threshold pruning, then graph colouring with
    entry sharing instead of spilling.

    Example::

        allocator = BranchAllocator(profile)
        allocation = allocator.allocate(bht_size=128)
        predictor = PAgPredictor.allocated(allocation.index_map())
    """

    def __init__(
        self,
        profile: InterleaveProfile,
        threshold: int = DEFAULT_THRESHOLD,
        restrict_to: Optional[Iterable[int]] = None,
    ) -> None:
        self.profile = profile
        self.threshold = threshold
        self.graph: ConflictGraph = build_conflict_graph(
            profile, threshold=threshold, restrict_to=restrict_to
        )

    def allocate(self, bht_size: int) -> AllocationResult:
        """Assign every profiled branch to one of *bht_size* entries.

        Raises:
            ValueError: if *bht_size* is not positive.
        """
        result: ColoringResult = color_graph(self.graph, bht_size)
        return AllocationResult(
            bht_size=bht_size,
            assignment=result.assignment,
            cost=result.cost,
            shared_branches=result.shared_nodes,
            threshold=self.threshold,
        )
