"""The branch allocator: profile -> BHT index assignment (paper §5.1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..analysis.conflict_graph import (
    DEFAULT_THRESHOLD,
    ConflictGraph,
    build_conflict_graph,
)
from ..predictors.indexing import PCModuloIndex, StaticIndexMap
from ..profiling.profile import InterleaveProfile
from .coloring import ColoringResult, color_graph


@dataclass(frozen=True)
class AllocationResult:
    """A complete branch allocation for one BHT size.

    Attributes:
        bht_size: entries in the target BHT.
        assignment: static branch PC -> BHT entry.
        cost: conflict cost of the assignment on the pruned graph.
        shared_branches: branches forced to share an entry with a conflict
            neighbour.
        threshold: edge threshold the conflict graph was pruned at.
    """

    bht_size: int
    assignment: Dict[int, int]
    cost: int
    shared_branches: frozenset
    threshold: int

    def index_map(self) -> StaticIndexMap:
        """The predictor-facing index function for this allocation.

        Unmapped (cold / unprofiled) branches fall back to PC-modulo
        indexing, matching the paper's treatment of unannotated code.
        """
        return StaticIndexMap(
            self.bht_size,
            self.assignment,
            fallback=PCModuloIndex(self.bht_size),
        )


class BranchAllocator:
    """Computes branch-to-BHT-entry assignments from a conflict graph.

    The three paper steps: interleave profile (done upstream), conflict
    graph construction with threshold pruning, then graph colouring with
    entry sharing instead of spilling.  The graph normally comes from a
    profile, but any :class:`ConflictGraph` works — in particular the
    profile-free static estimate from
    :mod:`repro.static_analysis.estimator` (see :meth:`from_graph`).

    Example::

        allocator = BranchAllocator(profile)
        allocation = allocator.allocate(bht_size=128)
        predictor = PAgPredictor.allocated(allocation.index_map())
    """

    def __init__(
        self,
        profile: Optional[InterleaveProfile] = None,
        threshold: int = DEFAULT_THRESHOLD,
        restrict_to: Optional[Iterable[int]] = None,
        graph: Optional[ConflictGraph] = None,
    ) -> None:
        """
        Args:
            profile: interleave profile to build the conflict graph from.
            threshold: edge-pruning threshold (applied to *profile*; a
                supplied *graph* is taken as already pruned).
            restrict_to: optional static-branch subset (profile path only).
            graph: a pre-built conflict graph, instead of a profile.

        Raises:
            ValueError: unless exactly one of *profile*/*graph* is given.
        """
        if (profile is None) == (graph is None):
            raise ValueError(
                "provide exactly one of profile= or graph="
            )
        self.profile = profile
        self.threshold = threshold
        if graph is not None:
            self.graph: ConflictGraph = graph
        else:
            assert profile is not None
            self.graph = build_conflict_graph(
                profile, threshold=threshold, restrict_to=restrict_to
            )

    @classmethod
    def from_graph(
        cls, graph: ConflictGraph, threshold: int = DEFAULT_THRESHOLD
    ) -> "BranchAllocator":
        """An allocator over a pre-built (already pruned) conflict graph.

        This is the profile-free entry point: pair it with
        :func:`repro.static_analysis.estimator.estimate_conflict_graph`
        to allocate branches without any simulation.
        """
        return cls(graph=graph, threshold=threshold)

    def allocate(self, bht_size: int) -> AllocationResult:
        """Assign every profiled branch to one of *bht_size* entries.

        Raises:
            ValueError: if *bht_size* is not positive.
        """
        result: ColoringResult = color_graph(self.graph, bht_size)
        return AllocationResult(
            bht_size=bht_size,
            assignment=result.assignment,
            cost=result.cost,
            shared_branches=result.shared_nodes,
            threshold=self.threshold,
        )
