"""Minimal-BHT-size search (Tables 3 and 4).

For a given benchmark the paper reports the smallest BHT size at which
branch allocation produces fewer table conflicts than a conventional
1024-entry PC-indexed BHT.  :func:`required_bht_size` performs that search
against any allocator exposing ``allocate(bht_size) -> AllocationResult``.

The allocated conflict cost is non-increasing in table size in practice
(more colours never force more sharing), so the search is exponential
probing followed by binary refinement; a final downward scan guards against
small non-monotonic wobbles of the greedy colouring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Protocol, Sequence

from .allocator import AllocationResult


class SupportsAllocate(Protocol):
    """Anything with the allocator interface (plain or classified)."""

    def allocate(self, bht_size: int) -> AllocationResult: ...


@dataclass(frozen=True)
class SizingResult:
    """Outcome of the minimal-size search.

    Attributes:
        required_size: smallest BHT size meeting the conflict goal.
        baseline_cost: conflict cost of the conventional reference.
        achieved_cost: allocated conflict cost at ``required_size``.
        probes: (size, cost) pairs evaluated during the search.
    """

    required_size: int
    baseline_cost: int
    achieved_cost: int
    probes: Dict[int, int]


def _beats(cost: int, baseline: int) -> bool:
    # "reduce the table conflicts to below that of" the baseline; when the
    # baseline is already conflict-free the goal degrades to matching it.
    if baseline == 0:
        return cost == 0
    return cost < baseline


def required_bht_size(
    allocator: SupportsAllocate,
    baseline_cost: int,
    min_size: int = 4,
    max_size: int = 1 << 16,
) -> SizingResult:
    """Find the smallest BHT size whose allocated cost beats *baseline_cost*.

    Args:
        allocator: plain or classified branch allocator.
        baseline_cost: conflict cost of the conventional configuration
            (use :func:`repro.allocation.conflict_cost.conventional_cost`).
        min_size: smallest size to consider (classified allocation needs
            at least its reserved entries + 1).
        max_size: search ceiling.

    Raises:
        RuntimeError: if even *max_size* entries cannot beat the baseline.
    """
    probes: Dict[int, int] = {}

    def cost_at(size: int) -> int:
        if size not in probes:
            probes[size] = allocator.allocate(size).cost
        return probes[size]

    # exponential probe for a satisfying upper bound
    size = max(min_size, 1)
    while not _beats(cost_at(size), baseline_cost):
        if size >= max_size:
            raise RuntimeError(
                f"no BHT size <= {max_size} beats baseline cost "
                f"{baseline_cost} (best seen: {min(probes.values())})"
            )
        size = min(size * 2, max_size)

    # binary refinement between the last failing size and the success
    low = max(min_size, size // 2)
    high = size
    while low < high:
        mid = (low + high) // 2
        if _beats(cost_at(mid), baseline_cost):
            high = mid
        else:
            low = mid + 1

    # guard against greedy-colouring wobble just below the boundary
    best = high
    for candidate in range(max(min_size, high - 4), high):
        if _beats(cost_at(candidate), baseline_cost):
            best = candidate
            break

    return SizingResult(
        required_size=best,
        baseline_cost=baseline_cost,
        achieved_cost=cost_at(best),
        probes=dict(sorted(probes.items())),
    )


def cost_sweep(
    allocator: SupportsAllocate, sizes: Sequence[int]
) -> List[AllocationResult]:
    """Allocate at each size in *sizes* (for figures and ablations)."""
    return [allocator.allocate(size) for size in sizes]
