"""Classification-enhanced branch allocation (paper §5.2).

Refinements over the plain allocator:

1. conflict edges between two branches of the same highly-biased class are
   dropped — aliased identical histories are harmless;
2. two BHT entries are reserved: entry 0 for all >99%-taken branches and
   entry 1 for all <1%-taken branches ("two history entries from BHT can be
   set aside such that highly biased towards taken and not taken branches
   can be mapped to these two entries separated from others");
3. the remaining mixed branches are coloured on the remaining
   ``bht_size - 2`` entries.

The conflict cost of the result is evaluated on the *filtered* graph: the
paper's premise is precisely that same-class biased conflicts carry no
"significant negative effects".
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..analysis.classification import (
    BiasClass,
    ClassificationBounds,
    classify_profile,
    drop_same_class_biased_edges,
)
from ..analysis.conflict_graph import DEFAULT_THRESHOLD, build_conflict_graph
from ..profiling.profile import InterleaveProfile
from .allocator import AllocationResult
from .coloring import color_graph

TAKEN_ENTRY = 0
NOT_TAKEN_ENTRY = 1
RESERVED_ENTRIES = 2


class ClassifiedBranchAllocator:
    """Branch allocator with Chang-style bias classification."""

    def __init__(
        self,
        profile: InterleaveProfile,
        threshold: int = DEFAULT_THRESHOLD,
        bounds: ClassificationBounds = ClassificationBounds(),
        restrict_to: Optional[Iterable[int]] = None,
    ) -> None:
        self.profile = profile
        self.threshold = threshold
        self.bounds = bounds
        self.classes: Dict[int, BiasClass] = classify_profile(profile, bounds)
        raw = build_conflict_graph(
            profile, threshold=threshold, restrict_to=restrict_to
        )
        #: the §5.2 graph: same-class biased edges removed
        self.graph = drop_same_class_biased_edges(raw, self.classes)

    def allocate(self, bht_size: int) -> AllocationResult:
        """Assign branches to *bht_size* entries with two reserved slots.

        Raises:
            ValueError: if *bht_size* leaves no entries for mixed branches
                (must exceed the two reserved entries).
        """
        if bht_size <= RESERVED_ENTRIES:
            raise ValueError(
                f"bht_size must exceed {RESERVED_ENTRIES} reserved entries, "
                f"got {bht_size}"
            )
        assignment: Dict[int, int] = {}
        mixed_nodes = []
        for pc in self.graph.nodes():
            bias = self.classes.get(pc, BiasClass.MIXED)
            if bias is BiasClass.TAKEN_BIASED:
                assignment[pc] = TAKEN_ENTRY
            elif bias is BiasClass.NOT_TAKEN_BIASED:
                assignment[pc] = NOT_TAKEN_ENTRY
            else:
                mixed_nodes.append(pc)

        mixed_graph = self.graph.subgraph(mixed_nodes)
        coloring = color_graph(
            mixed_graph,
            bht_size - RESERVED_ENTRIES,
            color_offset=RESERVED_ENTRIES,
        )
        assignment.update(coloring.assignment)

        # cost on the filtered graph, over the *full* assignment: biased
        # branches sharing a reserved entry contribute only via edges the
        # filter kept (i.e. cross-class or biased-vs-mixed conflicts).
        cost = 0
        for a, b, count in self.graph.edges():
            if assignment[a] == assignment[b]:
                cost += count
        return AllocationResult(
            bht_size=bht_size,
            assignment=assignment,
            cost=cost,
            shared_branches=coloring.shared_nodes,
            threshold=self.threshold,
        )

    @property
    def biased_branch_count(self) -> int:
        """How many profiled branches fell into a highly-biased class."""
        return sum(
            1
            for bias in self.classes.values()
            if bias is not BiasClass.MIXED
        )
