"""Conflict-driven branch alignment (paper §5, the no-ISA-change path).

The paper notes that if augmenting the branch ISA with index bits "is not
an option, the working set information used in the allocation technique
can be incorporated into a branch alignment transformation [Calder &
Grunwald] for any ISA without change".  This module implements that
transformation for the workload builder: instead of telling the *predictor*
where each branch's history lives, it moves the *code* so that conflicting
branches land on different BHT entries under conventional PC-modulo
indexing.

Mechanics: each kernel instance is a relocatable unit (its internal branch
offsets are fixed).  Units are placed sequentially; the pad inserted before
each unit chooses its start address modulo the BHT size.  A greedy pass
over units in descending conflict weight picks, for each unit, the start
residue minimising the interleave weight shared with already-placed
branches on the same entries.

Inherent limitation (also true of real branch alignment): branches *within*
one unit keep their relative offsets, so intra-unit conflicts cannot be
separated — unlike true branch allocation, which this module quantifies
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..analysis.conflict_graph import (
    DEFAULT_THRESHOLD,
    ConflictGraph,
    build_conflict_graph,
)
from ..profiling.profile import InterleaveProfile
from ..workloads.build import BuiltWorkload, WorkloadSpec, build_workload
from .conflict_cost import conventional_cost

InstanceKey = Tuple[str, int]


@dataclass(frozen=True)
class AlignmentResult:
    """Outcome of the alignment transform.

    Attributes:
        aligned: the re-built workload with computed placement pads.
        pads: filler words chosen before each instance.
        original_cost: conventional-indexing conflict cost of the original
            layout (on the original build's conflict graph).
        aligned_cost: predicted conflict cost of the aligned layout (same
            graph, branch PCs relocated).
        intra_unit_cost: conflict weight between branches of the *same*
            unit that alias — the part alignment cannot remove.
    """

    aligned: BuiltWorkload
    pads: Dict[InstanceKey, int]
    original_cost: int
    aligned_cost: int
    intra_unit_cost: int


def _branch_layout(
    built: BuiltWorkload, graph: ConflictGraph
) -> Tuple[List[InstanceKey], Dict[InstanceKey, int],
           Dict[InstanceKey, List[Tuple[int, int]]]]:
    """Units in build order, their lengths (words), and per-unit branches
    as (word offset within unit, branch PC)."""
    extents = built.kernel_extents()
    order = sorted(extents, key=lambda key: extents[key][0])
    lengths = {
        key: (extents[key][1] - extents[key][0]) // 4 for key in order
    }
    branches: Dict[InstanceKey, List[Tuple[int, int]]] = {
        key: [] for key in order
    }
    for pc in graph.nodes():
        for key in order:
            start, end = extents[key]
            if start <= pc < end:
                branches[key].append(((pc - start) // 4, pc))
                break
    return order, lengths, branches


def align_workload(
    spec: WorkloadSpec,
    profile: InterleaveProfile,
    bht_size: int = 1024,
    threshold: int = DEFAULT_THRESHOLD,
    residue_stride: int = 1,
) -> AlignmentResult:
    """Re-lay out *spec*'s kernels to minimise conventional BHT conflicts.

    Args:
        spec: the workload to transform.
        profile: an interleave profile of the *original* build (branch PCs
            must match ``build_workload(spec)``'s layout).
        bht_size: the conventional table the layout should avoid aliasing
            in.
        threshold: conflict-graph pruning threshold.
        residue_stride: try every ``residue_stride``-th start residue
            (1 = exhaustive; larger is faster and nearly as good).

    Raises:
        ValueError: if bht_size or residue_stride is not positive.
    """
    if bht_size <= 0:
        raise ValueError("bht_size must be positive")
    if residue_stride <= 0:
        raise ValueError("residue_stride must be positive")

    original = build_workload(spec)
    graph = build_conflict_graph(profile, threshold=threshold)
    original_cost = conventional_cost(graph, bht_size)
    order, _, unit_branches = _branch_layout(original, graph)

    # body lengths must come from a pad-free build: the scattered build's
    # extents include the *next* unit's scatter pad, which the aligned
    # layout will not have
    packed = build_workload(spec, explicit_pads={})
    packed_extents = packed.kernel_extents()
    lengths = {
        key: (packed_extents[key][1] - packed_extents[key][0]) // 4
        for key in order
    }

    # place heavy-conflict units first so they get the freest residues
    def unit_weight(key: InstanceKey) -> int:
        return sum(
            graph.weighted_degree(pc) for _, pc in unit_branches[key]
        )

    placement_order = sorted(
        order, key=lambda key: (-unit_weight(key), key)
    )

    # entry -> list of already-placed branch PCs on that entry; seeded with
    # the branches that do NOT move (the driver's loop branches, which
    # interleave with every phase's kernels)
    occupied: Dict[int, List[int]] = {}
    attributed = {
        pc for branches in unit_branches.values() for _, pc in branches
    }
    for pc in graph.nodes():
        if pc not in attributed:
            occupied.setdefault((pc >> 2) % bht_size, []).append(pc)
    chosen_residue: Dict[InstanceKey, int] = {}
    intra_cost = 0
    for key in placement_order:
        branches = unit_branches[key]
        if not branches:
            chosen_residue[key] = 0
            continue
        best_residue, best_cost = 0, None
        for residue in range(0, bht_size, residue_stride):
            cost = 0
            for offset, pc in branches:
                entry = (offset + residue) % bht_size
                for other in occupied.get(entry, ()):
                    cost += graph.edge_weight(pc, other)
            if best_cost is None or cost < best_cost:
                best_residue, best_cost = residue, cost
                if cost == 0:
                    break
        chosen_residue[key] = best_residue
        for offset, pc in branches:
            occupied.setdefault(
                (offset + best_residue) % bht_size, []
            ).append(pc)
        # intra-unit aliasing is immovable; count it once per unit
        seen: Dict[int, List[int]] = {}
        for offset, pc in branches:
            seen.setdefault(offset % bht_size, []).append(pc)
        for pcs in seen.values():
            for i, a in enumerate(pcs):
                for b in pcs[i + 1:]:
                    intra_cost += graph.edge_weight(a, b)

    # realise residues as sequential pads; positions are absolute word
    # addresses so the chosen residues are true BHT entries regardless of
    # the text base's alignment
    pads: Dict[InstanceKey, int] = {}
    position = min(packed_extents[key][0] for key in order) // 4
    for key in order:
        target = chosen_residue[key]
        pad = (target - position) % bht_size
        pads[key] = pad
        position += pad + lengths[key]

    aligned = build_workload(spec, explicit_pads=pads)

    # predicted aligned cost: every branch PC moves with its unit
    aligned_extents = aligned.kernel_extents()
    relocated: Dict[int, int] = {}
    for key in order:
        old_start = original.kernel_extents()[key][0]
        new_start = aligned_extents[key][0]
        for _, pc in unit_branches[key]:
            relocated[pc] = pc - old_start + new_start
    aligned_cost = 0
    for a, b, count in graph.edges():
        entry_a = (relocated.get(a, a) >> 2) % bht_size
        entry_b = (relocated.get(b, b) >> 2) % bht_size
        if entry_a == entry_b:
            aligned_cost += count
    return AlignmentResult(
        aligned=aligned,
        pads=pads,
        original_cost=original_cost,
        aligned_cost=aligned_cost,
        intra_unit_cost=intra_cost,
    )
