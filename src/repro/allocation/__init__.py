"""Branch allocation: compiler-controlled BHT index assignment (paper §5)."""

from .alignment import AlignmentResult, align_workload
from .allocator import AllocationResult, BranchAllocator
from .classified import (
    NOT_TAKEN_ENTRY,
    RESERVED_ENTRIES,
    TAKEN_ENTRY,
    ClassifiedBranchAllocator,
)
from .coloring import ColoringResult, color_graph, verify_coloring
from .conflict_cost import conflict_cost, conflicting_pairs, conventional_cost
from .sizing import SizingResult, cost_sweep, required_bht_size

__all__ = [
    "AlignmentResult",
    "AllocationResult",
    "align_workload",
    "BranchAllocator",
    "ClassifiedBranchAllocator",
    "ColoringResult",
    "NOT_TAKEN_ENTRY",
    "RESERVED_ENTRIES",
    "SizingResult",
    "TAKEN_ENTRY",
    "color_graph",
    "conflict_cost",
    "conflicting_pairs",
    "conventional_cost",
    "cost_sweep",
    "required_bht_size",
    "verify_coloring",
]
