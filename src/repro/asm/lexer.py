"""Tokenizer for the miniature assembly language.

The language is line-oriented.  A line contains an optional label
(``name:``), an optional mnemonic or directive with comma-separated operands,
and an optional comment introduced by ``#`` or ``;``.  String literals use
double quotes with C-style escapes; character literals use single quotes.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator, List

from ..errors import ReproError


class AsmSyntaxError(ReproError, ValueError):
    """Raised on malformed assembly input; carries the source line number."""

    code = "asm_syntax_error"

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line
        self.context["line"] = line


class TokenKind(enum.Enum):
    IDENT = "ident"       # mnemonics, register names, label references
    DIRECTIVE = "directive"  # .word, .text, ...
    NUMBER = "number"     # decimal, hex, char literal (already an int)
    STRING = "string"     # decoded str value
    COMMA = "comma"
    COLON = "colon"
    LPAREN = "lparen"
    RPAREN = "rparen"
    NEWLINE = "newline"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: object
    line: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t]+)
  | (?P<comment>[#;].*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<char>'(?:[^'\\]|\\.)')
  | (?P<number>[+-]?(?:0[xX][0-9a-fA-F]+|\d+))
  | (?P<directive>\.[A-Za-z_][\w.]*)
  | (?P<ident>[A-Za-z_][\w.$]*)
  | (?P<comma>,)
  | (?P<colon>:)
  | (?P<lparen>\()
  | (?P<rparen>\))
    """,
    re.VERBOSE,
)

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    '"': '"',
    "'": "'",
}


def _decode_string(raw: str, line: int) -> str:
    body = raw[1:-1]
    out: List[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            i += 1
            if i >= len(body):
                raise AsmSyntaxError("dangling escape in string", line)
            esc = body[i]
            if esc not in _ESCAPES:
                raise AsmSyntaxError(f"unknown escape \\{esc}", line)
            out.append(_ESCAPES[esc])
        else:
            out.append(ch)
        i += 1
    return "".join(out)


def tokenize(source: str) -> Iterator[Token]:
    """Yield tokens for *source*, with a NEWLINE token after each line.

    Raises:
        AsmSyntaxError: on characters that start no token.
    """
    for lineno, text in enumerate(source.splitlines(), start=1):
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                raise AsmSyntaxError(
                    f"unexpected character {text[pos]!r}", lineno
                )
            pos = match.end()
            kind = match.lastgroup
            if kind in ("ws", "comment"):
                continue
            raw = match.group()
            if kind == "number":
                yield Token(TokenKind.NUMBER, int(raw, 0), lineno)
            elif kind == "char":
                value = _decode_string(raw, lineno)
                if len(value) != 1:
                    raise AsmSyntaxError("bad character literal", lineno)
                yield Token(TokenKind.NUMBER, ord(value), lineno)
            elif kind == "string":
                yield Token(
                    TokenKind.STRING, _decode_string(raw, lineno), lineno
                )
            elif kind == "directive":
                yield Token(TokenKind.DIRECTIVE, raw, lineno)
            elif kind == "ident":
                yield Token(TokenKind.IDENT, raw, lineno)
            else:
                yield Token(TokenKind[kind.upper()], raw, lineno)
        yield Token(TokenKind.NEWLINE, "\n", lineno)
