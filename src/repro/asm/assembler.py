"""Two-pass assembler.

Pass 1 walks the statement list, tracks the current segment, expands
pseudo-instructions just far enough to know their size, lays out data
directives and records every label's byte address.  Pass 2 emits concrete
:class:`~repro.isa.instructions.Instruction` objects with all symbols
resolved (branch/jump offsets are relative to the instruction's own address).

Supported pseudo-instructions::

    nop                      addi zero, zero, 0
    mv rd, rs                addi rd, rs, 0
    not rd, rs               xori rd, rs, -1
    neg rd, rs               sub rd, zero, rs
    li rd, imm               addi | lui+ori (size depends on imm)
    la rd, label             lui+ori (always two instructions)
    j label                  jal zero, label
    jr rs                    jalr zero, rs, 0
    call label               jal ra, label
    ret                      jalr zero, ra, 0
    beqz/bnez rs, label      beq/bne rs, zero, label
    bltz/bgez rs, label      blt/bge rs, zero, label
    bgtz/blez rs, label      blt/bge zero, rs, label
    bgt/ble/bgtu/bleu a,b,L  blt/bge with operands swapped

Directives: ``.text``, ``.data``, ``.globl`` (accepted, ignored), ``.word``,
``.byte``, ``.half``, ``.asciiz``, ``.ascii``, ``.space``, ``.align``, and
``.skip N`` (text segment: emit N never-executed filler instructions —
used by the workload builder to scatter functions across a realistically
large text segment so PC-indexed predictor tables alias as they would in
a real program).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..isa.instructions import Instruction, Opcode
from ..isa.program import DATA_BASE, INSTRUCTION_SIZE, TEXT_BASE, Program
from .lexer import AsmSyntaxError
from .parser import (
    DirectiveStmt,
    ImmOperand,
    InstrStmt,
    LabelStmt,
    MemOperand,
    Operand,
    RegOperand,
    Statement,
    SymOperand,
    parse,
)

IMM14_MIN, IMM14_MAX = -(1 << 13), (1 << 13) - 1
LUI_SHIFT = 13  # lui rd, k  =>  rd = k << 13

_R_OPS = {
    "add": Opcode.ADD, "sub": Opcode.SUB, "mul": Opcode.MUL,
    "div": Opcode.DIV, "rem": Opcode.REM, "and": Opcode.AND,
    "or": Opcode.OR, "xor": Opcode.XOR, "sll": Opcode.SLL,
    "srl": Opcode.SRL, "sra": Opcode.SRA, "slt": Opcode.SLT,
    "sltu": Opcode.SLTU,
}
_I_OPS = {
    "addi": Opcode.ADDI, "andi": Opcode.ANDI, "ori": Opcode.ORI,
    "xori": Opcode.XORI, "slli": Opcode.SLLI, "srli": Opcode.SRLI,
    "srai": Opcode.SRAI, "slti": Opcode.SLTI,
}
_LOAD_OPS = {"lw": Opcode.LW, "lb": Opcode.LB}
_STORE_OPS = {"sw": Opcode.SW, "sb": Opcode.SB}
_BRANCH_OPS = {
    "beq": Opcode.BEQ, "bne": Opcode.BNE, "blt": Opcode.BLT,
    "bge": Opcode.BGE, "bltu": Opcode.BLTU, "bgeu": Opcode.BGEU,
}
_SWAPPED_BRANCHES = {
    "bgt": Opcode.BLT, "ble": Opcode.BGE,
    "bgtu": Opcode.BLTU, "bleu": Opcode.BGEU,
}
_ZERO_BRANCHES = {
    "beqz": (Opcode.BEQ, False), "bnez": (Opcode.BNE, False),
    "bltz": (Opcode.BLT, False), "bgez": (Opcode.BGE, False),
    "bgtz": (Opcode.BLT, True), "blez": (Opcode.BGE, True),
}


@dataclass
class _PendingInstr:
    """An instruction slot awaiting symbol resolution in pass 2."""

    emit: Callable[[int, Dict[str, int]], Instruction]
    line: int


class Assembler:
    """Translates assembly source into a :class:`Program`.

    Typical use::

        program = Assembler().assemble(source, name="compress")
    """

    def __init__(
        self, text_base: int = TEXT_BASE, data_base: int = DATA_BASE
    ) -> None:
        self._text_base = text_base
        self._data_base = data_base

    def assemble(self, source: str, name: str = "<asm>") -> Program:
        """Assemble *source* and return the loadable program.

        Raises:
            AsmSyntaxError: on syntax errors, unknown mnemonics, undefined
                or duplicate labels, or out-of-range operands.
        """
        statements = parse(source)
        pending, data, symbols, fixups = self._pass1(statements)
        instructions = [
            slot.emit(self._text_base + i * INSTRUCTION_SIZE, symbols)
            for i, slot in enumerate(pending)
        ]
        text_end = self._text_base + len(instructions) * INSTRUCTION_SIZE
        address_taken = set()
        for offset, symbol, line in fixups:
            value = self._resolve(symbol, symbols, line)
            if self._text_base <= value < text_end:
                address_taken.add(value)
            data[offset : offset + 4] = (value & 0xFFFFFFFF).to_bytes(
                4, "little"
            )
        return Program(
            instructions=instructions,
            data=bytes(data),
            symbols=symbols,
            name=name,
            text_base=self._text_base,
            data_base=self._data_base,
            address_taken=frozenset(address_taken),
        )

    # -- pass 1 -----------------------------------------------------------

    def _pass1(self, statements: Sequence[Statement]):
        pending: List[_PendingInstr] = []
        data = bytearray()
        symbols: Dict[str, int] = {}
        fixups: List[tuple] = []  # (data offset, symbol, line)
        segment = "text"
        for stmt in statements:
            if isinstance(stmt, LabelStmt):
                if stmt.name in symbols:
                    raise AsmSyntaxError(
                        f"duplicate label {stmt.name!r}", stmt.line
                    )
                if segment == "text":
                    symbols[stmt.name] = (
                        self._text_base + len(pending) * INSTRUCTION_SIZE
                    )
                else:
                    symbols[stmt.name] = self._data_base + len(data)
            elif isinstance(stmt, DirectiveStmt):
                if stmt.name == ".skip":
                    if segment != "text":
                        raise AsmSyntaxError(
                            ".skip only valid in .text segment", stmt.line
                        )
                    pending.extend(self._expand_skip(stmt))
                else:
                    segment = self._directive(stmt, segment, data, fixups)
            else:
                if segment != "text":
                    raise AsmSyntaxError(
                        "instruction outside .text segment", stmt.line
                    )
                pending.extend(self._expand(stmt))
        return pending, data, symbols, fixups

    @staticmethod
    def _expand_skip(stmt: DirectiveStmt) -> List[_PendingInstr]:
        if len(stmt.args) != 1 or not isinstance(stmt.args[0], int):
            raise AsmSyntaxError(".skip expects one integer count", stmt.line)
        count = stmt.args[0]
        if count < 0:
            raise AsmSyntaxError(".skip count must be non-negative", stmt.line)
        filler = Instruction(Opcode.ADDI)  # nop; shared, never executed
        slot = _PendingInstr(lambda a, s: filler, stmt.line)
        return [slot] * count

    def _directive(
        self,
        stmt: DirectiveStmt,
        segment: str,
        data: bytearray,
        fixups: List[tuple],
    ) -> str:
        name = stmt.name
        if name == ".text":
            return "text"
        if name == ".data":
            return "data"
        if name == ".globl":
            return segment
        if segment != "data":
            raise AsmSyntaxError(
                f"{name} outside .data segment", stmt.line
            )
        if name == ".word":
            for arg in stmt.args:
                if isinstance(arg, SymOperand):
                    # symbol-valued word: reserve space, patch after pass 2
                    fixups.append((len(data), arg.name, stmt.line))
                    data.extend(b"\x00\x00\x00\x00")
                else:
                    data.extend(self._directive_int(arg, stmt.line, 32))
        elif name == ".half":
            for arg in stmt.args:
                data.extend(self._directive_int(arg, stmt.line, 16))
        elif name == ".byte":
            for arg in stmt.args:
                data.extend(self._directive_int(arg, stmt.line, 8))
        elif name in (".asciiz", ".ascii"):
            for arg in stmt.args:
                if not isinstance(arg, str):
                    raise AsmSyntaxError(
                        f"{name} expects string literals", stmt.line
                    )
                data.extend(arg.encode("latin-1"))
                if name == ".asciiz":
                    data.append(0)
        elif name == ".space":
            (count,) = stmt.args
            if not isinstance(count, int) or count < 0:
                raise AsmSyntaxError(".space expects a size", stmt.line)
            data.extend(b"\x00" * count)
        elif name == ".align":
            (power,) = stmt.args
            if not isinstance(power, int) or power < 0:
                raise AsmSyntaxError(".align expects a power of two", stmt.line)
            step = 1 << power
            while len(data) % step:
                data.append(0)
        else:
            raise AsmSyntaxError(f"unknown directive {name}", stmt.line)
        return segment

    def _directive_int(self, arg: object, line: int, bits: int) -> bytes:
        if isinstance(arg, SymOperand):
            raise AsmSyntaxError(
                f"symbol references only allowed in .word, not .{bits}-bit "
                "directives",
                line,
            )
        if not isinstance(arg, int):
            raise AsmSyntaxError(f"expected integer, got {arg!r}", line)
        return (arg & ((1 << bits) - 1)).to_bytes(bits // 8, "little")

    # -- pass 2 helpers -----------------------------------------------------

    def _expand(self, stmt: InstrStmt) -> List[_PendingInstr]:
        """Expand one statement into pending instruction slots."""
        m, ops, line = stmt.mnemonic, list(stmt.operands), stmt.line

        def fixed(instr: Instruction) -> List[_PendingInstr]:
            return [_PendingInstr(lambda addr, sym: instr, line)]

        if m in _R_OPS:
            rd, rs1, rs2 = self._regs(ops, 3, line)
            return fixed(Instruction(_R_OPS[m], rd=rd, rs1=rs1, rs2=rs2))
        if m in _I_OPS:
            rd, rs1 = self._regs(ops[:2], 2, line)
            imm = self._imm(ops, 2, line)
            self._check_imm14(imm, line)
            return fixed(Instruction(_I_OPS[m], rd=rd, rs1=rs1, imm=imm))
        if m in _LOAD_OPS:
            rd = self._reg(ops, 0, line)
            mem = self._mem(ops, 1, line)
            return self._mem_access(
                _LOAD_OPS[m], rd, mem, line, is_store=False
            )
        if m in _STORE_OPS:
            rs2 = self._reg(ops, 0, line)
            mem = self._mem(ops, 1, line)
            return self._mem_access(
                _STORE_OPS[m], rs2, mem, line, is_store=True
            )
        if m in _BRANCH_OPS:
            rs1, rs2 = self._regs(ops[:2], 2, line)
            return [self._branch(_BRANCH_OPS[m], rs1, rs2, ops, 2, line)]
        if m in _SWAPPED_BRANCHES:
            rs1, rs2 = self._regs(ops[:2], 2, line)
            return [
                self._branch(_SWAPPED_BRANCHES[m], rs2, rs1, ops, 2, line)
            ]
        if m in _ZERO_BRANCHES:
            opcode, reg_is_rs2 = _ZERO_BRANCHES[m]
            rs = self._reg(ops, 0, line)
            rs1, rs2 = (0, rs) if reg_is_rs2 else (rs, 0)
            return [self._branch(opcode, rs1, rs2, ops, 1, line)]
        return self._expand_pseudo(m, ops, line)

    def _expand_pseudo(
        self, m: str, ops: List[Operand], line: int
    ) -> List[_PendingInstr]:
        if m == "nop":
            return [_PendingInstr(
                lambda a, s: Instruction(Opcode.ADDI), line
            )]
        if m == "mv":
            rd, rs = self._regs(ops, 2, line)
            return [_PendingInstr(
                lambda a, s: Instruction(Opcode.ADDI, rd=rd, rs1=rs), line
            )]
        if m == "not":
            rd, rs = self._regs(ops, 2, line)
            return [_PendingInstr(
                lambda a, s: Instruction(Opcode.XORI, rd=rd, rs1=rs, imm=-1),
                line,
            )]
        if m == "neg":
            rd, rs = self._regs(ops, 2, line)
            return [_PendingInstr(
                lambda a, s: Instruction(Opcode.SUB, rd=rd, rs1=0, rs2=rs),
                line,
            )]
        if m == "li":
            rd = self._reg(ops, 0, line)
            imm = self._imm(ops, 1, line)
            return self._load_constant(rd, imm, line)
        if m == "la":
            rd = self._reg(ops, 0, line)
            sym = self._sym(ops, 1, line)
            return self._load_symbol(rd, sym, line)
        if m == "j":
            return [self._jump(Opcode.JAL, 0, ops, 0, line)]
        if m == "jal":
            if len(ops) == 1:
                return [self._jump(Opcode.JAL, 1, ops, 0, line)]
            rd = self._reg(ops, 0, line)
            return [self._jump(Opcode.JAL, rd, ops, 1, line)]
        if m == "call":
            return [self._jump(Opcode.JAL, 1, ops, 0, line)]
        if m == "jr":
            rs = self._reg(ops, 0, line)
            return [_PendingInstr(
                lambda a, s: Instruction(Opcode.JALR, rd=0, rs1=rs), line
            )]
        if m == "jalr":
            rd, rs = self._regs(ops[:2], 2, line)
            imm = self._imm(ops, 2, line) if len(ops) > 2 else 0
            self._check_imm14(imm, line)
            return [_PendingInstr(
                lambda a, s: Instruction(Opcode.JALR, rd=rd, rs1=rs, imm=imm),
                line,
            )]
        if m == "ret":
            return [_PendingInstr(
                lambda a, s: Instruction(Opcode.JALR, rd=0, rs1=1), line
            )]
        if m == "lui":
            rd = self._reg(ops, 0, line)
            imm = self._imm(ops, 1, line)
            return [_PendingInstr(
                lambda a, s: Instruction(Opcode.LUI, rd=rd, imm=imm), line
            )]
        if m == "ecall":
            return [_PendingInstr(lambda a, s: Instruction(Opcode.ECALL), line)]
        if m == "halt":
            return [_PendingInstr(lambda a, s: Instruction(Opcode.HALT), line)]
        raise AsmSyntaxError(f"unknown mnemonic {m!r}", line)

    def _load_constant(
        self, rd: int, imm: int, line: int
    ) -> List[_PendingInstr]:
        # accept unsigned 32-bit spellings (e.g. li t0, 0xEDB88320)
        if not -(1 << 31) <= imm < (1 << 32):
            raise AsmSyntaxError(f"constant out of 32-bit range: {imm}", line)
        if imm >= 1 << 31:
            imm -= 1 << 32
        if IMM14_MIN <= imm <= IMM14_MAX:
            return [_PendingInstr(
                lambda a, s: Instruction(Opcode.ADDI, rd=rd, imm=imm), line
            )]
        upper, lower = imm >> LUI_SHIFT, imm & ((1 << LUI_SHIFT) - 1)
        return [
            _PendingInstr(
                lambda a, s: Instruction(Opcode.LUI, rd=rd, imm=upper), line
            ),
            _PendingInstr(
                lambda a, s: Instruction(Opcode.ORI, rd=rd, rs1=rd, imm=lower),
                line,
            ),
        ]

    def _load_symbol(
        self, rd: int, sym: str, line: int
    ) -> List[_PendingInstr]:
        def emit_hi(addr: int, symbols: Dict[str, int]) -> Instruction:
            value = self._resolve(sym, symbols, line)
            return Instruction(Opcode.LUI, rd=rd, imm=value >> LUI_SHIFT)

        def emit_lo(addr: int, symbols: Dict[str, int]) -> Instruction:
            value = self._resolve(sym, symbols, line)
            return Instruction(
                Opcode.ORI, rd=rd, rs1=rd,
                imm=value & ((1 << LUI_SHIFT) - 1),
            )

        return [_PendingInstr(emit_hi, line), _PendingInstr(emit_lo, line)]

    def _branch(
        self,
        opcode: Opcode,
        rs1: int,
        rs2: int,
        ops: List[Operand],
        target_index: int,
        line: int,
    ) -> _PendingInstr:
        target = self._target(ops, target_index, line)

        def emit(addr: int, symbols: Dict[str, int]) -> Instruction:
            dest = self._target_addr(target, symbols, line)
            return Instruction(
                opcode, rs1=rs1, rs2=rs2, imm=dest - addr,
                label=target if isinstance(target, str) else None,
            )

        return _PendingInstr(emit, line)

    def _jump(
        self,
        opcode: Opcode,
        rd: int,
        ops: List[Operand],
        target_index: int,
        line: int,
    ) -> _PendingInstr:
        target = self._target(ops, target_index, line)

        def emit(addr: int, symbols: Dict[str, int]) -> Instruction:
            dest = self._target_addr(target, symbols, line)
            return Instruction(
                opcode, rd=rd, imm=dest - addr,
                label=target if isinstance(target, str) else None,
            )

        return _PendingInstr(emit, line)

    def _mem_access(
        self,
        opcode: Opcode,
        reg: int,
        mem: MemOperand,
        line: int,
        is_store: bool,
    ) -> List[_PendingInstr]:
        disp = mem.displacement
        if isinstance(disp, str):
            raise AsmSyntaxError(
                "symbolic displacement not supported; use la first", line
            )
        self._check_imm14(disp, line)
        if is_store:
            instr = Instruction(opcode, rs2=reg, rs1=mem.base, imm=disp)
        else:
            instr = Instruction(opcode, rd=reg, rs1=mem.base, imm=disp)
        return [_PendingInstr(lambda a, s: instr, line)]

    # -- operand extraction -------------------------------------------------

    @staticmethod
    def _resolve(sym: str, symbols: Dict[str, int], line: int) -> int:
        if sym not in symbols:
            raise AsmSyntaxError(f"undefined symbol {sym!r}", line)
        return symbols[sym]

    def _target_addr(
        self, target: Union[str, int], symbols: Dict[str, int], line: int
    ) -> int:
        if isinstance(target, str):
            return self._resolve(target, symbols, line)
        return target

    @staticmethod
    def _target(
        ops: List[Operand], index: int, line: int
    ) -> Union[str, int]:
        if index >= len(ops):
            raise AsmSyntaxError("missing branch target", line)
        op = ops[index]
        if isinstance(op, SymOperand):
            return op.name
        if isinstance(op, ImmOperand):
            return op.value
        raise AsmSyntaxError("branch target must be label or address", line)

    @staticmethod
    def _reg(ops: List[Operand], index: int, line: int) -> int:
        if index >= len(ops) or not isinstance(ops[index], RegOperand):
            raise AsmSyntaxError(f"operand {index + 1} must be a register", line)
        return ops[index].number  # type: ignore[union-attr]

    def _regs(self, ops: List[Operand], count: int, line: int) -> List[int]:
        if len(ops) < count:
            raise AsmSyntaxError(f"expected {count} register operands", line)
        return [self._reg(ops, i, line) for i in range(count)]

    @staticmethod
    def _imm(ops: List[Operand], index: int, line: int) -> int:
        if index >= len(ops) or not isinstance(ops[index], ImmOperand):
            raise AsmSyntaxError(
                f"operand {index + 1} must be an immediate", line
            )
        return ops[index].value  # type: ignore[union-attr]

    @staticmethod
    def _sym(ops: List[Operand], index: int, line: int) -> str:
        if index >= len(ops) or not isinstance(ops[index], SymOperand):
            raise AsmSyntaxError(f"operand {index + 1} must be a symbol", line)
        return ops[index].name  # type: ignore[union-attr]

    @staticmethod
    def _mem(ops: List[Operand], index: int, line: int) -> MemOperand:
        if index >= len(ops) or not isinstance(ops[index], MemOperand):
            raise AsmSyntaxError(
                f"operand {index + 1} must be disp(base)", line
            )
        return ops[index]  # type: ignore[return-value]

    @staticmethod
    def _check_imm14(value: int, line: int) -> None:
        if not IMM14_MIN <= value <= IMM14_MAX:
            raise AsmSyntaxError(
                f"immediate out of 14-bit range: {value}", line
            )


def assemble(source: str, name: str = "<asm>") -> Program:
    """Assemble *source* with default bases; convenience wrapper."""
    return Assembler().assemble(source, name=name)
