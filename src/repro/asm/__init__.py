"""Assembler for the miniature RISC ISA.

Public entry point: :func:`~repro.asm.assembler.assemble`, which turns
assembly source text into a loadable :class:`~repro.isa.program.Program`.
"""

from .assembler import Assembler, assemble
from .lexer import AsmSyntaxError, Token, TokenKind, tokenize
from .parser import (
    DirectiveStmt,
    ImmOperand,
    InstrStmt,
    LabelStmt,
    MemOperand,
    RegOperand,
    SymOperand,
    parse,
)

__all__ = [
    "AsmSyntaxError",
    "Assembler",
    "DirectiveStmt",
    "ImmOperand",
    "InstrStmt",
    "LabelStmt",
    "MemOperand",
    "RegOperand",
    "SymOperand",
    "Token",
    "TokenKind",
    "assemble",
    "parse",
    "tokenize",
]
