"""Parser producing line statements from the token stream.

A statement is one of:

* :class:`LabelStmt` — ``name:``
* :class:`DirectiveStmt` — ``.word 1, 2, label`` etc.
* :class:`InstrStmt` — mnemonic with parsed operands

Operands are small tagged objects (:class:`RegOperand`, :class:`ImmOperand`,
:class:`SymOperand`, :class:`MemOperand`) so the assembler never re-parses
text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from ..isa.registers import is_register, register_number
from .lexer import AsmSyntaxError, Token, TokenKind, tokenize


@dataclass(frozen=True)
class RegOperand:
    """A register operand, already resolved to its number."""

    number: int


@dataclass(frozen=True)
class ImmOperand:
    """A literal integer operand."""

    value: int


@dataclass(frozen=True)
class SymOperand:
    """A symbolic operand (label reference), resolved during assembly."""

    name: str


@dataclass(frozen=True)
class MemOperand:
    """A ``disp(base)`` memory operand; displacement may be symbolic."""

    base: int
    displacement: Union[int, str] = 0


Operand = Union[RegOperand, ImmOperand, SymOperand, MemOperand]


@dataclass(frozen=True)
class LabelStmt:
    name: str
    line: int


@dataclass(frozen=True)
class DirectiveStmt:
    name: str
    args: Sequence[object]  # ints, strs (symbol refs), decoded string literals
    line: int


@dataclass(frozen=True)
class InstrStmt:
    mnemonic: str
    operands: Sequence[Operand]
    line: int


Statement = Union[LabelStmt, DirectiveStmt, InstrStmt]


class _TokenCursor:
    def __init__(self, tokens: Sequence[Token]):
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> Optional[Token]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise AsmSyntaxError("unexpected end of input", 0)
        self._pos += 1
        return token

    def accept(self, kind: TokenKind) -> Optional[Token]:
        token = self.peek()
        if token is not None and token.kind is kind:
            return self.next()
        return None

    def expect(self, kind: TokenKind) -> Token:
        token = self.peek()
        if token is None or token.kind is not kind:
            line = token.line if token else 0
            found = token.kind.value if token else "end of input"
            raise AsmSyntaxError(f"expected {kind.value}, found {found}", line)
        return self.next()


def _parse_operand(cur: _TokenCursor) -> Operand:
    token = cur.peek()
    if token is None:
        raise AsmSyntaxError("expected operand", 0)
    if token.kind is TokenKind.NUMBER:
        cur.next()
        # disp(base) memory operand?
        if cur.accept(TokenKind.LPAREN):
            base = cur.expect(TokenKind.IDENT)
            cur.expect(TokenKind.RPAREN)
            if not is_register(str(base.value)):
                raise AsmSyntaxError(
                    f"bad base register {base.value!r}", base.line
                )
            return MemOperand(
                base=register_number(str(base.value)),
                displacement=int(token.value),  # type: ignore[arg-type]
            )
        return ImmOperand(int(token.value))  # type: ignore[arg-type]
    if token.kind is TokenKind.LPAREN:
        cur.next()
        base = cur.expect(TokenKind.IDENT)
        cur.expect(TokenKind.RPAREN)
        if not is_register(str(base.value)):
            raise AsmSyntaxError(f"bad base register {base.value!r}", base.line)
        return MemOperand(base=register_number(str(base.value)))
    if token.kind is TokenKind.IDENT:
        cur.next()
        name = str(token.value)
        if is_register(name):
            return RegOperand(register_number(name))
        # symbol(base) memory operand, e.g. table(t0)
        if cur.accept(TokenKind.LPAREN):
            base = cur.expect(TokenKind.IDENT)
            cur.expect(TokenKind.RPAREN)
            if not is_register(str(base.value)):
                raise AsmSyntaxError(
                    f"bad base register {base.value!r}", base.line
                )
            return MemOperand(
                base=register_number(str(base.value)), displacement=name
            )
        return SymOperand(name)
    raise AsmSyntaxError(
        f"unexpected token {token.kind.value} in operand", token.line
    )


def parse(source: str) -> List[Statement]:
    """Parse assembly *source* into a statement list.

    Raises:
        AsmSyntaxError: on any syntax error, tagged with the line number.
    """
    statements: List[Statement] = []
    cur = _TokenCursor(list(tokenize(source)))
    while cur.peek() is not None:
        token = cur.peek()
        assert token is not None
        if token.kind is TokenKind.NEWLINE:
            cur.next()
            continue
        if token.kind is TokenKind.IDENT:
            cur.next()
            if cur.accept(TokenKind.COLON):
                statements.append(LabelStmt(str(token.value), token.line))
                continue
            # instruction mnemonic with operands until newline
            operands: List[Operand] = []
            nxt = cur.peek()
            if nxt is not None and nxt.kind is not TokenKind.NEWLINE:
                operands.append(_parse_operand(cur))
                while cur.accept(TokenKind.COMMA):
                    operands.append(_parse_operand(cur))
            cur.expect(TokenKind.NEWLINE)
            statements.append(
                InstrStmt(str(token.value).lower(), tuple(operands), token.line)
            )
            continue
        if token.kind is TokenKind.DIRECTIVE:
            cur.next()
            args: List[object] = []
            nxt = cur.peek()
            if nxt is not None and nxt.kind is not TokenKind.NEWLINE:
                args.append(_parse_directive_arg(cur))
                while cur.accept(TokenKind.COMMA):
                    args.append(_parse_directive_arg(cur))
            cur.expect(TokenKind.NEWLINE)
            statements.append(
                DirectiveStmt(str(token.value).lower(), tuple(args), token.line)
            )
            continue
        raise AsmSyntaxError(
            f"unexpected {token.kind.value} at start of statement", token.line
        )
    return statements


def _parse_directive_arg(cur: _TokenCursor) -> object:
    token = cur.next()
    if token.kind is TokenKind.NUMBER:
        return int(token.value)  # type: ignore[arg-type]
    if token.kind is TokenKind.STRING:
        return str(token.value)
    if token.kind is TokenKind.IDENT:
        return SymOperand(str(token.value))
    raise AsmSyntaxError(
        f"bad directive argument {token.kind.value}", token.line
    )
