"""Command-line front end: ``python -m repro <command>``.

Commands
--------
``list``        — the benchmark analogs and registered kernels.
``run``         — simulate one benchmark analog, print run statistics.
``profile``     — profile a benchmark and print its Table 2 row.
``allocate``    — branch allocation sizing for one benchmark (Table 3/4);
                  ``--static`` allocates from the static conflict-graph
                  estimate instead, with no profiling or simulation step.
``cfg``         — static control-flow summary (blocks, loops, functions).
``lint``        — static verifier diagnostics for one benchmark or --all;
                  ``--strict`` fails on warnings too and ``--waive
                  BENCH:CODE`` suppresses known findings.
``verify-static`` — score the Ball–Larus direction heuristics and the
                  estimated conflict graphs against measured profiles
                  (dynamic-weighted hit rate, per-heuristic breakdown,
                  working-set shape, edge precision/recall).
``experiment``  — run a registered experiment (table1..figure4, ablations);
                  ``--jobs N`` fans the benchmark simulations across a
                  process pool and ``--cache DIR`` enables the
                  content-addressed artifact store (per-job timing and
                  hit/miss counters are reported either way).
                  ``--timeout``/``--retries`` bound each job: failing
                  benchmarks are retried with backoff and then dropped,
                  the experiment runs on the survivors, and the exit is
                  nonzero only when *every* benchmark failed.
``faults``      — fault-injection demo: runs a benchmark subset with
                  injected worker crashes / hangs / flaky failures /
                  cache corruption, then a clean recovery pass proving
                  quarantined entries are resimulated.
``serve``       — run the analysis-as-a-service daemon on a unix socket:
                  bounded admission queue with load shedding, per-tenant
                  token-bucket quotas, per-job deadlines, SIGTERM drain
                  and journal-driven crash recovery (docs/SERVICE.md).
``loadgen``     — open-loop load generator against a running daemon;
                  reports jobs/sec, p50/p99 latency, cache-hit ratio and
                  shed rate, with optional slow_client/conn_drop fault
                  modes.
``merge-shards`` — union shard artifact stores and journals into one
                  suite store after a distributed ``--shard K/N`` run,
                  byte-verifying artifacts two shards both produced;
                  partial shards (a journal torn by a mid-run death)
                  merge with warnings instead of aborting.
``supervise``   — crash-safe supervised distributed run: one parent
                  orchestrator spawns ``--workers N`` shard engines
                  over a shared store, heartbeat-leases them, restarts
                  dead shards (journal-diff recovery, bounded backoff),
                  reassigns exhausted shards' work, speculatively
                  re-executes tail stragglers, and auto-merges to a
                  byte-verified result.  SIGTERM drains: workers
                  checkpoint, the partial result is merged, and the
                  exit is honest (0 on a clean drain).  Also reachable
                  as ``experiment --workers N``.
``disasm``      — assemble a workload and print its program listing.

``list`` also enumerates the registered benchmark *sets*; selection-aware
commands (``experiment``, ``verify-static``, ``faults``, ``loadgen``)
accept ``--set EXPR`` selector expressions over them
(``unix+paper6-gcc``, ``all-variants``, ``perl_*`` — see
docs/REGISTRY.md), and ``experiment``/``verify-static`` accept
``--shard K/N`` to run one deterministic slice of a distributed suite
run.

``run``, ``profile``, ``allocate``, ``lint``, ``verify-static``,
``experiment``, ``faults`` and ``loadgen`` accept
``--json`` and then emit one versioned envelope
(``{schema_version, command, params, results}`` — see
:mod:`repro.schema`) instead of the human-readable prints.

``repro --version`` prints the package version together with the output
schema version the envelopes carry.

Unknown benchmark names exit with status 2 and a message on stderr.
``lint`` exits 1 when any program has errors.
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .allocation import (
    BranchAllocator,
    ClassifiedBranchAllocator,
    conventional_cost,
    required_bht_size,
)
from .analysis import working_set_metrics
from .errors import SuiteDegraded
from .eval import BenchmarkRunner
from .eval import interrupt
from .eval.experiments import EXPERIMENTS, run_experiment
from .eval.shards import ShardSpec
from .schema import SCHEMA_VERSION, dump, envelope
from .sim.api import DEFAULT_BACKEND, backend_names
from .static_analysis import (
    StaticConflictEstimator,
    build_cfg,
    find_loops,
    lint_program,
)
from .workloads import (
    benchmark_sets,
    benchmark_suite,
    build_workload,
    get_benchmark,
    kernel_registry,
    resolve_benchmark,
    resolve_selection,
    run_workload,
)


def _threshold_for(scale: float) -> int:
    return 100 if scale >= 0.9 else 10


def _emit(args: argparse.Namespace, command: str, params, results) -> None:
    """Print the versioned JSON envelope for a --json invocation."""
    print(dump(envelope(command, params, results)))


def _selection(args: argparse.Namespace, default_set: str = ""):
    """Resolve ``--set`` / ``--benchmarks`` into one Selection.

    The two flags union: ``--set unix --benchmarks compress`` covers the
    UNIX analogs plus compress.  ``--benchmarks`` accepts the full
    selector grammar, so the historical comma form (``plot,pgp``) still
    parses — as a union expression, not a hand-rolled split.  With
    neither flag, *default_set* resolves (or None is returned and the
    command applies its own default).

    Raises:
        SelectionError: unknown names/sets (exit 2 via main()).
    """
    terms = []
    if getattr(args, "set", ""):
        terms.append(args.set)
    raw = getattr(args, "benchmarks", None)
    if isinstance(raw, str):
        if raw:
            terms.append(raw)
    elif raw:  # positional nargs="*" form
        terms.extend(raw)
    if not terms:
        return resolve_selection(default_set) if default_set else None
    return resolve_selection(terms)


def cmd_list(args: argparse.Namespace) -> int:
    suite = benchmark_suite()
    kernels = sorted(kernel_registry().items())
    sets = benchmark_sets()
    if args.json:
        _emit(
            args,
            "list",
            {},
            {
                "benchmarks": [
                    {"name": name, "description": spec.description}
                    for name, spec in suite.items()
                ],
                "kernels": [
                    {"name": name, "description": spec.description}
                    for name, spec in kernels
                ],
                "sets": [
                    {
                        "name": s.name,
                        "members": list(s.members),
                        "count": len(s.members),
                        "default_scale": s.default_scale,
                        "default_trace_limit": s.default_trace_limit,
                        "description": s.description,
                    }
                    for s in sets.values()
                ],
            },
        )
        return 0
    print("benchmark analogs:")
    for name, spec in suite.items():
        print(f"  {name:10s} {spec.description}")
    print("\nkernels:")
    for name, spec in kernels:
        print(f"  {name:10s} {spec.description}")
    print("\nbenchmark sets (selector terms — see docs/REGISTRY.md):")
    for s in sets.values():
        defaults = f"scale {s.default_scale:g}"
        if s.default_trace_limit:
            defaults += f", trace limit {s.default_trace_limit}"
        print(f"  {s.name:10s} {len(s.members):2d} benchmark(s), "
              f"{defaults} — {s.description}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    spec = get_benchmark(resolve_benchmark(args.benchmark), scale=args.scale)
    built = build_workload(spec)
    result = run_workload(built, backend=args.backend)
    checksum = result.output.decode().strip()
    if args.json:
        _emit(
            args,
            "run",
            {
                "benchmark": args.benchmark,
                "scale": args.scale,
                "backend": args.backend,
            },
            {
                "benchmark": spec.name,
                "program_instructions": len(built.program),
                "static_branches": built.static_conditional_branches,
                "retired_instructions": result.instructions,
                "conditional_branches": result.conditional_branches,
                "taken_rate": result.taken_rate,
                "halted": result.halted,
                "checksum": checksum,
            },
        )
        return 0
    print(f"{spec.name}: {len(built.program)} instructions, "
          f"{built.static_conditional_branches} static branches")
    print(f"retired {result.instructions} instructions, "
          f"{result.conditional_branches} conditional branches "
          f"({result.taken_rate:.1%} taken), "
          f"{'halted' if result.halted else 'fuel-capped'}")
    print(f"driver checksum: {checksum}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    resolve_benchmark(args.benchmark)
    runner = BenchmarkRunner(
        scale=args.scale,
        cache_dir=args.cache or None,
        backend=args.backend,
    )
    threshold = args.threshold or _threshold_for(args.scale)
    metrics = working_set_metrics(
        runner.profile(args.benchmark), threshold=threshold
    )
    if args.json:
        _emit(
            args,
            "profile",
            {
                "benchmark": args.benchmark,
                "scale": args.scale,
                "threshold": threshold,
                "cache": args.cache or None,
                "backend": args.backend,
            },
            {
                "benchmark": metrics.name,
                "working_sets": metrics.total_sets,
                "average_static_size": metrics.average_static_size,
                "average_dynamic_size": metrics.average_dynamic_size,
                "largest_size": metrics.largest_size,
                "static_branches": metrics.static_branches,
                "threshold": metrics.threshold,
            },
        )
        return 0
    print(f"{metrics.name}: {metrics.total_sets} working sets, "
          f"avg static {metrics.average_static_size:.1f}, "
          f"avg dynamic {metrics.average_dynamic_size:.1f}, "
          f"largest {metrics.largest_size} "
          f"(of {metrics.static_branches} statics, "
          f"threshold {metrics.threshold})")
    return 0


def cmd_allocate(args: argparse.Namespace) -> int:
    resolve_benchmark(args.benchmark)
    threshold = args.threshold or _threshold_for(args.scale)
    if args.static:
        return _allocate_static(args, threshold)
    runner = BenchmarkRunner(scale=args.scale, cache_dir=args.cache or None)
    profile = runner.profile(args.benchmark)
    plain = BranchAllocator(profile, threshold=threshold)
    baseline = conventional_cost(plain.graph, 1024)
    sizing3 = required_bht_size(plain, baseline)
    classified = ClassifiedBranchAllocator(profile, threshold=threshold)
    sizing4 = required_bht_size(classified, baseline, min_size=3)
    if args.json:
        _emit(
            args,
            "allocate",
            {
                "benchmark": args.benchmark,
                "scale": args.scale,
                "threshold": threshold,
                "static": False,
                "cache": args.cache or None,
            },
            {
                "benchmark": args.benchmark,
                "baseline_cost": baseline,
                "required_size_plain": sizing3.required_size,
                "required_size_classified": sizing4.required_size,
            },
        )
        return 0
    print(f"{args.benchmark}: baseline cost @1024 conventional = {baseline}")
    print(f"  required BHT size (Table 3 style): {sizing3.required_size}")
    print(f"  with classification (Table 4):     {sizing4.required_size}")
    return 0


def _allocate_static(args: argparse.Namespace, threshold: int) -> int:
    """Profile-free allocation: build, estimate, colour.  No simulation."""
    if args.bht < 1:
        print(f"error: --bht must be positive, got {args.bht}",
              file=sys.stderr)
        return 2
    built = build_workload(get_benchmark(args.benchmark, scale=args.scale))
    estimate = StaticConflictEstimator(threshold=threshold).estimate(
        built.program
    )
    graph = estimate.graph
    allocator = BranchAllocator.from_graph(graph, threshold=threshold)
    allocation = allocator.allocate(args.bht)
    baseline = conventional_cost(graph, 1024)
    sizing = required_bht_size(allocator, baseline) if baseline else None
    if args.json:
        _emit(
            args,
            "allocate",
            {
                "benchmark": args.benchmark,
                "scale": args.scale,
                "threshold": threshold,
                "static": True,
                "bht": args.bht,
            },
            {
                "benchmark": args.benchmark,
                "program_instructions": len(built.program),
                "static_branches": built.static_conditional_branches,
                "natural_loops": len(estimate.loops.loops),
                "predicted_nodes": graph.node_count,
                "predicted_edges": graph.edge_count,
                "predicted_cost": allocation.cost,
                "shared_branches": len(allocation.shared_branches),
                "baseline_cost": baseline,
                "predicted_required_size": (
                    sizing.required_size if sizing else None
                ),
            },
        )
        return 0
    print(f"{args.benchmark}: static estimate (no profiling run)")
    print(f"  {len(built.program)} instructions, "
          f"{built.static_conditional_branches} static branches, "
          f"{len(estimate.loops.loops)} natural loops")
    print(f"  predicted conflict graph: {graph.node_count} nodes, "
          f"{graph.edge_count} edges (threshold {threshold})")
    print(f"  allocation @{args.bht} entries: predicted cost "
          f"{allocation.cost}, {len(allocation.shared_branches)} shared "
          f"branches")
    if sizing is not None:
        print(f"  predicted required BHT size: {sizing.required_size} "
              f"(vs conventional cost {baseline} @1024)")
    return 0


def cmd_cfg(args: argparse.Namespace) -> int:
    resolve_benchmark(args.benchmark)
    built = build_workload(get_benchmark(args.benchmark, scale=args.scale))
    cfg = build_cfg(built.program)
    forest = find_loops(cfg)
    branches = cfg.conditional_branches()
    in_loops = sum(1 for _, block in branches if forest.by_block.get(block))
    reachable = cfg.reachable_blocks()
    max_depth = max((l.depth for l in forest.loops), default=0)
    print(f"{args.benchmark}: {len(built.program)} instructions")
    print(f"  blocks:     {cfg.block_count} "
          f"({len(reachable)} reachable), {cfg.edge_count} edges")
    print(f"  functions:  {len(cfg.function_entries)} entries, "
          f"{len(cfg.call_sites)} call sites, "
          f"{len(cfg.indirect_targets)} address-taken labels")
    print(f"  loops:      {len(forest.loops)} natural loops, "
          f"max nesting depth {max_depth}")
    print(f"  branches:   {len(branches)} conditional, "
          f"{in_loops} inside a local loop body")
    if args.loops:
        for loop in sorted(
            forest.loops, key=lambda l: (l.depth, cfg.address_of(
                cfg.blocks[l.header]))
        ):
            print(f"    depth {loop.depth}: header "
                  f"0x{cfg.address_of(cfg.blocks[loop.header]):08x}, "
                  f"{len(loop.body)} blocks, "
                  f"{len(loop.back_edges)} back edge(s)")
    return 0


def _parse_waivers(specs) -> set:
    """``--waive BENCH:CODE`` pairs -> {(benchmark, code)}.

    Raises:
        SystemExit-friendly ValueError via the caller on a malformed spec.
    """
    waived = set()
    for spec in specs or ():
        bench, sep, code = spec.partition(":")
        if not sep or not bench or not code:
            raise ValueError(
                f"malformed --waive {spec!r} (expected BENCH:CODE)"
            )
        waived.add((bench, code))
    return waived


def cmd_lint(args: argparse.Namespace) -> int:
    if args.all:
        names = sorted(benchmark_suite())
    elif args.benchmark:
        names = [resolve_benchmark(args.benchmark)]
    else:
        print("error: give a benchmark name or --all", file=sys.stderr)
        return 2
    try:
        waivers = _parse_waivers(args.waive)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    failed = False
    waived_count = 0
    reports = []
    for name in names:
        built = build_workload(get_benchmark(name, scale=args.scale))
        report = lint_program(built.program)
        reports.append(report)
        live = [
            d for d in report.diagnostics if (name, d.code) not in waivers
        ]
        waived_count += len(report.diagnostics) - len(live)
        if args.strict:
            failed = failed or bool(live)
        else:
            failed = failed or any(d.severity == "error" for d in live)
        if args.json:
            continue
        if report.clean and args.all:
            print(f"{name}: clean")
        else:
            print(report.render())
    if args.json:
        _emit(
            args,
            "lint",
            {
                "benchmark": args.benchmark or None,
                "all": args.all,
                "scale": args.scale,
                "strict": args.strict,
                "waive": sorted(f"{b}:{c}" for b, c in waivers),
            },
            {
                "reports": [r.as_dict() for r in reports],
                "failed": failed,
                "waived": waived_count,
            },
        )
    return 1 if failed else 0


def cmd_verify_static(args: argparse.Namespace) -> int:
    from .eval.engine import shard_subset
    from .eval.static_compare import (
        format_verify_static,
        run_verify_static,
    )

    selection = _selection(args)
    shard = ShardSpec.parse(args.shard) if args.shard else None
    runner = BenchmarkRunner(
        scale=args.scale,
        cache_dir=args.cache or None,
        jobs=args.jobs,
        shard=shard,
        selection=selection.expression if selection else None,
    )
    # an explicit selection is sharded here; the default (None) path
    # shards inside run_verify_static over the full registry
    benchmarks = (
        shard_subset(runner, selection.names) if selection else None
    )
    rows = run_verify_static(
        runner,
        benchmarks=benchmarks,
        threshold=args.threshold or None,
    )
    if args.json:
        total_exec = sum(r.executions for r in rows)
        total_hits = sum(r.hits for r in rows)
        _emit(
            args,
            "verify-static",
            {
                "benchmarks": list(selection.names) if selection else [],
                "scale": args.scale,
                "threshold": args.threshold or None,
                "cache": args.cache or None,
                "jobs": args.jobs,
                "selection": selection.expression if selection else None,
                "shard": shard.tag if shard else None,
            },
            {
                "rows": [r.as_dict() for r in rows],
                "suite": {
                    "executions": total_exec,
                    "hits": total_hits,
                    "hit_rate": (
                        total_hits / total_exec if total_exec else None
                    ),
                },
                "failures": _failures_payload(runner),
            },
        )
        return 0 if rows else 1
    print(format_verify_static(rows))
    return 0 if rows else 1


def _failures_payload(runner: BenchmarkRunner) -> list:
    """The envelope's ``failures`` array: one object per failed benchmark."""
    return [
        {"benchmark": name, **error.to_dict()}
        for name, error in sorted(runner.failures.items())
    ]


def _materialise_selection(runner: BenchmarkRunner, selection) -> str:
    """``experiment --set EXPR`` with no id: just produce the artifacts.

    The distributed-run workhorse — each host runs the same selector
    with its own ``--shard K/N`` against a private (or shared) store,
    and ``repro merge-shards`` unions the results afterwards.
    """
    from .eval.engine import (
        prefetch_artifacts,
        shard_subset,
        surviving_benchmarks,
    )

    local = shard_subset(runner, selection.names)
    if not local:
        return (
            f"(shard {runner.shard} owns no benchmarks of "
            f"{selection.expression!r}; nothing to do on this host)"
        )
    prefetch_artifacts(runner, local)
    survivors = surviving_benchmarks(runner, local)
    if not survivors:
        raise SuiteDegraded(
            f"every benchmark of selection {selection.expression!r} "
            f"failed ({', '.join(sorted(runner.failures))})",
            selection=selection.expression,
        )
    return (
        f"materialised {len(survivors)}/{len(local)} benchmark(s) of "
        f"{selection.expression!r}: {', '.join(survivors)}"
    )


def cmd_experiment(args: argparse.Namespace) -> int:
    if (args.resume or args.checkpoint_every) and not args.cache:
        print(
            "error: --resume/--checkpoint-every need --cache (the journal "
            "and checkpoints live in the cache directory)",
            file=sys.stderr,
        )
        return 2
    selection = _selection(args)
    if not args.id and selection is None:
        print(
            "error: give an experiment id, a --set expression to "
            "materialise, or both",
            file=sys.stderr,
        )
        return 2
    shard = ShardSpec.parse(args.shard) if args.shard else None
    scale = args.scale
    if scale is None:
        # a set's declared default scale applies when the user did not
        # pick one (e.g. `--set smoke` runs at 0.05)
        scale = (
            selection.default_scale
            if selection is not None and selection.default_scale is not None
            else 1.0
        )
    sup_report = None
    workers = getattr(args, "workers", 0) or 0
    if workers > 1:
        from .errors import ShardRestartsExhausted, SuiteInterrupted
        from .eval.supervisor import ShardSupervisor

        if not args.cache:
            print(
                "error: --workers needs --cache (the shared store the "
                "shard workers cooperate through)",
                file=sys.stderr,
            )
            return 2
        if shard is not None:
            print(
                "error: --workers and --shard are mutually exclusive "
                "(the supervisor computes the partition itself)",
                file=sys.stderr,
            )
            return 2
        names = (
            list(selection.names)
            if selection
            else list(EXPERIMENTS[args.id].benchmarks)
        )
        supervisor = ShardSupervisor(
            names,
            workers=workers,
            store_root=args.cache,
            scale=scale,
            backend=args.backend,
            checkpoint_every_events=args.checkpoint_every or 2_000,
            retries=args.retries,
            selection=selection.expression if selection else None,
        )
        with interrupt.sigterm_drain():
            sup_report = supervisor.run()
        if sup_report.interrupted:
            raise SuiteInterrupted(
                "supervised run drained on SIGTERM; rerun the same "
                "command to resume from the journal",
                completed=list(sup_report.completed),
                remaining=list(sup_report.remaining),
            )
        if sup_report.exhausted:
            raise ShardRestartsExhausted(
                f"{len(sup_report.lost)} benchmark(s) lost after every "
                "shard slot exhausted its restart budget: "
                + ", ".join(sup_report.lost),
                benchmarks=list(sup_report.lost),
            )
        # the supervised pass left a warm store + journal; the normal
        # runner below replays it (journal/store hits) to assemble the
        # experiment output without re-simulating anything
        args.resume = True
    # Constructing the runner validates the run journal when resuming: a
    # structurally damaged journal raises JournalInvalid (caught in
    # main(), exit 1) naming the journal path and the offending record.
    runner = BenchmarkRunner(
        scale=scale,
        cache_dir=args.cache or None,
        jobs=args.jobs,
        timeout=args.timeout or None,
        retries=args.retries,
        checkpoint_every_events=args.checkpoint_every or None,
        resume=args.resume,
        backend=args.backend,
        shard=shard,
        selection=selection.expression if selection else None,
    )
    for warning in runner.engine.journal_warnings:
        print(f"warning: {warning}", file=sys.stderr)
    experiment = EXPERIMENTS[args.id] if args.id else None
    params = {
        "id": args.id or None,
        "scale": scale,
        "jobs": args.jobs,
        "cache": args.cache or None,
        "timeout": args.timeout or None,
        "retries": args.retries,
        "resume": args.resume,
        "checkpoint_every": args.checkpoint_every or None,
        "backend": args.backend,
        "selection": selection.expression if selection else None,
        "shard": shard.tag if shard else None,
        "workers": workers or None,
    }
    try:
        # SIGTERM drains instead of killing: workers checkpoint, the
        # journal records completed work, and the run exits 1 with a
        # typed suite_interrupted message; rerun --resume to continue.
        with interrupt.sigterm_drain():
            if experiment is not None:
                output = run_experiment(
                    args.id,
                    runner,
                    benchmarks=(
                        list(selection.names) if selection else None
                    ),
                )
            else:
                output = _materialise_selection(runner, selection)
    except SuiteDegraded as exc:
        if args.json:
            _emit(
                args,
                "experiment",
                params,
                {
                    "id": args.id or None,
                    "degraded": exc.to_dict(),
                    "failures": _failures_payload(runner),
                    "engine": runner.stats.as_dict(),
                },
            )
        else:
            print(f"error: {exc}", file=sys.stderr)
            print(runner.stats.render(), file=sys.stderr)
        return 1
    if args.json:
        _emit(
            args,
            "experiment",
            params,
            {
                "id": experiment.id if experiment else None,
                "paper_artifact": (
                    experiment.paper_artifact if experiment else None
                ),
                "description": (
                    experiment.description if experiment else None
                ),
                "benchmarks": list(
                    selection.names
                    if selection
                    else experiment.benchmarks
                ),
                "output": output,
                "failures": _failures_payload(runner),
                "engine": runner.stats.as_dict(),
                "supervisor": (
                    sup_report.as_dict() if sup_report else None
                ),
            },
        )
        return 0
    print(output)
    print()
    if sup_report is not None:
        print(sup_report.render())
        print()
    print(runner.stats.render())
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Fault-injection demo: poisoned pass, then a clean recovery pass."""
    import json as json_mod
    import shutil
    import tempfile

    from .eval.engine import ExecutionEngine
    from .eval.faults import FaultPlan

    selection = _selection(args, default_set="smoke")
    names = list(selection.names)
    scale = args.scale
    if scale is None:
        scale = (
            selection.default_scale
            if selection.default_scale is not None
            else 0.05
        )
    crash = [args.crash] if args.crash else []
    corrupt = [args.corrupt] if args.corrupt else []
    if not any(
        (args.crash, args.hang, args.flaky, args.corrupt, args.kill)
    ):
        # default demo: one worker dies hard, one cache entry is damaged
        crash = [names[0]]
        corrupt = [names[-1]]
    kill = {}
    if args.kill:
        bench, _, events = args.kill.partition(":")
        kill[bench] = int(events or 10_000)
    # worker_kill proves checkpoint/resume, which needs an artifact store
    # for the checkpoint directory and periodic snapshots to restore from
    checkpoint_every = args.checkpoint_every or (2_000 if kill else None)
    state_dir = tempfile.mkdtemp(prefix="repro-faults-")
    cache_dir = args.cache or None
    cache_is_temp = cache_dir is None and bool(corrupt or kill)
    if cache_is_temp:
        cache_dir = tempfile.mkdtemp(prefix="repro-faults-cache-")
    flaky = {}
    if args.flaky:
        bench, _, count = args.flaky.partition(":")
        flaky[bench] = int(count or 1)
    plan = FaultPlan(
        worker_crash=tuple(crash),
        worker_hang=(args.hang,) if args.hang else (),
        flaky=flaky,
        corrupt_trace=tuple(corrupt),
        worker_kill=kill,
        hang_seconds=(args.timeout or 5.0) * 3,
        state_dir=state_dir,
    )
    try:
        with plan.installed():
            poisoned = ExecutionEngine(
                scale=scale,
                cache_dir=cache_dir,
                jobs=args.jobs,
                timeout=args.timeout or None,
                retries=args.retries,
                checkpoint_every_events=checkpoint_every,
            )
            poisoned.prefetch(names)
        recovery = ExecutionEngine(
            scale=scale,
            cache_dir=cache_dir,
            jobs=args.jobs,
            timeout=args.timeout or None,
            retries=args.retries,
            checkpoint_every_events=checkpoint_every,
        )
        recovered = recovery.prefetch(names)
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)
        if cache_is_temp:
            shutil.rmtree(cache_dir, ignore_errors=True)
    ok = len(recovered) == len(names)
    if args.json:
        _emit(
            args,
            "faults",
            {
                "benchmarks": names,
                "selection": selection.expression,
                "scale": scale,
                "jobs": args.jobs,
                "cache": args.cache or None,
                "timeout": args.timeout or None,
                "retries": args.retries,
                "checkpoint_every": checkpoint_every,
            },
            {
                "plan": json_mod.loads(plan.to_json()),
                "injected": poisoned.stats.as_dict(),
                "failures": [
                    {"benchmark": name, **error.to_dict()}
                    for name, error in sorted(poisoned.failures.items())
                ],
                "recovery": recovery.stats.as_dict(),
                "recovered": sorted(recovered),
            },
        )
        return 0 if ok else 1
    print("== poisoned pass ==")
    print(poisoned.stats.render())
    print()
    print("== clean recovery pass ==")
    print(recovery.stats.render())
    print(
        f"\nrecovered {len(recovered)}/{len(names)} benchmark(s): "
        + (", ".join(sorted(recovered)) or "none")
    )
    return 0 if ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the analysis daemon until it drains (SIGTERM) or dies."""
    from .service import ServiceConfig, serve

    config = ServiceConfig(
        socket_path=args.socket,
        cache_dir=args.cache,
        workers=args.workers,
        queue_limit=args.queue_limit,
        retries=args.retries,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        checkpoint_every=args.checkpoint_every,
        default_deadline_s=args.deadline or None,
    )
    print(
        f"repro serve: socket {args.socket}  cache {args.cache}  "
        f"workers {args.workers}  queue {args.queue_limit}",
        file=sys.stderr,
        flush=True,
    )
    return serve(config)


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Open-loop load generation against a running daemon."""
    from .eval.faults import FaultPlan, active_plan
    from .service import LoadgenConfig, run_loadgen

    selection = _selection(args, default_set="plot")
    config = LoadgenConfig(
        socket_path=args.socket,
        rate=args.rate,
        jobs=args.jobs,
        benchmarks=selection.names,
        tenants=tuple(f"tenant-{i}" for i in range(max(1, args.tenants))),
        scale=args.scale,
        backend=args.backend,
        predictors=tuple(p for p in args.predictors.split(",") if p),
        deadline_s=args.deadline or None,
    )
    plan = active_plan()
    if args.slow_client or args.conn_drop:
        plan = FaultPlan(
            slow_client=args.slow_client, conn_drop=args.conn_drop
        )
    report = run_loadgen(config, plan=plan)
    params = {
        "socket": args.socket,
        "rate": args.rate,
        "jobs": args.jobs,
        "benchmarks": list(config.benchmarks),
        "selection": selection.expression,
        "tenants": len(config.tenants),
        "scale": args.scale,
        "backend": args.backend,
        "predictors": list(config.predictors),
        "deadline_s": args.deadline or None,
        "slow_client": args.slow_client,
        "conn_drop": args.conn_drop,
    }
    if args.json:
        _emit(args, "loadgen", params, report)
    else:
        print(
            f"{report['jobs']} job(s) at {report['rate_hz']:g}/s over "
            f"{report['duration_s']:.2f}s: "
            f"{report['completed']} completed, "
            f"{report['rejected']} rejected "
            f"({report['rejected_overloaded']} shed, "
            f"{report['rejected_quota']} over quota), "
            f"{report['failed']} failed, {report['dropped']} dropped"
        )
        print(
            f"throughput {report['jobs_per_sec']:.2f} jobs/s  "
            f"p50 {report['latency_p50_s']:.3f}s  "
            f"p99 {report['latency_p99_s']:.3f}s  "
            f"cache-hit {report['cache_hit_ratio']:.2f}  "
            f"shed-rate {report['shed_rate']:.2f}"
        )
    return 1 if report["failed"] else 0


def cmd_merge_shards(args: argparse.Namespace) -> int:
    """Union N shard artifact stores + journals into one suite store."""
    from .eval.shards import merge_shards

    report = merge_shards(args.sources, args.into)
    for warning in report.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if args.json:
        _emit(
            args,
            "merge-shards",
            {"sources": list(args.sources), "into": args.into},
            report.as_dict(),
        )
        return 0
    print(
        f"merged {len(report.sources)} shard store(s) into "
        f"{report.destination}:"
    )
    print(f"  artifacts: {report.artifacts_copied} copied, "
          f"{report.artifacts_identical} already present (byte-verified)")
    print(f"  journal:   {sum(report.journal_records.values())} record(s) "
          f"unioned, {report.journal_skipped} damaged line(s) skipped")
    print(f"  completed: {len(report.benchmarks)} benchmark(s): "
          + (", ".join(report.benchmarks) or "none"))
    return 0


def _run_supervised(
    args: argparse.Namespace, selection, scale: float
):
    """Build and run a :class:`ShardSupervisor` from CLI arguments."""
    from .eval.supervisor import (
        LEASE_INTERVAL_SECONDS,
        ShardSupervisor,
    )

    supervisor = ShardSupervisor(
        selection.names,
        workers=args.workers,
        store_root=args.cache,
        scale=scale,
        backend=args.backend,
        checkpoint_every_events=args.checkpoint_every or 2_000,
        retries=args.retries,
        max_restarts=args.max_restarts,
        lease_timeout=args.lease_timeout,
        lease_interval=min(
            LEASE_INTERVAL_SECONDS, args.lease_timeout / 4.0
        ),
        speculate=not args.no_speculate,
        selection=selection.expression,
    )
    with interrupt.sigterm_drain():
        return supervisor.run()


def cmd_supervise(args: argparse.Namespace) -> int:
    """Supervised N-worker distributed suite run over a shared store."""
    from .errors import ShardRestartsExhausted

    selection = _selection(args)
    if selection is None:
        print(
            "error: give --set and/or --benchmarks to select what to "
            "supervise",
            file=sys.stderr,
        )
        return 2
    if args.workers < 1:
        print(
            f"error: --workers must be >= 1, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    scale = args.scale
    if scale is None:
        scale = (
            selection.default_scale
            if selection.default_scale is not None
            else 1.0
        )
    report = _run_supervised(args, selection, scale)
    if report.merge is not None:
        for warning in report.merge.warnings:
            print(f"warning: {warning}", file=sys.stderr)
    if args.json:
        _emit(
            args,
            "supervise",
            {
                "selection": selection.expression,
                "benchmarks": list(selection.names),
                "workers": args.workers,
                "scale": scale,
                "cache": args.cache,
                "backend": args.backend,
                "retries": args.retries,
                "checkpoint_every": args.checkpoint_every or 2_000,
                "max_restarts": args.max_restarts,
                "lease_timeout": args.lease_timeout,
                "speculate": not args.no_speculate,
            },
            report.as_dict(),
        )
    else:
        print(report.render())
    if report.interrupted:
        # an honest drain: completed work is durable and merged; a rerun
        # of the same command resumes from the journal.  Exit 0.
        return 0
    if report.exhausted:
        raise ShardRestartsExhausted(
            f"{len(report.lost)} benchmark(s) lost: every shard slot "
            "that could run them exhausted its restart budget "
            f"({', '.join(report.lost)})",
            benchmarks=list(report.lost),
            max_restarts=args.max_restarts,
        )
    return 1 if report.failed else 0


def cmd_disasm(args: argparse.Namespace) -> int:
    resolve_benchmark(args.benchmark)
    built = build_workload(get_benchmark(args.benchmark, scale=args.scale))
    listing = built.program.listing()
    if args.head:
        lines = listing.splitlines()
        listing = "\n".join(lines[: args.head])
        listing += f"\n... ({len(lines) - args.head} more lines)"
    print(listing)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="branch working set analysis reproduction "
        "(Kim & Tyson, MICRO 1998)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {__version__} (schema {SCHEMA_VERSION})",
        help="print package and output-schema versions",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_json(p: argparse.ArgumentParser) -> None:
        p.add_argument("--json", action="store_true",
                       help="emit the versioned JSON envelope "
                       "(see repro.schema) instead of prints")

    def add_set(p: argparse.ArgumentParser) -> None:
        p.add_argument("--set", default="", metavar="EXPR",
                       help="benchmark selector expression over registered "
                       "sets/names/globs (e.g. unix+paper6-gcc, perl_*; "
                       "see docs/REGISTRY.md); unions with --benchmarks")

    p_list = sub.add_parser(
        "list", help="list benchmarks, kernels and benchmark sets"
    )
    add_json(p_list)

    def add_backend(p: argparse.ArgumentParser) -> None:
        p.add_argument("--backend", choices=backend_names(),
                       default=DEFAULT_BACKEND,
                       help="simulation backend (superblock = compiled "
                       "traces, byte-identical artifacts)")

    def add_common(p: argparse.ArgumentParser, with_threshold=True) -> None:
        p.add_argument("benchmark", help="benchmark analog name")
        p.add_argument("--scale", type=float, default=1.0)
        p.add_argument("--cache", default="", help="trace cache directory")
        add_json(p)
        if with_threshold:
            p.add_argument("--threshold", type=int, default=0,
                           help="edge threshold (0 = auto for scale)")

    p_run = sub.add_parser("run", help="simulate a benchmark analog")
    p_run.add_argument("benchmark")
    p_run.add_argument("--scale", type=float, default=1.0)
    add_backend(p_run)
    add_json(p_run)

    p_profile = sub.add_parser("profile", help="Table 2 row")
    add_common(p_profile)
    add_backend(p_profile)

    p_alloc = sub.add_parser("allocate", help="Table 3/4 sizing")
    add_common(p_alloc)
    p_alloc.add_argument("--static", action="store_true",
                         help="allocate from the static conflict-graph "
                         "estimate (no profiling or simulation)")
    p_alloc.add_argument("--bht", type=int, default=128,
                         help="BHT entries for the static allocation")

    p_cfg = sub.add_parser("cfg", help="static control-flow summary")
    p_cfg.add_argument("benchmark")
    p_cfg.add_argument("--scale", type=float, default=1.0)
    p_cfg.add_argument("--loops", action="store_true",
                       help="also list every natural loop")

    p_lint = sub.add_parser("lint", help="static verifier diagnostics")
    p_lint.add_argument("benchmark", nargs="?", default="")
    p_lint.add_argument("--all", action="store_true",
                        help="lint every registered benchmark analog")
    p_lint.add_argument("--scale", type=float, default=1.0)
    p_lint.add_argument("--strict", action="store_true",
                        help="exit 1 on any unwaived diagnostic, "
                        "warnings included")
    p_lint.add_argument("--waive", action="append", default=[],
                        metavar="BENCH:CODE",
                        help="suppress one diagnostic code for one "
                        "benchmark (repeatable)")
    add_json(p_lint)

    p_verify = sub.add_parser(
        "verify-static",
        help="score static heuristics and graph estimates vs profiles",
    )
    p_verify.add_argument("benchmarks", nargs="*",
                          help="benchmark analogs or selector terms "
                          "(default: full suite)")
    add_set(p_verify)
    p_verify.add_argument("--shard", default="", metavar="K/N",
                          help="run only this host's deterministic slice "
                          "of the selection")
    p_verify.add_argument("--scale", type=float, default=1.0)
    p_verify.add_argument("--cache", default="",
                          help="trace cache directory")
    p_verify.add_argument("--jobs", type=int, default=1,
                          help="worker processes for the profiling runs")
    p_verify.add_argument("--threshold", type=int, default=0,
                          help="edge threshold (0 = auto for scale)")
    add_json(p_verify)

    def add_fault_tolerance(p: argparse.ArgumentParser) -> None:
        p.add_argument("--timeout", type=float, default=0.0,
                       help="per-attempt wall-clock budget in seconds for "
                       "parallel jobs (0 = unbounded)")
        p.add_argument("--retries", type=int, default=1,
                       help="extra attempts per failed job before it is "
                       "dropped from the run")

    p_exp = sub.add_parser("experiment", help="run a paper experiment")
    p_exp.add_argument("id", nargs="?", choices=sorted(EXPERIMENTS),
                       help="experiment id; omit it (with --set/"
                       "--benchmarks) to just materialise a selection's "
                       "artifacts — the distributed-shard workhorse")
    add_set(p_exp)
    p_exp.add_argument("--benchmarks", default="",
                       help="benchmark selector expression overriding the "
                       "experiment's declared list (unions with --set)")
    p_exp.add_argument("--shard", default="", metavar="K/N",
                       help="run shard K of an N-way partitioned suite "
                       "run; merge the stores with `repro merge-shards`")
    p_exp.add_argument("--scale", type=float, default=None,
                       help="workload scale (default: the selected set's "
                       "declared scale, else 1.0)")
    p_exp.add_argument("--cache", default="",
                       help="content-addressed artifact store directory")
    p_exp.add_argument("--jobs", type=int, default=1,
                       help="worker processes for benchmark simulation "
                       "(1 = sequential)")
    add_fault_tolerance(p_exp)
    p_exp.add_argument("--checkpoint-every", type=int, default=0,
                       metavar="EVENTS",
                       help="snapshot simulator+pipeline state every N "
                       "branch events so retried/killed jobs resume "
                       "instead of cold-starting (needs --cache)")
    p_exp.add_argument("--resume", action="store_true",
                       help="skip benchmarks the run journal records as "
                       "completed at these parameters (needs --cache)")
    p_exp.add_argument("--workers", type=int, default=0, metavar="N",
                       help="run the suite under the crash-safe shard "
                       "supervisor with N worker processes before "
                       "assembling the experiment output (needs --cache; "
                       "excludes --shard)")
    add_backend(p_exp)
    add_json(p_exp)

    p_faults = sub.add_parser(
        "faults",
        help="fault-injection demo: poisoned pass + clean recovery pass",
    )
    p_faults.add_argument("--benchmarks", default="",
                          help="benchmark selector expression "
                          "(default: the `smoke` set)")
    add_set(p_faults)
    p_faults.add_argument("--scale", type=float, default=None,
                          help="workload scale (default: the selected "
                          "set's declared scale, else 0.05)")
    p_faults.add_argument("--jobs", type=int, default=4)
    p_faults.add_argument("--cache", default="",
                          help="artifact store directory (default: a "
                          "throwaway temp store when corruption is "
                          "injected)")
    p_faults.add_argument("--crash", default="",
                          help="benchmark whose worker dies hard")
    p_faults.add_argument("--hang", default="",
                          help="benchmark whose worker hangs (pair with "
                          "--timeout)")
    p_faults.add_argument("--flaky", default="",
                          help="NAME[:N] — benchmark that fails its first "
                          "N attempts (default 1)")
    p_faults.add_argument("--corrupt", default="",
                          help="benchmark whose stored trace is corrupted")
    p_faults.add_argument("--kill", default="",
                          help="NAME[:EVENTS] — benchmark whose worker is "
                          "SIGKILLed once the bus has seen EVENTS branch "
                          "events (default 10000); the retry resumes from "
                          "the last checkpoint")
    p_faults.add_argument("--checkpoint-every", type=int, default=0,
                          metavar="EVENTS",
                          help="checkpoint cadence in branch events "
                          "(default: 2000 when --kill is given)")
    add_fault_tolerance(p_faults)
    add_json(p_faults)

    p_serve = sub.add_parser(
        "serve",
        help="run the analysis daemon on a unix socket (SIGTERM drains)",
    )
    p_serve.add_argument("--socket", required=True,
                         help="unix socket path to listen on")
    p_serve.add_argument("--cache", required=True,
                         help="artifact store root (journal, checkpoints "
                         "and the service journal live under it)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="simulation worker processes (default 2)")
    p_serve.add_argument("--queue-limit", type=int, default=16,
                         help="admission queue bound; submits beyond it "
                         "are shed with a typed rejection (default 16)")
    p_serve.add_argument("--retries", type=int, default=1,
                         help="extra attempts per crashed job (default 1)")
    p_serve.add_argument("--quota-rate", type=float, default=0.0,
                         help="per-tenant token refill rate in jobs/s "
                         "(0 = unlimited)")
    p_serve.add_argument("--quota-burst", type=float, default=8.0,
                         help="per-tenant token bucket capacity")
    p_serve.add_argument("--checkpoint-every", type=int, default=2000,
                         metavar="EVENTS",
                         help="checkpoint cadence in branch events — the "
                         "preemption/recovery granularity (default 2000)")
    p_serve.add_argument("--deadline", type=float, default=0.0,
                         help="default per-job deadline in seconds "
                         "(0 = unbounded; submits may override)")

    p_lg = sub.add_parser(
        "loadgen",
        help="open-loop load generator against a running daemon",
    )
    p_lg.add_argument("--socket", required=True,
                      help="daemon unix socket path")
    p_lg.add_argument("--rate", type=float, default=10.0,
                      help="open-loop arrival rate in jobs/s (default 10)")
    p_lg.add_argument("--jobs", type=int, default=20,
                      help="total requests to send (default 20)")
    p_lg.add_argument("--benchmarks", default="",
                      help="benchmark selector expression to cycle "
                      "through (default plot)")
    add_set(p_lg)
    p_lg.add_argument("--tenants", type=int, default=1,
                      help="number of synthetic tenants to cycle through")
    p_lg.add_argument("--scale", type=float, default=0.05)
    p_lg.add_argument("--predictors", default="",
                      help="comma-separated predictor specs to run per "
                      "job (e.g. bimodal,gshare:10)")
    p_lg.add_argument("--deadline", type=float, default=0.0,
                      help="per-job deadline in seconds (0 = none)")
    p_lg.add_argument("--slow-client", type=int, default=0, metavar="N",
                      help="every Nth request trickles its submit frame "
                      "(service fault mode; 0 = off)")
    p_lg.add_argument("--conn-drop", type=int, default=0, metavar="N",
                      help="every Nth request disconnects after its "
                      "accepted frame (service fault mode; 0 = off)")
    add_backend(p_lg)
    add_json(p_lg)

    p_merge = sub.add_parser(
        "merge-shards",
        help="union shard artifact stores + journals into one suite "
        "store (byte-verifying overlapping artifacts)",
    )
    p_merge.add_argument("sources", nargs="+",
                         help="shard store directories to merge in")
    p_merge.add_argument("--into", required=True,
                         help="destination store directory (created if "
                         "missing; may be one of the sources in a "
                         "shared-store deployment)")
    add_json(p_merge)

    p_sup = sub.add_parser(
        "supervise",
        help="crash-safe supervised distributed suite run: N shard "
        "workers over a shared store with heartbeat leases, restarts, "
        "reassignment, speculation and auto-merge",
    )
    add_set(p_sup)
    p_sup.add_argument("--benchmarks", default="",
                       help="benchmark selector expression (unions with "
                       "--set)")
    p_sup.add_argument("--workers", type=int, default=2, metavar="N",
                       help="shard worker processes to supervise")
    p_sup.add_argument("--scale", type=float, default=None,
                       help="workload scale (default: the selected set's "
                       "declared scale, else 1.0)")
    p_sup.add_argument("--cache", required=True,
                       help="shared artifact store directory (journal, "
                       "checkpoints and leases live here)")
    p_sup.add_argument("--retries", type=int, default=1,
                       help="extra in-worker attempts per failed job")
    p_sup.add_argument("--checkpoint-every", type=int, default=2_000,
                       metavar="EVENTS",
                       help="snapshot cadence so restarted shards resume "
                       "mid-benchmark instead of cold-starting")
    p_sup.add_argument("--max-restarts", type=int, default=2,
                       help="restart budget per shard slot before its "
                       "work is reassigned to surviving slots")
    p_sup.add_argument("--lease-timeout", type=float, default=10.0,
                       metavar="SECONDS",
                       help="heartbeat-lease age after which a live but "
                       "silent worker is declared wedged and recycled")
    p_sup.add_argument("--no-speculate", action="store_true",
                       help="disable speculative re-execution of tail "
                       "stragglers on idle slots")
    add_backend(p_sup)
    add_json(p_sup)

    p_dis = sub.add_parser("disasm", help="print a workload's listing")
    p_dis.add_argument("benchmark")
    p_dis.add_argument("--scale", type=float, default=1.0)
    p_dis.add_argument("--head", type=int, default=0,
                       help="only the first N lines")
    return parser


_HANDLERS = {
    "list": cmd_list,
    "run": cmd_run,
    "profile": cmd_profile,
    "allocate": cmd_allocate,
    "cfg": cmd_cfg,
    "lint": cmd_lint,
    "verify-static": cmd_verify_static,
    "experiment": cmd_experiment,
    "faults": cmd_faults,
    "serve": cmd_serve,
    "loadgen": cmd_loadgen,
    "merge-shards": cmd_merge_shards,
    "supervise": cmd_supervise,
    "disasm": cmd_disasm,
}


def main(argv=None) -> int:
    from .errors import ReproError, SelectionError

    args = build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except SelectionError as exc:
        # selector/shard usage errors (unknown benchmark or set, bad K/N
        # expression): exit 2 like argparse, with the registry's
        # near-miss suggestion in the message
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        # unknown benchmark/kernel names surface as KeyError from the
        # registries; report them cleanly instead of a traceback
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except ReproError as exc:
        # typed pipeline failures (a benchmark that keeps failing, a
        # fully degraded suite) exit 1 with the structured message
        print(f"error: [{exc.code}] {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
