"""Environment-call layer.

The workload kernels need only a minimal I/O surface: an input byte stream
(the benchmark's "input set"), an output byte sink, and integer printing for
self-checking.  The syscall number is passed in ``a0``; arguments in ``a1``
and ``a2``; results return in ``a0``.

========= ============================ =====================================
 number    name                         semantics
========= ============================ =====================================
 0         EXIT                         halt; exit code = a1
 1         PRINT_INT                    append decimal a1 and '\\n' to output
 2         PUT_CHAR                     append low byte of a1 to output
 3         GET_CHAR                     a0 = next input byte, or -1 at EOF
 4         INPUT_SIZE                   a0 = total input length in bytes
 5         SEEK_INPUT                   input cursor = a1 (clamped)
 6         RANDOM                       a0 = next value of a seeded xorshift
========= ============================ =====================================

``RANDOM`` is deterministic (xorshift32 seeded by the environment) so runs
are reproducible; it exists so kernels can synthesise data-dependent branch
behaviour without shipping large inputs.
"""

from __future__ import annotations

from ..errors import ReproError
from .state import MachineState, wrap32

SYS_EXIT = 0
SYS_PRINT_INT = 1
SYS_PUT_CHAR = 2
SYS_GET_CHAR = 3
SYS_INPUT_SIZE = 4
SYS_SEEK_INPUT = 5
SYS_RANDOM = 6

A0, A1, A2 = 10, 11, 12  # register numbers for a0..a2


class SyscallError(ReproError, RuntimeError):
    """Raised on an unknown syscall number."""

    code = "syscall_error"


class Environment:
    """Program I/O environment: input stream, output sink, PRNG."""

    def __init__(self, input_data: bytes = b"", random_seed: int = 0x2545F491):
        self.input_data = input_data
        self.cursor = 0
        self.output = bytearray()
        self._rng_state = random_seed & 0xFFFF_FFFF or 1

    def _next_random(self) -> int:
        x = self._rng_state
        x ^= (x << 13) & 0xFFFF_FFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFF_FFFF
        self._rng_state = x
        return x

    def handle(self, state: MachineState) -> None:
        """Execute the syscall selected by the current register state.

        Raises:
            SyscallError: on an unknown syscall number.
        """
        number = state.read(A0)
        if number == SYS_EXIT:
            state.halted = True
            state.exit_code = state.read(A1)
        elif number == SYS_PRINT_INT:
            self.output.extend(str(state.read(A1)).encode())
            self.output.append(ord("\n"))
        elif number == SYS_PUT_CHAR:
            self.output.append(state.read(A1) & 0xFF)
        elif number == SYS_GET_CHAR:
            if self.cursor < len(self.input_data):
                state.write(A0, self.input_data[self.cursor])
                self.cursor += 1
            else:
                state.write(A0, -1)
        elif number == SYS_INPUT_SIZE:
            state.write(A0, wrap32(len(self.input_data)))
        elif number == SYS_SEEK_INPUT:
            self.cursor = max(0, min(state.read(A1), len(self.input_data)))
        elif number == SYS_RANDOM:
            state.write(A0, wrap32(self._next_random()))
        else:
            raise SyscallError(f"unknown syscall {number}")

    def output_text(self) -> str:
        """The output sink decoded as latin-1 (always succeeds)."""
        return self.output.decode("latin-1")
