"""Observation hooks for the functional simulator.

The working-set analysis only needs the conditional-branch event stream, so
the simulator exposes a single narrow hook: :class:`BranchHook`, invoked once
per dynamic conditional branch with the branch's address, its outcome, and
the count of instructions retired *before* it — exactly the "time stamp"
quantity used in the paper's Figure 1.
"""

from __future__ import annotations

from typing import List, Protocol


class BranchHook(Protocol):
    """Callback protocol for dynamic conditional branch events."""

    def on_branch(
        self, pc: int, target: int, taken: bool, instruction_count: int
    ) -> None:
        """Called after each conditional branch resolves.

        Args:
            pc: byte address of the static branch instruction.
            target: byte address of the taken-path destination.
            taken: whether the branch was taken.
            instruction_count: instructions retired before this branch —
                the paper's per-instance time stamp.
        """


class NullBranchHook:
    """A hook that ignores everything (default)."""

    def on_branch(
        self, pc: int, target: int, taken: bool, instruction_count: int
    ) -> None:
        return None


class CompositeBranchHook:
    """Fan a branch event out to several hooks in order."""

    def __init__(self, hooks: List[BranchHook]):
        self._hooks = list(hooks)

    def on_branch(
        self, pc: int, target: int, taken: bool, instruction_count: int
    ) -> None:
        for hook in self._hooks:
            hook.on_branch(pc, target, taken, instruction_count)
