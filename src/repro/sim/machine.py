"""High-level simulator facade.

:class:`Simulator` wires together the program loader, machine state,
environment and executor, and exposes the run-level statistics the
experiment harness consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..isa.program import STACK_TOP, Program
from .api import SimulatorBackend, get_backend
from .executor import FuelExhausted
from .hooks import BranchHook
from .state import MachineState
from .syscalls import Environment

SP = 2  # stack pointer register number


@dataclass(frozen=True)
class RunResult:
    """Summary of one simulation run.

    Attributes:
        instructions: instructions retired.
        conditional_branches: dynamic conditional branch count.
        taken_branches: how many of those were taken.
        halted: True if the program exited on its own; False if the run was
            truncated by the fuel limit.
        exit_code: program exit code (0 when truncated).
        output: bytes written to the output sink.
    """

    instructions: int
    conditional_branches: int
    taken_branches: int
    halted: bool
    exit_code: int
    output: bytes

    @property
    def taken_rate(self) -> float:
        """Fraction of conditional branches that were taken."""
        if self.conditional_branches == 0:
            return 0.0
        return self.taken_branches / self.conditional_branches


class Simulator:
    """Loads a program and runs it with optional branch observation.

    The execution strategy is pluggable: *backend* names a
    :class:`~repro.sim.api.SimulatorBackend` (``"interp"`` or
    ``"superblock"``; the interpreter by default).

    Example::

        sim = Simulator(program, input_data=b"abc")
        result = sim.run(max_instructions=1_000_000)
    """

    def __init__(
        self,
        program: Program,
        input_data: bytes = b"",
        branch_hook: Optional[BranchHook] = None,
        random_seed: int = 0x2545F491,
        backend: Union[str, SimulatorBackend, None] = None,
    ) -> None:
        self.program = program
        self.backend = get_backend(backend)
        self.state = MachineState()
        self.environment = Environment(
            input_data=input_data, random_seed=random_seed
        )
        self.executor = self.backend.create_executor(
            program, self.state, self.environment, branch_hook
        )
        self._load()

    def _load(self) -> None:
        self.state.memory.store_bytes(self.program.data_base, self.program.data)
        self.state.pc = self.program.entry_point
        self.state.write(SP, STACK_TOP)

    def run(
        self, max_instructions: int = 10_000_000, allow_truncation: bool = True
    ) -> RunResult:
        """Run to completion or until the instruction budget is spent.

        Args:
            max_instructions: fuel limit (the paper caps runs similarly).
            allow_truncation: when False, hitting the limit raises
                :class:`~repro.sim.executor.FuelExhausted` instead of
                returning a truncated result.
        """
        try:
            self.executor.run(max_instructions)
        except FuelExhausted:
            if not allow_truncation:
                raise
        return RunResult(
            instructions=self.executor.instruction_count,
            conditional_branches=self.executor.conditional_branch_count,
            taken_branches=self.executor.taken_branch_count,
            halted=self.state.halted,
            exit_code=self.state.exit_code,
            output=bytes(self.environment.output),
        )
