"""The instruction interpreter.

:class:`Executor` runs a loaded :class:`~repro.isa.program.Program` against a
:class:`~repro.sim.state.MachineState`.  The hot loop dispatches on the
opcode's integer value with locals cached aggressively — the profiling runs
execute millions of instructions, so this loop is the substrate's only
performance-sensitive code.

Semantics notes:

* arithmetic wraps to signed 32-bit two's complement;
* shift amounts use the low five bits of the operand;
* ``div``/``rem`` truncate toward zero; division by zero yields -1 / the
  dividend (RISC-V convention);
* ``lui rd, k`` loads ``k << 13`` (matching the assembler's ``li``/``la``
  expansion);
* the conditional-branch hook fires once per dynamic conditional branch with
  the pre-branch retired-instruction count — the paper's time stamp.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ReproError
from ..isa.instructions import Instruction, Opcode
from ..isa.program import INSTRUCTION_SIZE, Program
from .hooks import BranchHook
from .state import MachineState, unsigned32, wrap32
from .syscalls import Environment


class SimulationError(ReproError, RuntimeError):
    """Raised when execution leaves the text segment or decodes garbage."""

    code = "simulation_error"


class FuelExhausted(ReproError, RuntimeError):
    """Raised when the instruction budget runs out before the program halts.

    Long-running workloads are *expected* to be stopped this way when the
    harness caps run length (the paper similarly caps runs at 500M
    instructions); callers that treat truncation as normal catch this.
    """

    code = "fuel_exhausted"


class Executor:
    """Executes a program; exposes retired-instruction and branch counts."""

    def __init__(
        self,
        program: Program,
        state: MachineState,
        environment: Environment,
        branch_hook: Optional[BranchHook] = None,
    ) -> None:
        self.program = program
        self.state = state
        self.environment = environment
        self.branch_hook = branch_hook
        self.instruction_count = 0
        self.conditional_branch_count = 0
        self.taken_branch_count = 0

    def run(self, max_instructions: int = 10_000_000) -> int:
        """Run until halt or until *max_instructions* are retired.

        Returns:
            The number of instructions retired during this call.

        Raises:
            FuelExhausted: if the budget is exhausted before halting.
            SimulationError: if the PC leaves the text segment.
        """
        state = self.state
        instructions = self.program.instructions
        text_base = self.program.text_base
        text_end = text_base + len(instructions) * INSTRUCTION_SIZE
        regs = state.regs
        memory = state.memory
        env = self.environment
        hook = self.branch_hook
        on_branch = hook.on_branch if hook is not None else None

        count = self.instruction_count
        start_count = count
        budget = max_instructions
        pc = state.pc

        O = Opcode  # local alias for dispatch speed
        while not state.halted and budget > 0:
            if not text_base <= pc < text_end:
                state.pc = pc
                self.instruction_count = count
                raise SimulationError(
                    f"pc 0x{pc:x} outside text segment "
                    f"[0x{text_base:x}, 0x{text_end:x})"
                )
            ins: Instruction = instructions[(pc - text_base) >> 2]
            op = ins.opcode
            next_pc = pc + 4

            if op is O.ADDI:
                if ins.rd:
                    regs[ins.rd] = wrap32(regs[ins.rs1] + ins.imm)
            elif op is O.ADD:
                if ins.rd:
                    regs[ins.rd] = wrap32(regs[ins.rs1] + regs[ins.rs2])
            elif op is O.BEQ:
                taken = regs[ins.rs1] == regs[ins.rs2]
                if on_branch is not None:
                    on_branch(pc, pc + ins.imm, taken, count)
                self.conditional_branch_count += 1
                if taken:
                    self.taken_branch_count += 1
                    next_pc = pc + ins.imm
            elif op is O.BNE:
                taken = regs[ins.rs1] != regs[ins.rs2]
                if on_branch is not None:
                    on_branch(pc, pc + ins.imm, taken, count)
                self.conditional_branch_count += 1
                if taken:
                    self.taken_branch_count += 1
                    next_pc = pc + ins.imm
            elif op is O.BLT:
                taken = regs[ins.rs1] < regs[ins.rs2]
                if on_branch is not None:
                    on_branch(pc, pc + ins.imm, taken, count)
                self.conditional_branch_count += 1
                if taken:
                    self.taken_branch_count += 1
                    next_pc = pc + ins.imm
            elif op is O.BGE:
                taken = regs[ins.rs1] >= regs[ins.rs2]
                if on_branch is not None:
                    on_branch(pc, pc + ins.imm, taken, count)
                self.conditional_branch_count += 1
                if taken:
                    self.taken_branch_count += 1
                    next_pc = pc + ins.imm
            elif op is O.BLTU:
                taken = unsigned32(regs[ins.rs1]) < unsigned32(regs[ins.rs2])
                if on_branch is not None:
                    on_branch(pc, pc + ins.imm, taken, count)
                self.conditional_branch_count += 1
                if taken:
                    self.taken_branch_count += 1
                    next_pc = pc + ins.imm
            elif op is O.BGEU:
                taken = unsigned32(regs[ins.rs1]) >= unsigned32(regs[ins.rs2])
                if on_branch is not None:
                    on_branch(pc, pc + ins.imm, taken, count)
                self.conditional_branch_count += 1
                if taken:
                    self.taken_branch_count += 1
                    next_pc = pc + ins.imm
            elif op is O.LW:
                if ins.rd:
                    regs[ins.rd] = memory.load_word(regs[ins.rs1] + ins.imm)
            elif op is O.SW:
                memory.store_word(regs[ins.rs1] + ins.imm, regs[ins.rs2])
            elif op is O.LB:
                if ins.rd:
                    regs[ins.rd] = memory.load_byte(regs[ins.rs1] + ins.imm)
            elif op is O.SB:
                memory.store_byte(regs[ins.rs1] + ins.imm, regs[ins.rs2])
            elif op is O.JAL:
                if ins.rd:
                    regs[ins.rd] = next_pc
                next_pc = pc + ins.imm
            elif op is O.JALR:
                dest = (regs[ins.rs1] + ins.imm) & ~3
                if ins.rd:
                    regs[ins.rd] = next_pc
                next_pc = dest
            elif op is O.SUB:
                if ins.rd:
                    regs[ins.rd] = wrap32(regs[ins.rs1] - regs[ins.rs2])
            elif op is O.MUL:
                if ins.rd:
                    regs[ins.rd] = wrap32(regs[ins.rs1] * regs[ins.rs2])
            elif op is O.DIV:
                if ins.rd:
                    divisor = regs[ins.rs2]
                    if divisor == 0:
                        regs[ins.rd] = -1
                    else:
                        quotient = abs(regs[ins.rs1]) // abs(divisor)
                        if (regs[ins.rs1] < 0) != (divisor < 0):
                            quotient = -quotient
                        regs[ins.rd] = wrap32(quotient)
            elif op is O.REM:
                if ins.rd:
                    divisor = regs[ins.rs2]
                    if divisor == 0:
                        regs[ins.rd] = regs[ins.rs1]
                    else:
                        remainder = abs(regs[ins.rs1]) % abs(divisor)
                        if regs[ins.rs1] < 0:
                            remainder = -remainder
                        regs[ins.rd] = wrap32(remainder)
            elif op is O.AND:
                if ins.rd:
                    regs[ins.rd] = regs[ins.rs1] & regs[ins.rs2]
            elif op is O.OR:
                if ins.rd:
                    regs[ins.rd] = regs[ins.rs1] | regs[ins.rs2]
            elif op is O.XOR:
                if ins.rd:
                    regs[ins.rd] = regs[ins.rs1] ^ regs[ins.rs2]
            elif op is O.SLL:
                if ins.rd:
                    regs[ins.rd] = wrap32(regs[ins.rs1] << (regs[ins.rs2] & 31))
            elif op is O.SRL:
                if ins.rd:
                    regs[ins.rd] = wrap32(
                        unsigned32(regs[ins.rs1]) >> (regs[ins.rs2] & 31)
                    )
            elif op is O.SRA:
                if ins.rd:
                    regs[ins.rd] = regs[ins.rs1] >> (regs[ins.rs2] & 31)
            elif op is O.SLT:
                if ins.rd:
                    regs[ins.rd] = 1 if regs[ins.rs1] < regs[ins.rs2] else 0
            elif op is O.SLTU:
                if ins.rd:
                    regs[ins.rd] = (
                        1
                        if unsigned32(regs[ins.rs1]) < unsigned32(regs[ins.rs2])
                        else 0
                    )
            elif op is O.ANDI:
                if ins.rd:
                    regs[ins.rd] = regs[ins.rs1] & ins.imm
            elif op is O.ORI:
                if ins.rd:
                    regs[ins.rd] = wrap32(regs[ins.rs1] | ins.imm)
            elif op is O.XORI:
                if ins.rd:
                    regs[ins.rd] = wrap32(regs[ins.rs1] ^ ins.imm)
            elif op is O.SLLI:
                if ins.rd:
                    regs[ins.rd] = wrap32(regs[ins.rs1] << (ins.imm & 31))
            elif op is O.SRLI:
                if ins.rd:
                    regs[ins.rd] = wrap32(
                        unsigned32(regs[ins.rs1]) >> (ins.imm & 31)
                    )
            elif op is O.SRAI:
                if ins.rd:
                    regs[ins.rd] = regs[ins.rs1] >> (ins.imm & 31)
            elif op is O.SLTI:
                if ins.rd:
                    regs[ins.rd] = 1 if regs[ins.rs1] < ins.imm else 0
            elif op is O.LUI:
                if ins.rd:
                    regs[ins.rd] = wrap32(ins.imm << 13)
            elif op is O.ECALL:
                state.pc = pc  # syscalls may inspect the faulting pc
                env.handle(state)
            elif op is O.HALT:
                state.halted = True
            else:  # pragma: no cover - all opcodes are handled above
                raise SimulationError(f"unhandled opcode {op!r}")

            count += 1
            budget -= 1
            pc = next_pc

        state.pc = pc
        self.instruction_count = count
        if not state.halted and budget == 0:
            raise FuelExhausted(
                f"budget of {max_instructions} instructions exhausted"
            )
        return count - start_count
