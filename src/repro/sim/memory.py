"""Sparse paged byte-addressable memory.

The simulated machine has a 32-bit address space; only touched 4 KiB pages
are materialised.  Multi-byte accesses are little-endian and may cross page
boundaries (handled generically, byte by byte, since they are rare).
"""

from __future__ import annotations

from typing import Dict

from ..errors import MemAccessError

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1
ADDRESS_MASK = 0xFFFF_FFFF


class Memory:
    """Sparse paged memory with word/byte accessors."""

    __slots__ = ("_pages",)

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}

    def _page(self, address: int) -> bytearray:
        page_number = address >> PAGE_SHIFT
        page = self._pages.get(page_number)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_number] = page
        return page

    # -- byte access -------------------------------------------------------

    def load_byte(self, address: int) -> int:
        """Unsigned byte at *address*."""
        address &= ADDRESS_MASK
        page = self._pages.get(address >> PAGE_SHIFT)
        if page is None:
            return 0
        return page[address & PAGE_MASK]

    def store_byte(self, address: int, value: int) -> None:
        """Store the low 8 bits of *value* at *address*."""
        address &= ADDRESS_MASK
        self._page(address)[address & PAGE_MASK] = value & 0xFF

    # -- word access -------------------------------------------------------

    def load_word(self, address: int) -> int:
        """Signed 32-bit little-endian load."""
        address &= ADDRESS_MASK
        offset = address & PAGE_MASK
        if offset <= PAGE_SIZE - 4:
            page = self._pages.get(address >> PAGE_SHIFT)
            if page is None:
                return 0
            raw = int.from_bytes(page[offset : offset + 4], "little")
        else:
            raw = 0
            for i in range(4):
                raw |= self.load_byte(address + i) << (8 * i)
        return raw - 0x1_0000_0000 if raw & 0x8000_0000 else raw

    def store_word(self, address: int, value: int) -> None:
        """Little-endian store of the low 32 bits of *value*."""
        address &= ADDRESS_MASK
        offset = address & PAGE_MASK
        raw = value & 0xFFFF_FFFF
        if offset <= PAGE_SIZE - 4:
            self._page(address)[offset : offset + 4] = raw.to_bytes(4, "little")
        else:
            for i in range(4):
                self.store_byte(address + i, raw >> (8 * i))

    # -- bulk access ---------------------------------------------------------

    def load_bytes(self, address: int, length: int) -> bytes:
        """Read *length* bytes starting at *address*."""
        return bytes(self.load_byte(address + i) for i in range(length))

    def store_bytes(self, address: int, data: bytes) -> None:
        """Write *data* starting at *address*."""
        for i, byte in enumerate(data):
            self.store_byte(address + i, byte)

    def load_cstring(self, address: int, limit: int = 1 << 16) -> bytes:
        """Read a NUL-terminated byte string (without the terminator).

        Raises:
            MemAccessError: if no terminator is found within *limit* bytes.
        """
        out = bytearray()
        for i in range(limit):
            byte = self.load_byte(address + i)
            if byte == 0:
                return bytes(out)
            out.append(byte)
        raise MemAccessError(f"unterminated string at 0x{address:x}")

    @property
    def resident_pages(self) -> int:
        """Number of materialised 4 KiB pages (memory footprint metric)."""
        return len(self._pages)
