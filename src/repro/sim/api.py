"""The unified simulation backend API.

Before this module, three call sites constructed executors on their own
terms: :class:`~repro.sim.machine.Simulator` hard-wired the interpreter,
the sliced checkpoint runner built a ``Simulator`` per restore attempt,
and the evaluation engine's job path did the same inside workers.  A
:class:`SimulatorBackend` is the one seam they all share now: it names a
simulation strategy and builds the executor for it, so the interpreter
and the superblock-compiled core are interchangeable everywhere a
simulation starts — ``Simulator(..., backend=...)``, ``run_workload``,
``run_simulation``, ``ExecutionEngine``/``BenchmarkRunner`` and the
``--backend`` CLI flag all resolve through :func:`get_backend`.

Backends must be *semantically indistinguishable*: identical
architectural state, branch-event streams (chunk boundaries included),
counters and artifacts for any program.  The differential property
tests in ``tests/test_sim_backends.py`` enforce this; the engine still
folds the backend name into artifact digests so artifacts produced by
different backends never alias in the content-addressed store.
"""

from __future__ import annotations

from typing import Optional, Protocol, Union, runtime_checkable

from ..isa.program import Program
from .compile import SuperblockExecutor
from .executor import Executor
from .hooks import BranchHook
from .state import MachineState
from .syscalls import Environment


@runtime_checkable
class SimulatorBackend(Protocol):
    """Strategy for executing a loaded program.

    Attributes:
        name: stable identifier — used in CLI flags, JSON envelopes and
            artifact cache keys, so it must never change meaning.
    """

    name: str

    def create_executor(
        self,
        program: Program,
        state: MachineState,
        environment: Environment,
        branch_hook: Optional[BranchHook] = None,
    ) -> Executor:
        """Build the executor that will run *program*."""
        ...


class InterpBackend:
    """The reference instruction-at-a-time interpreter."""

    name = "interp"

    def create_executor(
        self,
        program: Program,
        state: MachineState,
        environment: Environment,
        branch_hook: Optional[BranchHook] = None,
    ) -> Executor:
        return Executor(program, state, environment, branch_hook)


class SuperblockBackend:
    """Superblock-compiled traces with interpreter fallback."""

    name = "superblock"

    def create_executor(
        self,
        program: Program,
        state: MachineState,
        environment: Environment,
        branch_hook: Optional[BranchHook] = None,
    ) -> Executor:
        return SuperblockExecutor(program, state, environment, branch_hook)


DEFAULT_BACKEND = "interp"

BACKENDS = {
    backend.name: backend
    for backend in (InterpBackend(), SuperblockBackend())
}


def backend_names() -> list:
    """Registered backend names, in registration order."""
    return list(BACKENDS)


def get_backend(
    backend: Union[str, SimulatorBackend, None],
) -> SimulatorBackend:
    """Resolve a backend name (or pass an instance through).

    Args:
        backend: a registered name, an object satisfying the protocol,
            or None for the default interpreter.

    Raises:
        ValueError: for an unknown name.
    """
    if backend is None:
        return BACKENDS[DEFAULT_BACKEND]
    if isinstance(backend, str):
        try:
            return BACKENDS[backend]
        except KeyError:
            raise ValueError(
                f"unknown simulation backend {backend!r} "
                f"(expected one of: {', '.join(BACKENDS)})"
            ) from None
    if isinstance(backend, SimulatorBackend):
        return backend
    raise ValueError(
        f"unknown simulation backend {backend!r} "
        f"(expected one of: {', '.join(BACKENDS)})"
    )


__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "InterpBackend",
    "SimulatorBackend",
    "SuperblockBackend",
    "backend_names",
    "get_backend",
]
