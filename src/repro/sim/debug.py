"""Single-step debugging utilities.

Kernel authors need to see what a program actually does when a
hand-written assembly routine misbehaves.  :class:`SingleStepper` drives
the ordinary executor one instruction at a time and reports, per step, the
disassembly plus every architectural change (register writes, memory
words, PC redirects) — the classic ``sim-safe -v`` experience.

The stepper is intentionally built on the public executor (fuel = 1 per
step) so that what you debug is exactly what the experiments run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..isa.program import Program
from ..isa.registers import register_name
from .executor import FuelExhausted, SimulationError
from .machine import Simulator


@dataclass(frozen=True)
class StepRecord:
    """One executed instruction and its architectural effects.

    Attributes:
        index: retired-instruction index of this step.
        pc: address of the executed instruction.
        disassembly: rendered instruction text.
        register_writes: register name -> new value (x0 writes excluded).
        next_pc: PC after the step.
        taken_branch: True/False for conditional branches, None otherwise.
    """

    index: int
    pc: int
    disassembly: str
    register_writes: Dict[str, int] = field(default_factory=dict)
    next_pc: int = 0
    taken_branch: Optional[bool] = None

    def render(self) -> str:
        """One log line: address, disassembly, effects."""
        effects = ", ".join(
            f"{name}={value}" for name, value in self.register_writes.items()
        )
        parts = [f"{self.index:>8}  0x{self.pc:08x}  {self.disassembly:<28}"]
        if self.taken_branch is not None:
            parts.append("taken" if self.taken_branch else "not-taken")
        if effects:
            parts.append(effects)
        return "  ".join(parts)


class SingleStepper:
    """Steps a simulator one instruction at a time.

    Example::

        stepper = SingleStepper(program, input_data=b"...")
        for record in stepper.run(limit=100):
            print(record.render())
    """

    def __init__(
        self,
        program: Program,
        input_data: bytes = b"",
        random_seed: int = 0x2545F491,
    ) -> None:
        self.program = program
        self._branch_flag: List[Optional[bool]] = [None]
        flag = self._branch_flag

        class _Probe:
            def on_branch(self, pc, target, taken, instruction_count):
                flag[0] = taken

        self.simulator = Simulator(
            program,
            input_data=input_data,
            branch_hook=_Probe(),
            random_seed=random_seed,
        )

    @property
    def halted(self) -> bool:
        return self.simulator.state.halted

    def step(self) -> Optional[StepRecord]:
        """Execute one instruction; None when already halted.

        Raises:
            SimulationError: if the PC leaves the text segment.
        """
        state = self.simulator.state
        if state.halted:
            return None
        pc = state.pc
        instruction = self.program.fetch(pc)
        before = list(state.regs)
        self._branch_flag[0] = None
        index = self.simulator.executor.instruction_count
        try:
            self.simulator.executor.run(max_instructions=1)
        except FuelExhausted:
            pass  # exactly one instruction retired; expected
        writes = {
            register_name(i): state.regs[i]
            for i in range(len(before))
            if state.regs[i] != before[i]
        }
        return StepRecord(
            index=index,
            pc=pc,
            disassembly=instruction.disassemble(),
            register_writes=writes,
            next_pc=state.pc,
            taken_branch=self._branch_flag[0],
        )

    def run(self, limit: int = 1000) -> List[StepRecord]:
        """Step up to *limit* instructions (stops early on halt).

        Raises:
            ValueError: on a non-positive limit.
        """
        if limit <= 0:
            raise ValueError("limit must be positive")
        records: List[StepRecord] = []
        for _ in range(limit):
            record = self.step()
            if record is None:
                break
            records.append(record)
        return records

    def run_until(self, address: int, limit: int = 1_000_000) -> List[
        StepRecord
    ]:
        """Step until the PC reaches *address* (a breakpoint) or halt.

        Returns the records executed, the last one being the instruction
        *before* the breakpoint address is fetched.
        """
        records: List[StepRecord] = []
        for _ in range(limit):
            if self.halted or self.simulator.state.pc == address:
                break
            record = self.step()
            if record is None:
                break
            records.append(record)
        return records


def trace_listing(
    program: Program,
    input_data: bytes = b"",
    limit: int = 50,
    random_seed: int = 0x2545F491,
) -> str:
    """Convenience: the first *limit* executed instructions as text."""
    stepper = SingleStepper(
        program, input_data=input_data, random_seed=random_seed
    )
    return "\n".join(record.render() for record in stepper.run(limit))
