"""Functional simulator for the miniature RISC ISA.

The simulator is the reproduction's stand-in for the SimpleScalar toolset:
it executes workload programs and emits the conditional-branch event stream
consumed by :mod:`repro.profiling`.
"""

from .api import (
    BACKENDS,
    DEFAULT_BACKEND,
    InterpBackend,
    SimulatorBackend,
    SuperblockBackend,
    backend_names,
    get_backend,
)
from .compile import SuperblockExecutor, compile_program, compiled_table
from .debug import SingleStepper, StepRecord, trace_listing
from .executor import Executor, FuelExhausted, SimulationError
from .hooks import BranchHook, CompositeBranchHook, NullBranchHook
from .machine import RunResult, Simulator
from .memory import MemAccessError, Memory
from .state import MachineState, unsigned32, wrap32
from .syscalls import (
    SYS_EXIT,
    SYS_GET_CHAR,
    SYS_INPUT_SIZE,
    SYS_PRINT_INT,
    SYS_PUT_CHAR,
    SYS_RANDOM,
    SYS_SEEK_INPUT,
    Environment,
    SyscallError,
)

__all__ = [
    "BACKENDS",
    "BranchHook",
    "CompositeBranchHook",
    "DEFAULT_BACKEND",
    "Environment",
    "Executor",
    "FuelExhausted",
    "InterpBackend",
    "MachineState",
    "MemAccessError",
    "Memory",
    "NullBranchHook",
    "RunResult",
    "SYS_EXIT",
    "SYS_GET_CHAR",
    "SYS_INPUT_SIZE",
    "SYS_PRINT_INT",
    "SYS_PUT_CHAR",
    "SYS_RANDOM",
    "SYS_SEEK_INPUT",
    "SimulationError",
    "Simulator",
    "SimulatorBackend",
    "SingleStepper",
    "StepRecord",
    "SuperblockBackend",
    "SuperblockExecutor",
    "SyscallError",
    "backend_names",
    "compile_program",
    "compiled_table",
    "get_backend",
    "trace_listing",
    "unsigned32",
    "wrap32",
]
