"""Superblock trace specialization: the compiled simulation core.

The interpreter in :mod:`.executor` dispatches one instruction at a
time through a Python ``elif`` chain — fine for correctness, but the
profiling sweeps retire hundreds of millions of instructions and the
dispatch overhead dominates.  This module removes it for the common
case: at program load, the CFG is partitioned into single-entry traces
(:func:`~repro.static_analysis.superblocks.form_superblocks`), and each
trace is specialized into one generated Python function.  Registers
live in locals, immediates and branch targets are baked in as
constants, and the signed 32-bit wrap is inlined only where an
operation can actually leave the range.

Two region-growing steps make the compiled units large enough that the
per-call overhead stops mattering:

* **self-looping** — when a trace exit targets the trace's own head,
  the generated function loops in place (a ``while True`` with an exact
  fuel guard) instead of returning to the dispatcher, so a hot inner
  loop retires arbitrarily many iterations per call;
* **trace inlining** — a statically-known exit target is always another
  trace head (interior blocks have exactly one predecessor, verified by
  ``verify_cover``), so the successor trace's body is inlined at the
  exit site, up to a per-function size and nesting budget.

Every dynamic control transfer lands either on a trace head or on a
call-return point (``call + 4``); both get compiled entry points, so
the dispatch loop is one dict lookup per compiled region, not per
instruction.  The interpreter remains the fallback — and the semantic
ground truth — for three cases:

* a PC that is not a compiled entry (only possible after restoring a
  checkpoint taken mid-slice, or at a quarantined trace);
* a remaining fuel budget smaller than a region's worst case (a
  compiled region never retires a partial body, so entering it could
  overshoot the budget);
* any program whose CFG or cover cannot be formed.

Branch observation is preserved exactly.  Three specializations of each
region exist, selected by the hook attached to the run:

* ``bus`` — the hook is a plain :class:`~repro.pipeline.bus.BranchEventBus`
  with no event limit: events are appended straight onto the bus's
  staged columns, with the chunk-flush check after every event so chunk
  boundaries — and therefore checkpoint bytes — are identical to the
  interpreter's.  ``stats.events`` is reconciled once per ``run`` call.
* ``hook`` — any other hook (or a bus with a limit): the generated code
  calls ``on_branch`` per event, exactly like the interpreter.
* ``none`` — no hook: no event code is emitted at all.

Compiled tables are cached per ``(program image, mode)`` in a small
module-level LRU keyed by the sha256 of the program image, so engine
workers and repeated runs of the same workload compile once.

Deliberate non-goal, matching the interpreter's behaviour: an exception
escaping mid-region (memory fault, syscall error) leaves the executor's
counters at the last completed unit of work, exactly as the interpreter
leaves them at the last completed ``run`` slice; both states are
unrecoverable and no artifact is persisted from them.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, List, Optional, Set, Tuple

from ..isa.instructions import Instruction, Opcode
from ..isa.program import Program
from ..pipeline.bus import BranchEventBus
from ..static_analysis.cfg import build_cfg
from ..static_analysis.superblocks import form_superblocks
from .executor import Executor, FuelExhausted
from .hooks import BranchHook
from .state import MachineState, wrap32
from .syscalls import Environment

#: Instructions the interpreter fallback retires per dispatch attempt
#: before control returns to the region table.  Small enough that a
#: restored mid-trace PC reaches the next compiled entry quickly; large
#: enough that the retry loop is not itself a hot path.
FALLBACK_STEP = 64

#: Upper bound on instructions emitted into one generated function
#: (the entry trace plus everything inlined into it).  Also the
#: conservative per-call worst case charged against the fuel budget, so
#: it must stay below MIN_SLICE_INSTRUCTIONS (1024) or finely sliced
#: checkpoint runs would never enter compiled code.
MAX_FN_INSTRUCTIONS = 512

#: Nesting guard for inlining inside side-exit branches (CPython caps
#: block nesting around 100).
MAX_INDENT = 40

#: Compiled program tables kept alive across executors (per mode).
_CACHE_CAPACITY = 32

O = Opcode

#: ``taken`` predicate per conditional branch opcode, over the local
#: register expressions (registers always hold wrapped int32 values).
_BRANCH_PREDICATES = {
    O.BEQ: "{a} == {b}",
    O.BNE: "{a} != {b}",
    O.BLT: "{a} < {b}",
    O.BGE: "{a} >= {b}",
    O.BLTU: "({a} & 0xFFFFFFFF) < ({b} & 0xFFFFFFFF)",
    O.BGEU: "({a} & 0xFFFFFFFF) >= ({b} & 0xFFFFFFFF)",
}


class _NeedLoop(Exception):
    """First emission pass found an exit back to the entry head."""


def _wrap(expr: str) -> str:
    """Inline signed 32-bit two's-complement wrap of *expr*."""
    return f"((({expr}) + 0x80000000) & 0xFFFFFFFF) - 0x80000000"


class _FnEmitter:
    """Generates one compiled entry function (a trace suffix plus
    whatever neighbouring traces fit the inline budget)."""

    def __init__(
        self,
        program: Program,
        positions_of: Dict[int, List[Tuple[int, Instruction]]],
        head_of: Dict[int, int],
        name: str,
        region_index: int,
        offset: int,
        mode: str,
        looping: bool,
    ) -> None:
        self.program = program
        self.positions_of = positions_of
        self.head_of = head_of
        self.name = name
        self.region_index = region_index
        self.offset = offset
        self.mode = mode
        self.looping = looping
        entry_index = positions_of[region_index][offset][0]
        self.entry_address = program.address_of(entry_index)
        self.body: List[str] = []
        self.preload: Set[int] = set()
        self.all_assigned: Set[int] = set()
        self.helpers: Set[Opcode] = set()
        self.emitted = 0
        self.events = 0
        self.degenerate = False

    # -- low-level helpers -----------------------------------------------

    def emit(self, line: str, indent: int) -> None:
        self.body.append("    " * indent + line)

    def reg(self, number: int, assigned: Set[int]) -> str:
        if number == 0:
            return "0"
        if number not in assigned:
            self.preload.add(number)
        return f"r{number}"

    def assign(self, number: int, assigned: Set[int]) -> None:
        assigned.add(number)
        self.all_assigned.add(number)

    def writeback(self, assigned: Set[int], indent: int) -> None:
        """Flush dirty locals to the register file.

        In looping mode the path-scoped *assigned* set is not enough: a
        loop-back ``continue`` carries assignments from earlier
        iterations in locals, so every exit must flush the union of all
        registers the function can assign (a placeholder, expanded once
        emission has seen them all; unassigned ones flush their
        preloaded — hence unchanged — value).
        """
        if self.looping:
            self.emit("__WB__", indent)
            return
        for number in sorted(assigned):
            self.emit(f"regs[{number}] = r{number}", indent)

    def _exit_tuple(self, target: str, k: int, c: int, t: int) -> str:
        if self.looping:
            return f"({target}, _n + {k}, _c + {c}, _k + {t})"
        taken = f"{t} + _tkc" if self.degenerate else str(t)
        return f"({target}, {k}, {c}, {taken})"

    def raw_exit(self, target: str, k: int, c: int, t: int,
                 assigned: Set[int], indent: int) -> None:
        """Write dirty registers back and return to the dispatcher."""
        self.writeback(assigned, indent)
        self.emit(f"return {self._exit_tuple(target, k, c, t)}", indent)

    def event(self, pc: int, target: int, k: int, indent: int) -> None:
        """Emit one branch event (outcome in ``_t``) at position *k*."""
        self.events += 1
        stamp = f"n0 + _n + {k}" if self.looping else f"n0 + {k}"
        if self.mode == "hook":
            self.emit(f"aux({pc}, {target}, _t, {stamp})", indent)
        elif self.mode == "bus":
            self.emit(f"_pcs.append({pc})", indent)
            self.emit(f"_tgl.append({target})", indent)
            self.emit("_tkl.append(_t)", indent)
            self.emit(f"_tsl.append({stamp})", indent)
            # exact chunk boundaries: flush check after *every* event,
            # and re-fetch the staged lists (flush replaces them)
            self.emit("if len(_pcs) >= _ce:", indent)
            self.emit("aux._flush()", indent + 1)
            self.emit("_pcs = aux._pcs", indent + 1)
            self.emit("_tgl = aux._targets", indent + 1)
            self.emit("_tkl = aux._taken", indent + 1)
            self.emit("_tsl = aux._timestamps", indent + 1)

    # -- exits -----------------------------------------------------------

    def static_exit(self, target: int, k: int, c: int, t: int,
                    assigned: Set[int], indent: int,
                    path: Tuple[int, ...]) -> None:
        """Leave for a statically-known address: loop back to the entry,
        inline the successor trace, or return to the dispatcher."""
        if target == self.entry_address:
            if not self.looping:
                raise _NeedLoop
            self.emit(f"_n += {k}", indent)
            if c:
                self.emit(f"_c += {c}", indent)
            if t:
                self.emit(f"_k += {t}", indent)
            self.emit("if _b - _n >= __WORST__:", indent)
            self.emit("continue", indent + 1)
            self.raw_exit(str(target), 0, 0, 0, assigned, indent)
            return
        region = self.head_of.get(target)
        if (
            region is not None
            and target not in path
            and indent < MAX_INDENT
            and self.emitted + len(self.positions_of[region])
            <= MAX_FN_INSTRUCTIONS
        ):
            self.emit_region(
                region, 0, k, c, t, set(assigned), indent,
                path + (target,),
            )
            return
        self.raw_exit(str(target), k, c, t, assigned, indent)

    # -- per-region emission ---------------------------------------------

    def emit_region(self, region_index: int, offset: int, k: int, c: int,
                    t: int, assigned: Set[int], indent: int,
                    path: Tuple[int, ...]) -> None:
        """Emit a trace suffix; every control path ends in an exit."""
        positions = self.positions_of[region_index]
        program = self.program
        last = len(positions) - 1
        for position in range(offset, len(positions)):
            index, ins = positions[position]
            pc = program.address_of(index)
            op = ins.opcode
            following: Optional[int] = None
            if position < last:
                following = program.address_of(positions[position + 1][0])
            self.emitted += 1
            k += 1

            if op in _BRANCH_PREDICATES:
                predicate = _BRANCH_PREDICATES[op].format(
                    a=self.reg(ins.rs1, assigned),
                    b=self.reg(ins.rs2, assigned),
                )
                target = pc + ins.imm
                self.emit(f"_t = {predicate}", indent)
                self.event(pc, target, k - 1, indent)
                c += 1
                if target == pc + 4:
                    # degenerate branch: both directions continue; only
                    # the taken count depends on the outcome
                    self.emit("if _t:", indent)
                    if self.looping:
                        self.emit("_k += 1", indent + 1)
                    else:
                        self.degenerate = True
                        self.emit("_tkc += 1", indent + 1)
                    if following is None:
                        self.static_exit(pc + 4, k, c, t, assigned, indent,
                                         path)
                        return
                elif following is None:  # tail: both directions exit
                    self.emit("if _t:", indent)
                    self.static_exit(target, k, c, t + 1, set(assigned),
                                     indent + 1, path)
                    self.static_exit(pc + 4, k, c, t, assigned, indent, path)
                    return
                elif following == target:  # continue on the taken path
                    self.emit("if not _t:", indent)
                    self.static_exit(pc + 4, k, c, t, set(assigned),
                                     indent + 1, path)
                    t += 1
                else:  # continue on fallthrough; taken is the side exit
                    self.emit("if _t:", indent)
                    self.static_exit(target, k, c, t + 1, set(assigned),
                                     indent + 1, path)
            elif op is O.JAL:
                if ins.rd:
                    self.emit(f"r{ins.rd} = {pc + 4}", indent)
                    self.assign(ins.rd, assigned)
                target = pc + ins.imm
                if following != target:
                    # a call's CFG successor is its *return point* —
                    # dynamically, control always goes to the target
                    self.static_exit(target, k, c, t, assigned, indent, path)
                    return
            elif op is O.JALR:
                # destination before the link write, exactly like the
                # interpreter (matters when rd == rs1)
                self.emit(
                    f"_d = ({self.reg(ins.rs1, assigned)} + {ins.imm}) & -4",
                    indent,
                )
                if ins.rd:
                    self.emit(f"r{ins.rd} = {pc + 4}", indent)
                    self.assign(ins.rd, assigned)
                if following is None:
                    self.raw_exit("_d", k, c, t, assigned, indent)
                    return
                self.emit(f"if _d != {following}:", indent)
                self.raw_exit("_d", k, c, t, assigned, indent + 1)
            elif op is O.ECALL:
                # the environment sees the real machine state: write
                # every dirty register back, point state.pc at the
                # faulting instruction, re-read a0 (the only register a
                # syscall may write)
                self.writeback(assigned, indent)
                self.emit(f"state.pc = {pc}", indent)
                self.emit("env.handle(state)", indent)
                self.emit("r10 = regs[10]", indent)
                self.assign(10, assigned)
                self.emit("if state.halted:", indent)
                self.raw_exit(str(pc + 4), k, c, t, set(assigned),
                              indent + 1)
            elif op is O.HALT:
                self.emit("state.halted = True", indent)
                self.raw_exit(str(pc + 4), k, c, t, assigned, indent)
                return
            else:
                self.straight_line(ins, assigned, indent)
        # the tail fell through: continue at the next address
        index, _ = positions[last]
        self.static_exit(program.address_of(index) + 4, k, c, t, assigned,
                         indent, path)

    def straight_line(self, ins: Instruction, assigned: Set[int],
                      indent: int) -> None:
        op = ins.opcode
        rd, imm = ins.rd, ins.imm
        a = self.reg(ins.rs1, assigned)
        if op is O.SW:
            self.helpers.add(op)
            self.emit(f"_sw({a} + {imm}, {self.reg(ins.rs2, assigned)})",
                      indent)
            return
        if op is O.SB:
            self.helpers.add(op)
            self.emit(f"_sb({a} + {imm}, {self.reg(ins.rs2, assigned)})",
                      indent)
            return
        if not rd:
            return  # x0 writes (and their loads) are skipped entirely
        d = f"r{rd}"
        if op is O.ADDI:
            line = f"{d} = {_wrap(f'{a} + {imm}')}"
        elif op is O.LW:
            self.helpers.add(op)
            line = f"{d} = _lw({a} + {imm})"
        elif op is O.LB:
            self.helpers.add(op)
            line = f"{d} = _lb({a} + {imm})"
        elif op in (O.ADD, O.SUB, O.MUL, O.AND, O.OR, O.XOR, O.SLL, O.SRL,
                    O.SRA, O.SLT, O.SLTU):
            b = self.reg(ins.rs2, assigned)
            if op is O.ADD:
                line = f"{d} = {_wrap(f'{a} + {b}')}"
            elif op is O.SUB:
                line = f"{d} = {_wrap(f'{a} - {b}')}"
            elif op is O.MUL:
                line = f"{d} = {_wrap(f'{a} * {b}')}"
            elif op is O.AND:
                line = f"{d} = {a} & {b}"
            elif op is O.OR:
                line = f"{d} = {a} | {b}"
            elif op is O.XOR:
                line = f"{d} = {a} ^ {b}"
            elif op is O.SLL:
                line = f"{d} = {_wrap(f'{a} << ({b} & 31)')}"
            elif op is O.SRL:
                line = f"{d} = {_wrap(f'({a} & 0xFFFFFFFF) >> ({b} & 31)')}"
            elif op is O.SRA:
                line = f"{d} = {a} >> ({b} & 31)"
            elif op is O.SLT:
                line = f"{d} = 1 if {a} < {b} else 0"
            else:  # SLTU
                line = (
                    f"{d} = 1 if ({a} & 0xFFFFFFFF) < ({b} & 0xFFFFFFFF) "
                    f"else 0"
                )
        elif op is O.ANDI:
            line = f"{d} = {a} & {imm}"
        elif op is O.ORI:
            # or/xor of in-range int32 values stays in range: the
            # interpreter's wrap32 is the identity here
            line = f"{d} = {a} | {imm}"
        elif op is O.XORI:
            line = f"{d} = {a} ^ {imm}"
        elif op is O.SLLI:
            line = f"{d} = {_wrap(f'{a} << {imm & 31}')}"
        elif op is O.SRLI:
            if imm & 31:
                # a 32-bit value shifted right by >= 1 is already in
                # signed range; the wrap would be the identity
                line = f"{d} = ({a} & 0xFFFFFFFF) >> {imm & 31}"
            else:
                line = f"{d} = {a}"
        elif op is O.SRAI:
            line = f"{d} = {a} >> {imm & 31}"
        elif op is O.SLTI:
            line = f"{d} = 1 if {a} < {imm} else 0"
        elif op is O.LUI:
            line = f"{d} = {wrap32(imm << 13)}"
        elif op in (O.DIV, O.REM):
            b = self.reg(ins.rs2, assigned)
            self.emit(f"_v = {b}", indent)
            self.emit("if _v == 0:", indent)
            if op is O.DIV:
                self.emit(f"{d} = -1", indent + 1)
                self.emit("else:", indent)
                self.emit(f"_q = abs({a}) // abs(_v)", indent + 1)
                self.emit(f"if ({a} < 0) != (_v < 0):", indent + 1)
                self.emit("_q = -_q", indent + 2)
                self.emit(f"{d} = {_wrap('_q')}", indent + 1)
            else:
                self.emit(f"{d} = {a}", indent + 1)
                self.emit("else:", indent)
                # |remainder| < |divisor| <= 2**31: always in range
                self.emit(f"_q = abs({a}) % abs(_v)", indent + 1)
                self.emit(f"if {a} < 0:", indent + 1)
                self.emit("_q = -_q", indent + 2)
                self.emit(f"{d} = _q", indent + 1)
            self.assign(rd, assigned)
            return
        else:  # pragma: no cover - every opcode is handled above
            raise NotImplementedError(f"no specialization for {op!r}")
        self.emit(line, indent)
        self.assign(rd, assigned)

    # -- assembly --------------------------------------------------------

    def source(self) -> str:
        indent = 2 if self.looping else 1
        self.emit_region(
            self.region_index, self.offset, 0, 0, 0, set(), indent,
            (self.entry_address,),
        )
        prologue = [f"def {self.name}(regs, memory, env, state, aux, n0, _b):"]
        loads = self.preload | (self.all_assigned if self.looping else set())
        for number in sorted(loads):
            prologue.append(f"    r{number} = regs[{number}]")
        helper_names = {
            O.LW: "_lw = memory.load_word", O.SW: "_sw = memory.store_word",
            O.LB: "_lb = memory.load_byte", O.SB: "_sb = memory.store_byte",
        }
        for op in (O.LW, O.SW, O.LB, O.SB):
            if op in self.helpers:
                prologue.append(f"    {helper_names[op]}")
        if self.mode == "bus" and self.events:
            prologue.append("    _pcs = aux._pcs")
            prologue.append("    _tgl = aux._targets")
            prologue.append("    _tkl = aux._taken")
            prologue.append("    _tsl = aux._timestamps")
            prologue.append("    _ce = aux.chunk_events")
        if self.degenerate:
            prologue.append("    _tkc = 0")
        if self.looping:
            prologue.append("    _n = 0")
            prologue.append("    _c = 0")
            prologue.append("    _k = 0")
            prologue.append("    while True:")
        lines: List[str] = []
        flush = [f"regs[{n}] = r{n}" for n in sorted(self.all_assigned)]
        for line in prologue + self.body:
            stripped = line.lstrip()
            if stripped == "__WB__":
                pad = line[: len(line) - len(stripped)]
                lines.extend(pad + store for store in flush)
            else:
                lines.append(line)
        return "\n".join(lines).replace("__WORST__", str(self.emitted))


def _emit_entry(program, positions_of, head_of, name, region_index, offset,
                mode) -> Tuple[str, int]:
    """Source and worst-case length of one compiled entry point."""
    try:
        emitter = _FnEmitter(program, positions_of, head_of, name,
                             region_index, offset, mode, looping=False)
        return emitter.source(), emitter.emitted
    except _NeedLoop:
        emitter = _FnEmitter(program, positions_of, head_of, name,
                             region_index, offset, mode, looping=True)
        return emitter.source(), emitter.emitted


#: entry byte address -> [function or None, worst-case instructions,
#: source text, function name] — the function slot is filled lazily by
#: :func:`_materialize` the first time the entry executes
TraceTable = Dict[int, List]


def compile_program(program: Program, mode: str) -> TraceTable:
    """Specialize every superblock of *program* for hook *mode*.

    Returns an empty table when the CFG or cover cannot be formed; the
    executor then runs entirely on the interpreter fallback.
    """
    if mode not in ("bus", "hook", "none"):
        raise ValueError(f"unknown specialization mode {mode!r}")
    try:
        cfg = build_cfg(program)
        cover = form_superblocks(cfg)
    except Exception:
        return {}
    positions_of: Dict[int, List[Tuple[int, Instruction]]] = {}
    head_of: Dict[int, int] = {}
    for region in cover.superblocks:
        positions = [
            (i, program.instructions[i])
            for block_id in region.blocks
            for i in range(
                cfg.blocks[block_id].start, cfg.blocks[block_id].end
            )
        ]
        if not positions:
            continue
        positions_of[region.index] = positions
        head_of[program.address_of(positions[0][0])] = region.index

    entries: List[Tuple[int, str, int, str]] = []
    for region_index, positions in positions_of.items():
        # dynamic entry offsets: the trace head, plus every post-call
        # point — a call's return lands at call+4, which is mid-trace
        # whenever formation absorbed the return block
        offsets = [0] + [
            p for p in range(1, len(positions))
            if positions[p - 1][1].is_call
        ]
        for offset in offsets:
            name = f"_trace_{region_index}_{offset}"
            source, worst = _emit_entry(
                program, positions_of, head_of, name, region_index, offset,
                mode,
            )
            entries.append(
                (program.address_of(positions[offset][0]), name, worst,
                 source)
            )
    # entries hold source only; bytecode is materialized on first hit
    # (most entries are never executed, and compiling them all up front
    # costs seconds on large programs)
    return {
        address: [None, worst, source, name]
        for address, name, worst, source in entries
    }


def _materialize(entry: List, mode: str):
    """Compile one entry's source on its first execution."""
    namespace: Dict[str, object] = {}
    code = compile(entry[2], f"<superblock:{mode}>", "exec")
    exec(code, namespace)  # noqa: S102 - our own generated source
    fn = entry[0] = namespace[entry[3]]
    return fn


_code_cache: "OrderedDict[Tuple[str, str], TraceTable]" = OrderedDict()


def _image_key(program: Program) -> str:
    text, data = program.to_image()
    digest = hashlib.sha256()
    digest.update(text)
    digest.update(program.entry_point.to_bytes(8, "little"))
    digest.update(data)
    return digest.hexdigest()


def compiled_table(program: Program, mode: str) -> TraceTable:
    """The (cached) specialized trace table for *program* and *mode*."""
    key = (_image_key(program), mode)
    table = _code_cache.get(key)
    if table is None:
        table = compile_program(program, mode)
        _code_cache[key] = table
        while len(_code_cache) > _CACHE_CAPACITY:
            _code_cache.popitem(last=False)
    else:
        _code_cache.move_to_end(key)
    return table


class SuperblockExecutor(Executor):
    """Drop-in :class:`Executor` running compiled superblock traces.

    Counter attributes, hook contract, exception behaviour and the
    ``run`` return value all match the interpreter; ``run`` merely
    dispatches whole compiled regions when the PC sits on a compiled
    entry and the remaining budget covers the region's worst case, and
    single-steps the inherited interpreter otherwise.
    """

    def __init__(
        self,
        program: Program,
        state: MachineState,
        environment: Environment,
        branch_hook: Optional[BranchHook] = None,
    ) -> None:
        super().__init__(program, state, environment, branch_hook)
        self._tables: Dict[str, TraceTable] = {}

    def _table(self, mode: str) -> TraceTable:
        table = self._tables.get(mode)
        if table is None:
            table = self._tables[mode] = compiled_table(self.program, mode)
        return table

    def run(self, max_instructions: int = 10_000_000) -> int:
        state = self.state
        hook = self.branch_hook
        if hook is None:
            mode, aux = "none", None
        elif type(hook) is BranchEventBus and hook.limit is None:
            mode, aux = "bus", hook
        else:
            mode, aux = "hook", hook.on_branch
        table = self._table(mode)
        regs = state.regs
        memory = state.memory
        env = self.environment
        get = table.get

        budget = max_instructions
        count = self.instruction_count
        start_count = count
        cond = self.conditional_branch_count
        taken = self.taken_branch_count
        fast_events = 0
        pc = state.pc
        try:
            while not state.halted and budget > 0:
                entry = get(pc)
                if entry is not None and budget >= entry[1]:
                    fn = entry[0]
                    if fn is None:
                        fn = _materialize(entry, mode)
                    pc, executed, dcond, dtaken = fn(
                        regs, memory, env, state, aux, count, budget
                    )
                    count += executed
                    cond += dcond
                    taken += dtaken
                    fast_events += dcond
                    budget -= executed
                else:
                    # off-trace PC (e.g. a mid-trace checkpoint restore)
                    # or a budget smaller than the region's worst case:
                    # let the interpreter make exact forward progress
                    state.pc = pc
                    self.instruction_count = count
                    self.conditional_branch_count = cond
                    self.taken_branch_count = taken
                    try:
                        Executor.run(self, min(budget, FALLBACK_STEP))
                    except FuelExhausted:
                        pass
                    finally:
                        budget -= self.instruction_count - count
                        count = self.instruction_count
                        cond = self.conditional_branch_count
                        taken = self.taken_branch_count
                        pc = state.pc
        finally:
            state.pc = pc
            self.instruction_count = count
            self.conditional_branch_count = cond
            self.taken_branch_count = taken
            if fast_events and mode == "bus":
                # compiled regions append events without touching the
                # bus counter; the interpreter fallback counts its own
                aux.stats.events += fast_events
        if not state.halted and budget == 0:
            raise FuelExhausted(
                f"budget of {max_instructions} instructions exhausted"
            )
        return count - start_count


__all__ = [
    "FALLBACK_STEP",
    "MAX_FN_INSTRUCTIONS",
    "SuperblockExecutor",
    "compile_program",
    "compiled_table",
]
