"""Architectural machine state: registers, PC and memory."""

from __future__ import annotations

from typing import List

from ..isa.registers import NUM_REGISTERS, register_name
from .memory import Memory

INT32_MIN = -(1 << 31)
INT32_MASK = 0xFFFF_FFFF


def wrap32(value: int) -> int:
    """Wrap an arbitrary Python int to signed 32-bit two's complement."""
    value &= INT32_MASK
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


def unsigned32(value: int) -> int:
    """Reinterpret a signed 32-bit value as unsigned."""
    return value & INT32_MASK


class MachineState:
    """Registers, program counter and memory of the simulated machine.

    Register values are stored as signed 32-bit Python ints; writers must
    pass already-wrapped values (the executor wraps ALU results).  ``x0``
    reads as zero regardless of writes.
    """

    __slots__ = ("regs", "pc", "memory", "halted", "exit_code")

    def __init__(self) -> None:
        self.regs: List[int] = [0] * NUM_REGISTERS
        self.pc: int = 0
        self.memory = Memory()
        self.halted: bool = False
        self.exit_code: int = 0

    def read(self, number: int) -> int:
        """Read register *number* (x0 is always zero)."""
        return self.regs[number]

    def write(self, number: int, value: int) -> None:
        """Write *value* (already signed-32-bit) to register *number*."""
        if number:
            self.regs[number] = value

    def dump_registers(self) -> str:
        """Human-readable register dump for debugging."""
        parts = [
            f"{register_name(i):>5}={self.regs[i]:#010x}"
            for i in range(NUM_REGISTERS)
        ]
        rows = [" ".join(parts[i : i + 4]) for i in range(0, NUM_REGISTERS, 4)]
        return f"pc={self.pc:#010x}\n" + "\n".join(rows)
