"""Typed error taxonomy for the whole reproduction.

Every failure the pipeline can produce descends from :class:`ReproError`,
so callers can catch one root for "anything this package raised" and the
CLI can serialise any failure into the machine-readable JSON envelope via
:meth:`ReproError.to_dict`.

Layers::

    ReproError                      — root; carries a message + context dict
    ├── ArtifactCorrupt             — cache entry failed verification/load
    ├── CheckpointCorrupt           — checkpoint file failed verification
    ├── JournalInvalid              — run journal structurally damaged
    ├── JobFailed                   — one engine job exhausted its retries
    │   ├── JobTimeout              — ... by exceeding its wall-clock budget
    │   └── JobCancelled            — cancelled by deadline/client, not retried
    ├── JobInterrupted              — checkpointed + stopped by a drain signal
    ├── SelectionError              — benchmark selector could not resolve
    │   ├── UnknownBenchmark        — ... named an unregistered benchmark
    │   └── UnknownSet              — ... named an unregistered set
    ├── ShardConflict               — shard stores disagree on artifact bytes
    ├── ShardLost                   — a supervised shard worker died or hung
    │   └── ShardRestartsExhausted  — ... and its restart budget ran out
    ├── ServiceOverloaded           — admission queue full / daemon draining
    ├── QuotaExceeded               — tenant token bucket empty
    ├── SuiteDegraded               — *every* benchmark of a run failed
    ├── SuiteInterrupted            — a suite run drained on SIGTERM
    ├── MemAccessError              — invalid simulated memory access
    ├── SimulationError             — executor left text / decoded garbage
    │   (defined in repro.sim.executor, folded in here)
    ├── FuelExhausted               — instruction budget ran out
    ├── SyscallError                — unknown environment call
    ├── AsmSyntaxError              — malformed assembly input
    └── EncodingError               — unencodable instruction

The simulator/assembler errors keep their historical bases
(``RuntimeError`` / ``ValueError``) so existing ``except`` clauses keep
working; they are re-exported from this module lazily to avoid import
cycles (this module must stay import-free at the bottom of the package
dependency graph).
"""

from __future__ import annotations

from typing import Any, Dict


class ReproError(Exception):
    """Root of the package's error taxonomy.

    Context is carried as keyword arguments (``benchmark=...``,
    ``path=...``) and surfaces both in ``str()`` output and in the
    machine-readable :meth:`to_dict` form.  Subclasses set ``code`` to a
    stable machine-readable identifier.
    """

    code = "repro_error"

    def __init__(self, message: str = "", **context: Any) -> None:
        super().__init__(message)
        self.message = message
        self.context: Dict[str, Any] = context

    def __str__(self) -> str:
        return self.message

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready view for the CLI envelope's ``failures`` array."""
        return {
            "error": type(self).__name__,
            "code": self.code,
            "message": self.message,
            **self.context,
        }


class ArtifactCorrupt(ReproError):
    """A stored artifact failed digest/schema verification or did not load.

    The store reports these as cache *misses* (quarantining the bad files)
    so a corrupt entry costs a resimulation, never an aborted run.
    """

    code = "artifact_corrupt"


class CheckpointCorrupt(ReproError):
    """A simulation checkpoint failed magic/version/checksum verification.

    The checkpoint store reports these as misses (quarantining the bad
    file) so a damaged checkpoint costs falling back to the previous
    sequence number — or, at worst, a cold start — never an aborted run.
    """

    code = "checkpoint_corrupt"


class JournalInvalid(ReproError):
    """The run journal is structurally damaged beyond the tolerated cases.

    Raised by :meth:`repro.checkpoint.journal.RunJournal.validate` with
    the journal path, the 1-based line number and a snippet of the
    offending record, so a failed ``experiment --resume`` names exactly
    what to inspect (or delete) instead of dying with a bare exception.
    """

    code = "journal_invalid"


class JobFailed(ReproError):
    """One engine job failed after exhausting its retry budget."""

    code = "job_failed"


class JobTimeout(JobFailed):
    """A job exceeded its per-attempt wall-clock budget."""

    code = "job_timeout"


class JobCancelled(JobFailed):
    """A job was cancelled — deadline expiry or an explicit client cancel.

    Cancellation is a *decision*, not a fault: the job is terminated
    through the engine's timeout path (checkpointing on the way down when
    a cadence is configured) and is never retried.
    """

    code = "job_cancelled"


class JobInterrupted(ReproError):
    """A drain signal (SIGTERM) stopped this job after a checkpoint.

    Not a failure: the job's progress is durable in its checkpoint and a
    later run (or a restarted daemon) resumes it mid-simulation.  Drain
    handling must therefore never retry an interrupted job.
    """

    code = "job_interrupted"


class ServiceOverloaded(ReproError):
    """The analysis service shed this request instead of queueing it.

    Returned (as a typed wire rejection, never a crash) when the
    admission queue is at capacity or the daemon is draining.  Clients
    should back off and resubmit.
    """

    code = "service_overloaded"


class QuotaExceeded(ReproError):
    """The submitting tenant's token bucket had no tokens left.

    Per-tenant rate limiting: the rejection names the tenant and the
    earliest time a token will be available (``retry_after_s``).
    """

    code = "quota_exceeded"


class SelectionError(ReproError):
    """A benchmark selector expression could not be resolved.

    Raised by :func:`repro.workloads.registry.resolve_selection` for
    malformed or empty selections; the CLI turns any
    :class:`SelectionError` into an exit-2 usage diagnostic (these are
    caller errors, not pipeline faults).
    """

    code = "invalid_selection"


class UnknownBenchmark(SelectionError):
    """A selector named a benchmark that is not registered.

    Carries a ``suggestion`` context entry with the closest registered
    name when one exists, so the CLI diagnostic can offer a near-miss.
    """

    code = "unknown_benchmark"


class UnknownSet(SelectionError):
    """A selector named a benchmark set that is not registered.

    Carries a ``suggestion`` context entry with the closest registered
    set name when one exists.
    """

    code = "unknown_set"


class ShardConflict(ReproError):
    """Two shard stores disagree about the bytes of one artifact.

    Content-addressed filenames embed the artifact digest, so two files
    with the same name must be byte-identical; a mismatch means one
    shard host ran divergent code (or suffered silent corruption) and
    the merge must not paper over it.  Raised by
    :func:`repro.eval.shards.merge_shards` naming the file and both
    sources.
    """

    code = "shard_conflict"


class ShardLost(ReproError):
    """A supervised shard worker died (crash) or stopped heartbeating (hang).

    Raised — or recorded, when the supervisor can recover — by
    :mod:`repro.eval.supervisor` after the pid probe finds the worker
    process gone, or after its heartbeat lease expired and the wedged
    process was killed.  The shard's completed work is durable (journal +
    store); its incomplete benchmarks are restarted or reassigned.
    """

    code = "shard_lost"


class ShardRestartsExhausted(ShardLost):
    """A lost shard burned through its bounded restart budget.

    The supervisor stops respawning this shard slot; its remaining
    benchmarks are re-partitioned across surviving workers.  Raised only
    when no survivor is left to take the work.
    """

    code = "shard_restarts_exhausted"


class SuiteDegraded(ReproError):
    """Every benchmark an experiment needed failed.

    Partial failure degrades gracefully (experiments run on the surviving
    set); this is raised — and turned into a nonzero exit — only when
    nothing survived.
    """

    code = "suite_degraded"


class SuiteInterrupted(ReproError):
    """A SIGTERM drained this suite run before it finished.

    Completed benchmarks are journaled and their artifacts durable;
    in-flight jobs wrote checkpoints on the way down.  Rerunning with
    ``--resume`` continues from where the drain stopped.
    """

    code = "suite_interrupted"


class MemAccessError(ReproError, RuntimeError):
    """Raised on invalid simulated memory access.

    Replaces the historical ``MemoryError_`` name, which shadowed the
    builtin pattern; the deprecated alias was removed from
    :mod:`repro.sim.memory` after one release of warnings.
    """

    code = "mem_access_error"


#: Errors defined in their home modules but folded into the taxonomy here.
_FOLDED = {
    "SimulationError": ("repro.sim.executor", "SimulationError"),
    "FuelExhausted": ("repro.sim.executor", "FuelExhausted"),
    "SyscallError": ("repro.sim.syscalls", "SyscallError"),
    "AsmSyntaxError": ("repro.asm.lexer", "AsmSyntaxError"),
    "EncodingError": ("repro.isa.encoding", "EncodingError"),
}


def __getattr__(name: str):  # lazy re-exports, avoids import cycles
    target = _FOLDED.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target[0]), target[1])


def error_to_dict(exc: BaseException) -> Dict[str, Any]:
    """Serialise any exception for the JSON envelope.

    :class:`ReproError` instances use their typed :meth:`~ReproError.to_dict`;
    foreign exceptions get a generic wrapper so the envelope never loses a
    failure just because it was not ours.
    """
    if isinstance(exc, ReproError):
        return exc.to_dict()
    return {
        "error": type(exc).__name__,
        "code": "unexpected_error",
        "message": str(exc),
    }


__all__ = [
    "ArtifactCorrupt",
    "AsmSyntaxError",
    "CheckpointCorrupt",
    "EncodingError",
    "FuelExhausted",
    "JobCancelled",
    "JobFailed",
    "JobInterrupted",
    "JobTimeout",
    "JournalInvalid",
    "MemAccessError",
    "QuotaExceeded",
    "ReproError",
    "SelectionError",
    "ServiceOverloaded",
    "ShardConflict",
    "ShardLost",
    "ShardRestartsExhausted",
    "SimulationError",
    "SuiteDegraded",
    "SuiteInterrupted",
    "SyscallError",
    "UnknownBenchmark",
    "UnknownSet",
    "error_to_dict",
]
