"""The time-stamp interleave analysis (paper §4.1, Figure 1).

The paper's procedure: every static branch carries the time stamp of its
latest dynamic instance (the retired-instruction count before it).  When a
branch *A* re-executes, every branch whose time stamp exceeds A's previous
stamp has interleaved with A since then, and each such pair's interleave
counter is incremented; A's stamp is then updated.

Because time stamps are strictly increasing over the run, "branches with a
stamp greater than A's previous stamp" is exactly "branches that executed at
least once since A's previous instance" — i.e. the branches *above A on a
recency stack*.  :class:`InterleaveAnalyzer` exploits that to process each
event in O(stack distance) instead of O(static branches).
:func:`interleave_pairs_bruteforce` implements the paper's literal
timestamp scan; a property test asserts the two agree on arbitrary traces.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from ..trace.events import BranchTrace
from .profile import BranchStats, InterleaveProfile, PairKey, pair_key


class InterleaveAnalyzer:
    """Streaming recency-stack interleave analysis.

    Feed dynamic conditional-branch events in program order via
    :meth:`observe` (or use :func:`profile_trace`); read the result with
    :meth:`finish`.  Also usable directly as a simulator branch hook.
    """

    def __init__(self, name: str = "<profile>") -> None:
        self._name = name
        # Recency list: _above[pc] is the branch executed immediately more
        # recently than pc; _below[pc] the one less recently.  _head is the
        # most recently executed branch.
        self._above: Dict[int, Optional[int]] = {}
        self._below: Dict[int, Optional[int]] = {}
        self._head: Optional[int] = None
        self._stats: Dict[int, BranchStats] = {}
        self._pairs: Dict[PairKey, int] = {}
        self._instructions = 0

    # -- event intake --------------------------------------------------------

    def observe(self, pc: int, taken: bool = False) -> None:
        """Record one dynamic instance of branch *pc* (in program order)."""
        stats = self._stats.get(pc)
        if stats is None:
            stats = BranchStats()
            self._stats[pc] = stats
            self._push_new(pc)
        else:
            self._count_and_raise(pc)
        stats.executions += 1
        if taken:
            stats.taken += 1

    def on_branch(
        self, pc: int, target: int, taken: bool, instruction_count: int
    ) -> None:
        """Simulator branch-hook adapter."""
        self._instructions = instruction_count
        self.observe(pc, taken)

    def observe_chunk(self, pcs: Sequence[int], taken: Sequence[bool]) -> None:
        """Batch intake: equivalent to :meth:`observe` per event.

        Produces the same branch stats and the same pair counts (with the
        same pair-dict insertion order) as the scalar loop; per-branch
        execution/taken totals are accumulated vectorized per *distinct*
        branch, so the remaining Python loop does only the recency-list
        walk.  Branch-stats dict insertion order is sorted-by-PC per
        chunk rather than first-occurrence — every chunked path inserts
        identically, which is what profile byte-equality rests on.
        """
        pcs_arr = np.asarray(pcs, dtype=np.uint64)
        if len(pcs_arr) == 0:
            return
        taken_arr = np.asarray(taken, dtype=bool)
        unique_pcs, inverse = np.unique(pcs_arr, return_inverse=True)
        executions = np.bincount(inverse, minlength=len(unique_pcs))
        taken_counts = np.bincount(inverse[taken_arr], minlength=len(unique_pcs))
        stats_map = self._stats
        for pc, ex, tk in zip(
            unique_pcs.tolist(), executions.tolist(), taken_counts.tolist()
        ):
            stats = stats_map.get(pc)
            if stats is None:
                stats = BranchStats()
                stats_map[pc] = stats
            stats.executions += ex
            stats.taken += tk
        pairs = self._pairs
        above = self._above
        below = self._below
        head = self._head
        events = pcs if type(pcs) is list else pcs_arr.tolist()
        for pc in events:
            if pc == head:
                continue
            if pc in below:
                node = head
                while node != pc:
                    key = (pc, node) if pc <= node else (node, pc)
                    pairs[key] = pairs.get(key, 0) + 1
                    node = below[node]
                node_above = above[pc]
                node_below = below[pc]
                if node_above is not None:
                    below[node_above] = node_below
                if node_below is not None:
                    above[node_below] = node_above
                above[pc] = None
                below[pc] = head
                above[head] = pc  # head is never None: pc is on the list
                head = pc
            else:
                above[pc] = None
                below[pc] = head
                if head is not None:
                    above[head] = pc
                head = pc
        self._head = head

    def _push_new(self, pc: int) -> None:
        self._above[pc] = None
        self._below[pc] = self._head
        if self._head is not None:
            self._above[self._head] = pc
        self._head = pc

    def _count_and_raise(self, pc: int) -> None:
        """Count pairs with every branch more recent than *pc*, then move
        *pc* to the top of the recency list."""
        if self._head == pc:
            return
        pairs = self._pairs
        node = self._head
        while node != pc:
            assert node is not None, "recency list corrupted"
            key = (pc, node) if pc <= node else (node, pc)
            pairs[key] = pairs.get(key, 0) + 1
            node = self._below[node]
        # unlink pc
        above, below = self._above[pc], self._below[pc]
        if above is not None:
            self._below[above] = below
        if below is not None:
            self._above[below] = above
        # relink at head
        self._above[pc] = None
        self._below[pc] = self._head
        if self._head is not None:
            self._above[self._head] = pc
        self._head = pc

    # -- results ---------------------------------------------------------------

    def finish(self) -> InterleaveProfile:
        """Freeze the analysis into an :class:`InterleaveProfile`."""
        return InterleaveProfile(
            branches=self._stats,
            pairs=self._pairs,
            instructions=self._instructions,
            name=self._name,
        )


def profile_trace(
    trace: BranchTrace, name: Optional[str] = None
) -> InterleaveProfile:
    """Run the interleave analysis over a recorded trace (chunked path)."""
    analyzer = InterleaveAnalyzer(name=name or trace.name)
    analyzer.observe_chunk(trace.pcs, trace.taken)
    if len(trace):
        analyzer._instructions = int(trace.timestamps[-1])
    return analyzer.finish()


def interleave_pairs_bruteforce(
    events: Iterable[Tuple[int, int]]
) -> Dict[PairKey, int]:
    """The paper's literal Figure 1 procedure, O(statics) per event.

    Args:
        events: iterable of (pc, timestamp) in program order; timestamps
            must be strictly increasing.

    Returns:
        Unordered pair -> interleave count.  Used as the reference
        implementation in property tests; do not use on large traces.

    Raises:
        ValueError: if timestamps are not strictly increasing.
    """
    last_ts: Dict[int, int] = {}
    pairs: Dict[PairKey, int] = {}
    previous_ts = -1
    for pc, ts in events:
        if ts <= previous_ts:
            raise ValueError("timestamps must be strictly increasing")
        previous_ts = ts
        if pc in last_ts:
            my_prev = last_ts[pc]
            for other, other_ts in last_ts.items():
                if other != pc and other_ts > my_prev:
                    key = pair_key(pc, other)
                    pairs[key] = pairs.get(key, 0) + 1
        last_ts[pc] = ts
    return pairs
