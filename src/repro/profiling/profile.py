"""Profile artifacts.

An :class:`InterleaveProfile` is the output of the paper's first two analysis
steps: per-static-branch execution statistics plus the pairwise interleave
counts that become the edges of the branch conflict graph.  Profiles are
JSON-serializable so they can be cached, inspected and merged across input
sets (the paper's §5.2 cumulative-profile approach).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

PathLike = Union[str, Path]
PairKey = Tuple[int, int]

_FORMAT_VERSION = 1


@dataclass
class BranchStats:
    """Dynamic statistics for one static conditional branch."""

    executions: int = 0
    taken: int = 0

    @property
    def taken_rate(self) -> float:
        """Fraction of dynamic instances that were taken."""
        if self.executions == 0:
            return 0.0
        return self.taken / self.executions


def pair_key(a: int, b: int) -> PairKey:
    """Canonical unordered key for a branch pair."""
    return (a, b) if a <= b else (b, a)


@dataclass
class InterleaveProfile:
    """Per-branch stats and pairwise interleave counts for one profile run.

    Attributes:
        branches: static branch PC -> :class:`BranchStats`.
        pairs: canonical (low PC, high PC) -> interleave count, i.e. how many
            dynamic re-executions observed the other branch in between.
        instructions: instructions retired during the profiled run (0 when
            the trace source does not track it).
        name: provenance label.
    """

    branches: Dict[int, BranchStats] = field(default_factory=dict)
    pairs: Dict[PairKey, int] = field(default_factory=dict)
    instructions: int = 0
    name: str = "<profile>"

    @property
    def static_branch_count(self) -> int:
        return len(self.branches)

    @property
    def dynamic_branch_count(self) -> int:
        return sum(s.executions for s in self.branches.values())

    def execution_count(self, pc: int) -> int:
        """Dynamic execution count for a static branch (0 if unseen)."""
        stats = self.branches.get(pc)
        return stats.executions if stats else 0

    def taken_rate(self, pc: int) -> float:
        """Taken fraction for a static branch (0.0 if unseen)."""
        stats = self.branches.get(pc)
        return stats.taken_rate if stats else 0.0

    def interleave_count(self, a: int, b: int) -> int:
        """Interleave count for an unordered branch pair."""
        return self.pairs.get(pair_key(a, b), 0)

    def hot_branches(self, limit: int) -> List[int]:
        """The *limit* most frequently executed static branches."""
        ranked = sorted(
            self.branches.items(),
            key=lambda item: (-item[1].executions, item[0]),
        )
        return [pc for pc, _ in ranked[:limit]]

    # -- serialization -------------------------------------------------------

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        payload = {
            "format": "interleave-profile",
            "version": _FORMAT_VERSION,
            "name": self.name,
            "instructions": self.instructions,
            "branches": {
                str(pc): [s.executions, s.taken]
                for pc, s in self.branches.items()
            },
            "pairs": [
                [a, b, count] for (a, b), count in self.pairs.items()
            ],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "InterleaveProfile":
        """Deserialize a profile written by :meth:`to_json`.

        Raises:
            ValueError: on a wrong format marker or version.
        """
        payload = json.loads(text)
        if payload.get("format") != "interleave-profile":
            raise ValueError("not an interleave-profile document")
        if payload.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported profile version {payload.get('version')}"
            )
        branches = {
            int(pc): BranchStats(executions=ex, taken=tk)
            for pc, (ex, tk) in payload["branches"].items()
        }
        pairs = {
            pair_key(int(a), int(b)): int(count)
            for a, b, count in payload["pairs"]
        }
        return cls(
            branches=branches,
            pairs=pairs,
            instructions=int(payload.get("instructions", 0)),
            name=str(payload.get("name", "<profile>")),
        )

    def save(self, path: PathLike) -> None:
        """Write the profile to *path* as JSON."""
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: PathLike) -> "InterleaveProfile":
        """Read a profile written by :meth:`save`."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def restricted_to(self, pcs: Iterable[int]) -> "InterleaveProfile":
        """A copy containing only the given static branches and their pairs."""
        keep = set(pcs)
        return InterleaveProfile(
            branches={
                pc: BranchStats(s.executions, s.taken)
                for pc, s in self.branches.items()
                if pc in keep
            },
            pairs={
                key: count
                for key, count in self.pairs.items()
                if key[0] in keep and key[1] in keep
            },
            instructions=self.instructions,
            name=f"{self.name}(restricted)",
        )
