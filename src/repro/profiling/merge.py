"""Cumulative profile merging (paper §5.2).

The paper observes that profile-guided allocation degrades when the actual
input exercises code the profile run never saw, and proposes merging the
conflict graphs of several profile runs "until the resulting graph indicates
that most part of the program has been exercised".  Merging sums execution
statistics and pairwise interleave counts.
"""

from __future__ import annotations

from typing import Iterable, List

from .profile import BranchStats, InterleaveProfile


def merge_profiles(
    profiles: Iterable[InterleaveProfile], name: str = "merged"
) -> InterleaveProfile:
    """Merge several profile runs into one cumulative profile.

    Raises:
        ValueError: if no profiles are given.
    """
    profile_list: List[InterleaveProfile] = list(profiles)
    if not profile_list:
        raise ValueError("merge_profiles needs at least one profile")
    merged = InterleaveProfile(name=name)
    for profile in profile_list:
        merged.instructions += profile.instructions
        for pc, stats in profile.branches.items():
            acc = merged.branches.get(pc)
            if acc is None:
                merged.branches[pc] = BranchStats(
                    stats.executions, stats.taken
                )
            else:
                acc.executions += stats.executions
                acc.taken += stats.taken
        for key, count in profile.pairs.items():
            merged.pairs[key] = merged.pairs.get(key, 0) + count
    return merged


def coverage_against(
    profile: InterleaveProfile, reference: InterleaveProfile
) -> float:
    """Fraction of *reference*'s dynamic executions whose static branch also
    appears in *profile* — the "has most of the program been exercised?"
    check that drives the cumulative-profile loop."""
    total = reference.dynamic_branch_count
    if total == 0:
        return 1.0
    covered = sum(
        stats.executions
        for pc, stats in reference.branches.items()
        if pc in profile.branches
    )
    return covered / total
