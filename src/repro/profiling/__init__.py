"""Profile collection: per-branch statistics and interleave analysis."""

from .interleave import (
    InterleaveAnalyzer,
    interleave_pairs_bruteforce,
    profile_trace,
)
from .merge import coverage_against, merge_profiles
from .profile import BranchStats, InterleaveProfile, pair_key

__all__ = [
    "BranchStats",
    "InterleaveAnalyzer",
    "InterleaveProfile",
    "coverage_against",
    "interleave_pairs_bruteforce",
    "merge_profiles",
    "pair_key",
    "profile_trace",
]
