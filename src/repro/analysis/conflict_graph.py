"""The branch conflict graph (paper §4.1 step 2, Figure 2).

Nodes are static conditional branches; an edge between two nodes carries the
number of times their execution interleaved during the profile run.  The
graph supports the paper's refinement step — pruning edges below a threshold
(default 100) — and the classification-based edge filtering of §5.2.

Implemented natively (adjacency dict-of-dicts) rather than with networkx:
the allocator needs cheap degree updates, neighbour iteration during
colouring and deterministic ordering, which are simpler to guarantee on a
purpose-built structure.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..profiling.profile import InterleaveProfile, pair_key

DEFAULT_THRESHOLD = 100


class ConflictGraph:
    """Weighted undirected graph over static branch PCs."""

    def __init__(self) -> None:
        self._adjacency: Dict[int, Dict[int, int]] = {}
        self._node_weight: Dict[int, int] = {}

    # -- construction ---------------------------------------------------------

    def add_node(self, pc: int, weight: int = 0) -> None:
        """Add branch *pc* (idempotent); *weight* is its execution count."""
        if pc not in self._adjacency:
            self._adjacency[pc] = {}
        self._node_weight[pc] = max(self._node_weight.get(pc, 0), weight)

    def add_edge(self, a: int, b: int, count: int) -> None:
        """Add (or accumulate onto) the conflict edge between *a* and *b*.

        Raises:
            ValueError: for self-loops or non-positive counts.
        """
        if a == b:
            raise ValueError("conflict graph cannot contain self-loops")
        if count <= 0:
            raise ValueError(f"edge count must be positive, got {count}")
        self.add_node(a)
        self.add_node(b)
        self._adjacency[a][b] = self._adjacency[a].get(b, 0) + count
        self._adjacency[b][a] = self._adjacency[b].get(a, 0) + count

    def remove_edge(self, a: int, b: int) -> None:
        """Remove the edge between *a* and *b* if present."""
        self._adjacency.get(a, {}).pop(b, None)
        self._adjacency.get(b, {}).pop(a, None)

    # -- queries ---------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._adjacency)

    @property
    def edge_count(self) -> int:
        return sum(len(nbrs) for nbrs in self._adjacency.values()) // 2

    def nodes(self) -> List[int]:
        """All branch PCs, ascending (deterministic iteration order)."""
        return sorted(self._adjacency)

    def has_node(self, pc: int) -> bool:
        return pc in self._adjacency

    def has_edge(self, a: int, b: int) -> bool:
        return b in self._adjacency.get(a, {})

    def edge_weight(self, a: int, b: int) -> int:
        """Interleave count on the edge (0 if absent)."""
        return self._adjacency.get(a, {}).get(b, 0)

    def node_weight(self, pc: int) -> int:
        """Execution count recorded for the branch."""
        return self._node_weight.get(pc, 0)

    def neighbors(self, pc: int) -> Dict[int, int]:
        """Neighbour -> edge weight mapping (do not mutate)."""
        return self._adjacency.get(pc, {})

    def degree(self, pc: int) -> int:
        return len(self._adjacency.get(pc, {}))

    def weighted_degree(self, pc: int) -> int:
        """Sum of incident edge counts."""
        return sum(self._adjacency.get(pc, {}).values())

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Yield (low PC, high PC, count), deterministically ordered."""
        for a in sorted(self._adjacency):
            for b in sorted(self._adjacency[a]):
                if a < b:
                    yield a, b, self._adjacency[a][b]

    # -- transforms --------------------------------------------------------------

    def copy(self) -> "ConflictGraph":
        clone = ConflictGraph()
        clone._adjacency = {
            pc: dict(nbrs) for pc, nbrs in self._adjacency.items()
        }
        clone._node_weight = dict(self._node_weight)
        return clone

    def pruned(self, threshold: int = DEFAULT_THRESHOLD) -> "ConflictGraph":
        """A copy with edges below *threshold* removed (paper §4.2).

        Nodes are kept even if they lose all edges — an isolated branch is a
        singleton working set.
        """
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        clone = ConflictGraph()
        for pc in self._adjacency:
            clone.add_node(pc, self._node_weight.get(pc, 0))
        for a, b, count in self.edges():
            if count >= threshold:
                clone.add_edge(a, b, count)
        return clone

    def filtered_edges(
        self, drop: Callable[[int, int], bool]
    ) -> "ConflictGraph":
        """A copy without the edges for which ``drop(a, b)`` is true."""
        clone = ConflictGraph()
        for pc in self._adjacency:
            clone.add_node(pc, self._node_weight.get(pc, 0))
        for a, b, count in self.edges():
            if not drop(a, b):
                clone.add_edge(a, b, count)
        return clone

    def subgraph(self, keep: Iterable[int]) -> "ConflictGraph":
        """The induced subgraph over the given PCs."""
        keep_set = set(keep)
        clone = ConflictGraph()
        for pc in self._adjacency:
            if pc in keep_set:
                clone.add_node(pc, self._node_weight.get(pc, 0))
        for a, b, count in self.edges():
            if a in keep_set and b in keep_set:
                clone.add_edge(a, b, count)
        return clone

    def __repr__(self) -> str:
        return (
            f"ConflictGraph(nodes={self.node_count}, edges={self.edge_count})"
        )


def build_conflict_graph(
    profile: InterleaveProfile,
    threshold: int = DEFAULT_THRESHOLD,
    restrict_to: Optional[Iterable[int]] = None,
) -> ConflictGraph:
    """Build the pruned conflict graph from a profile.

    Args:
        profile: output of the interleave analysis.
        threshold: minimum interleave count for an edge to survive
            (the paper uses 100 and reports insensitivity up to 1000).
        restrict_to: optional static-branch subset (the Table 1 frequency
            cutoff); other branches are dropped entirely.
    """
    keep = set(restrict_to) if restrict_to is not None else None
    graph = ConflictGraph()
    for pc, stats in profile.branches.items():
        if keep is None or pc in keep:
            graph.add_node(pc, stats.executions)
    for (a, b), count in profile.pairs.items():
        if count < threshold:
            continue
        if keep is not None and (a not in keep or b not in keep):
            continue
        graph.add_edge(*pair_key(a, b), count)
    return graph
