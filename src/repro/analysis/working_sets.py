"""Working-set partitioning (paper §4.1 step 3).

The paper defines a working set as "a set of conditional branch instructions
which form a completely interconnected subgraph" of the (pruned) conflict
graph, and notes it picked the complete-subgraph definition "for the
simplicity of the study".  Partitioning a graph into a minimum number of
cliques is NP-hard, so — like any practical implementation — we use a
deterministic greedy clique cover:

1. visit nodes in descending weighted-degree order (ties broken by PC);
2. seed a new set with the heaviest unassigned node;
3. repeatedly add the unassigned candidate that is adjacent to *every*
   current member, choosing the one with the largest total edge weight into
   the set (ties by PC);
4. isolated or exhausted nodes end up in singleton sets.

Every emitted set is verified to be a clique; tests assert this on random
graphs, and on synthetic phased traces the recovered sets match the
generator's ground-truth phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from .conflict_graph import ConflictGraph


@dataclass(frozen=True)
class WorkingSet:
    """One branch working set (a clique in the conflict graph)."""

    members: FrozenSet[int]
    execution_weight: int  # summed execution counts of the members

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass
class WorkingSetPartition:
    """The full partition of a program's branches into working sets."""

    sets: List[WorkingSet] = field(default_factory=list)

    @property
    def count(self) -> int:
        """Total number of working sets (Table 2, column 2)."""
        return len(self.sets)

    @property
    def average_static_size(self) -> float:
        """Unweighted mean set size (Table 2, column 3)."""
        if not self.sets:
            return 0.0
        return sum(ws.size for ws in self.sets) / len(self.sets)

    @property
    def average_dynamic_size(self) -> float:
        """Execution-weighted mean set size (Table 2, column 4).

        The expected size of the working set containing a uniformly random
        *dynamic* branch instance — the paper's "dynamic average number
        weighted by branch execution count".
        """
        total_weight = sum(ws.execution_weight for ws in self.sets)
        if total_weight == 0:
            return self.average_static_size
        return (
            sum(ws.size * ws.execution_weight for ws in self.sets)
            / total_weight
        )

    @property
    def largest_size(self) -> int:
        """Size of the biggest working set (drives BHT sizing pressure)."""
        return max((ws.size for ws in self.sets), default=0)

    def set_of(self, pc: int) -> Optional[WorkingSet]:
        """The working set containing branch *pc*, if any."""
        for ws in self.sets:
            if pc in ws.members:
                return ws
        return None

    def as_pc_sets(self) -> List[Set[int]]:
        """Plain ``set`` view, largest first (deterministic)."""
        return [
            set(ws.members)
            for ws in sorted(
                self.sets, key=lambda w: (-w.size, min(w.members))
            )
        ]


def partition_working_sets(graph: ConflictGraph) -> WorkingSetPartition:
    """Partition the conflict graph into working sets via greedy clique cover.

    Every node lands in exactly one set; every set is a clique in *graph*.
    """
    order = sorted(
        graph.nodes(),
        key=lambda pc: (-graph.weighted_degree(pc), pc),
    )
    assigned: Set[int] = set()
    sets: List[WorkingSet] = []
    for seed in order:
        if seed in assigned:
            continue
        members = _grow_clique(graph, seed, assigned)
        assigned.update(members)
        weight = sum(graph.node_weight(pc) for pc in members)
        sets.append(
            WorkingSet(members=frozenset(members), execution_weight=weight)
        )
    return WorkingSetPartition(sets=sets)


def _grow_clique(
    graph: ConflictGraph, seed: int, assigned: Set[int]
) -> List[int]:
    members = [seed]
    member_set = {seed}
    # candidates: unassigned neighbours of the seed, with how strongly each
    # is connected to the current clique.
    candidate_weight: Dict[int, int] = {
        pc: w
        for pc, w in graph.neighbors(seed).items()
        if pc not in assigned
    }
    while candidate_weight:
        best = min(
            candidate_weight,
            key=lambda pc: (-candidate_weight[pc], pc),
        )
        members.append(best)
        member_set.add(best)
        best_neighbors = graph.neighbors(best)
        # keep only candidates adjacent to the new member too
        candidate_weight = {
            pc: candidate_weight[pc] + best_neighbors[pc]
            for pc in candidate_weight
            if pc != best and pc in best_neighbors
        }
    return members


def is_clique(graph: ConflictGraph, members: Sequence[int]) -> bool:
    """True if *members* are pairwise adjacent in *graph*."""
    pcs = list(members)
    for i, a in enumerate(pcs):
        for b in pcs[i + 1 :]:
            if not graph.has_edge(a, b):
                return False
    return True
