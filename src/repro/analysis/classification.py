"""Branch classification (Chang et al. [9], as used in paper §5.2).

Branches are classified by profiled taken rate: *highly biased taken*
(> 99% taken), *highly biased not-taken* (< 1% taken), or *mixed*.  Two
conflicting branches in the same highly-biased class have essentially
identical local histories, so their BHT contention is harmless — the
classified allocator ignores those conflict edges and parks each biased
class on one shared, reserved BHT entry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from ..profiling.profile import InterleaveProfile
from .conflict_graph import ConflictGraph


class BiasClass(enum.Enum):
    """Taken-rate classes."""

    TAKEN_BIASED = "taken"        # taken rate > taken_bound
    NOT_TAKEN_BIASED = "not-taken"  # taken rate < not_taken_bound
    MIXED = "mixed"


@dataclass(frozen=True)
class ClassificationBounds:
    """Bias thresholds; the paper uses 99% / 1%.

    Raises:
        ValueError: if bounds are not probabilities or overlap.
    """

    taken_bound: float = 0.99
    not_taken_bound: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 <= self.not_taken_bound < self.taken_bound <= 1.0:
            raise ValueError(
                "bounds must satisfy 0 <= not_taken < taken <= 1, got "
                f"{self.not_taken_bound} / {self.taken_bound}"
            )


def classify_branch(
    taken_rate: float, bounds: ClassificationBounds = ClassificationBounds()
) -> BiasClass:
    """Classify a single branch by its profiled taken rate."""
    if taken_rate > bounds.taken_bound:
        return BiasClass.TAKEN_BIASED
    if taken_rate < bounds.not_taken_bound:
        return BiasClass.NOT_TAKEN_BIASED
    return BiasClass.MIXED


def classify_profile(
    profile: InterleaveProfile,
    bounds: ClassificationBounds = ClassificationBounds(),
) -> Dict[int, BiasClass]:
    """Classify every static branch in the profile."""
    return {
        pc: classify_branch(stats.taken_rate, bounds)
        for pc, stats in profile.branches.items()
    }


def drop_same_class_biased_edges(
    graph: ConflictGraph, classes: Dict[int, BiasClass]
) -> ConflictGraph:
    """Remove conflict edges between two branches of the same biased class.

    This is the paper's §5.2 refinement: such conflicts "do not contain
    significant negative effects" because the colliding histories agree.
    Mixed-class branches keep all their edges.
    """

    def drop(a: int, b: int) -> bool:
        class_a = classes.get(a, BiasClass.MIXED)
        class_b = classes.get(b, BiasClass.MIXED)
        return (
            class_a is class_b
            and class_a is not BiasClass.MIXED
        )

    return graph.filtered_edges(drop)
