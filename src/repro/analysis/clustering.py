"""Clustered-misprediction analysis (the paper's §6 open question).

    "Are the clustered branch mispredictions found in recent work on
    dynamic prediction caused by changes in working set?"

This module gives the question an operational form:

1. :func:`detect_transitions` finds *working-set transitions* in a trace —
   event indices where the set of recently active working sets changes
   (computed from a sliding window over the branch stream and the trace's
   own working-set partition);
2. :func:`misprediction_clustering` runs a predictor over the trace and
   compares the misprediction rate within a window after each transition
   against the steady-state rate elsewhere.

A ratio above 1 says mispredictions cluster at working-set changes — the
affirmative answer the paper conjectured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from ..predictors.base import BranchPredictor
from ..trace.events import BranchTrace
from .working_sets import WorkingSetPartition


@dataclass(frozen=True)
class TransitionReport:
    """Where the active working sets changed.

    Attributes:
        transitions: event indices at which the active-set composition
            changed (excluding index 0).
        active_sets_trace: the number of simultaneously active working
            sets per probe point (diagnostic).
    """

    transitions: List[int]
    active_sets_trace: List[int]


def _set_index(partition: WorkingSetPartition) -> Dict[int, int]:
    lookup: Dict[int, int] = {}
    for set_id, ws in enumerate(partition.sets):
        for pc in ws.members:
            lookup[pc] = set_id
    return lookup


def detect_transitions(
    trace: BranchTrace,
    partition: WorkingSetPartition,
    window: int = 256,
    stride: int = 64,
) -> TransitionReport:
    """Find event indices where the active working sets change.

    The trace is probed every *stride* events; a probe's *active sets* are
    the working sets with at least one member branch in the trailing
    *window* events.  A transition is recorded at the first probe whose
    active-set composition differs from the previous probe's.

    Raises:
        ValueError: on non-positive window/stride.
    """
    if window <= 0 or stride <= 0:
        raise ValueError("window and stride must be positive")
    lookup = _set_index(partition)
    pcs = trace.pcs.tolist()
    transitions: List[int] = []
    active_counts: List[int] = []
    previous: Set[int] = set()
    for probe in range(0, len(pcs), stride):
        start = max(0, probe - window + 1)
        active = {
            lookup[pc]
            for pc in pcs[start : probe + 1]
            if pc in lookup
        }
        active_counts.append(len(active))
        if probe and active != previous:
            transitions.append(probe)
        previous = active
    return TransitionReport(
        transitions=transitions, active_sets_trace=active_counts
    )


@dataclass(frozen=True)
class ClusteringReport:
    """Misprediction density near transitions vs steady state.

    Attributes:
        transition_rate: misprediction rate within *radius* events after a
            working-set transition.
        steady_rate: misprediction rate everywhere else (after warmup).
        transition_events: events counted as near-transition.
        steady_events: events counted as steady-state.
    """

    transition_rate: float
    steady_rate: float
    transition_events: int
    steady_events: int

    @property
    def clustering_ratio(self) -> float:
        """transition_rate / steady_rate (inf if steady is perfect)."""
        if self.steady_rate == 0.0:
            return float("inf") if self.transition_rate > 0 else 1.0
        return self.transition_rate / self.steady_rate


def misprediction_clustering(
    predictor: BranchPredictor,
    trace: BranchTrace,
    partition: WorkingSetPartition,
    radius: int = 256,
    warmup: int = 1024,
    window: int = 256,
    stride: int = 64,
) -> ClusteringReport:
    """Measure whether mispredictions cluster at working-set transitions.

    Args:
        predictor: consumed statefully (reset it first when reusing).
        trace: the branch trace.
        partition: working sets of the same program (from the profile).
        radius: events after a transition counted as "near-transition".
        warmup: initial events excluded from both buckets.
        window/stride: forwarded to :func:`detect_transitions`.
    """
    report = detect_transitions(
        trace, partition, window=window, stride=stride
    )
    near: Set[int] = set()
    for transition in report.transitions:
        near.update(range(transition, transition + radius))

    access = predictor.access
    pcs = trace.pcs.tolist()
    targets = trace.targets.tolist()
    outcomes = trace.taken.tolist()
    transition_events = transition_wrong = 0
    steady_events = steady_wrong = 0
    for i in range(len(pcs)):
        taken = outcomes[i]
        wrong = access(pcs[i], taken, targets[i]) != taken
        if i < warmup:
            continue
        if i in near:
            transition_events += 1
            transition_wrong += wrong
        else:
            steady_events += 1
            steady_wrong += wrong
    return ClusteringReport(
        transition_rate=(
            transition_wrong / transition_events if transition_events else 0.0
        ),
        steady_rate=steady_wrong / steady_events if steady_events else 0.0,
        transition_events=transition_events,
        steady_events=steady_events,
    )
