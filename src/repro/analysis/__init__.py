"""Branch working set analysis (the paper's §4)."""

from .cliques import (
    CliqueLimitExceeded,
    MaximalCliqueStats,
    maximal_clique_stats,
    maximal_cliques,
)
from .clustering import (
    ClusteringReport,
    TransitionReport,
    detect_transitions,
    misprediction_clustering,
)
from .groups import (
    Grouping,
    expand_group_assignment,
    fold_profile,
    group_by_bias,
    group_by_history_pattern,
)
from .classification import (
    BiasClass,
    ClassificationBounds,
    classify_branch,
    classify_profile,
    drop_same_class_biased_edges,
)
from .conflict_graph import (
    DEFAULT_THRESHOLD,
    ConflictGraph,
    build_conflict_graph,
)
from .metrics import (
    WorkingSetMetrics,
    metrics_from_partition,
    working_set_metrics,
)
from .working_sets import (
    WorkingSet,
    WorkingSetPartition,
    is_clique,
    partition_working_sets,
)

__all__ = [
    "BiasClass",
    "ClassificationBounds",
    "CliqueLimitExceeded",
    "ClusteringReport",
    "ConflictGraph",
    "DEFAULT_THRESHOLD",
    "Grouping",
    "MaximalCliqueStats",
    "TransitionReport",
    "detect_transitions",
    "expand_group_assignment",
    "fold_profile",
    "group_by_bias",
    "group_by_history_pattern",
    "maximal_clique_stats",
    "maximal_cliques",
    "misprediction_clustering",
    "WorkingSet",
    "WorkingSetMetrics",
    "WorkingSetPartition",
    "build_conflict_graph",
    "classify_branch",
    "classify_profile",
    "drop_same_class_biased_edges",
    "is_clique",
    "metrics_from_partition",
    "partition_working_sets",
    "working_set_metrics",
]
