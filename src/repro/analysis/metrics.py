"""Working-set metrics: the Table 2 row for one benchmark."""

from __future__ import annotations

from dataclasses import dataclass

from ..profiling.profile import InterleaveProfile
from .conflict_graph import DEFAULT_THRESHOLD, build_conflict_graph
from .working_sets import WorkingSetPartition, partition_working_sets


@dataclass(frozen=True)
class WorkingSetMetrics:
    """One Table 2 row.

    Attributes:
        name: benchmark label.
        total_sets: total number of working sets.
        average_static_size: unweighted mean working-set size.
        average_dynamic_size: execution-weighted mean working-set size.
        largest_size: size of the largest set (not in the paper's table but
            the quantity that pressures the BHT).
        static_branches: static conditional branches analysed.
        threshold: edge-pruning threshold used.
    """

    name: str
    total_sets: int
    average_static_size: float
    average_dynamic_size: float
    largest_size: int
    static_branches: int
    threshold: int


def working_set_metrics(
    profile: InterleaveProfile,
    threshold: int = DEFAULT_THRESHOLD,
) -> WorkingSetMetrics:
    """Run steps 2–3 of the analysis and summarise (Table 2)."""
    graph = build_conflict_graph(profile, threshold=threshold)
    partition = partition_working_sets(graph)
    return metrics_from_partition(
        profile.name, partition, profile.static_branch_count, threshold
    )


def metrics_from_partition(
    name: str,
    partition: WorkingSetPartition,
    static_branches: int,
    threshold: int,
) -> WorkingSetMetrics:
    """Summarise an existing partition into a Table 2 row."""
    return WorkingSetMetrics(
        name=name,
        total_sets=partition.count,
        average_static_size=partition.average_static_size,
        average_dynamic_size=partition.average_dynamic_size,
        largest_size=partition.largest_size,
        static_branches=static_branches,
        threshold=threshold,
    )
