"""Working-set analysis over pre-classified branch *groups*.

The paper's future work (§6): "Branches can be pre-classified based on
intra or inter-correlations and similar history patterns, and the working
set analysis can be applied to these pre-classified branch groups."

This module lifts the whole pipeline from individual static branches to
groups: a grouping maps each branch PC to a group id, a group-level
interleave profile is derived by folding the branch-level pair counts
through the grouping (pairs internal to one group vanish — the group shares
one resource, so internal interleaving is not contention), and the usual
conflict graph / working set / allocation machinery runs unchanged on the
group ids.

Two groupings ship:

* :func:`group_by_bias` — the paper's own §5.2 classes (taken-biased /
  not-taken-biased / each mixed branch alone), which reproduces the
  classified allocator's behaviour through the generic mechanism;
* :func:`group_by_history_pattern` — branches whose dominant local history
  patterns match share a group (the "similar history patterns" suggestion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, ItemsView, List, Optional, Tuple

from ..profiling.profile import BranchStats, InterleaveProfile, pair_key
from ..trace.events import BranchTrace
from .classification import (
    BiasClass,
    ClassificationBounds,
    classify_profile,
)

GroupId = int


@dataclass(frozen=True)
class Grouping:
    """A mapping from static branch PCs to group ids.

    Attributes:
        assignment: branch PC -> group id.
        labels: optional human-readable label per group id.
    """

    assignment: Dict[int, GroupId]
    labels: Dict[GroupId, str]

    @property
    def group_count(self) -> int:
        return len(set(self.assignment.values()))

    def members(self, group: GroupId) -> List[int]:
        """Branch PCs in *group*, ascending."""
        return sorted(
            pc for pc, gid in self.assignment.items() if gid == group
        )

    def items(self) -> ItemsView[int, GroupId]:
        return self.assignment.items()


def group_by_bias(
    profile: InterleaveProfile,
    bounds: ClassificationBounds = ClassificationBounds(),
) -> Grouping:
    """Group highly biased branches together; mixed branches stay alone.

    Group 0 = taken-biased, group 1 = not-taken-biased, then one group per
    mixed branch — mirroring the classified allocator's two reserved
    entries.
    """
    classes = classify_profile(profile, bounds)
    assignment: Dict[int, GroupId] = {}
    labels: Dict[GroupId, str] = {0: "taken-biased", 1: "not-taken-biased"}
    next_group = 2
    for pc in sorted(classes):
        bias = classes[pc]
        if bias is BiasClass.TAKEN_BIASED:
            assignment[pc] = 0
        elif bias is BiasClass.NOT_TAKEN_BIASED:
            assignment[pc] = 1
        else:
            assignment[pc] = next_group
            labels[next_group] = f"branch-0x{pc:x}"
            next_group += 1
    return Grouping(assignment=assignment, labels=labels)


def group_by_history_pattern(
    trace: BranchTrace,
    pattern_bits: int = 4,
    tolerance: float = 0.05,
) -> Grouping:
    """Group branches whose outcome streams share a short periodic cycle.

    For each static branch, the smallest period ``p <= pattern_bits`` with
    at most *tolerance* of positions violating ``stream[i] == stream[i-p]``
    is detected; the branch joins the group of that cycle's *canonical
    rotation* (so phase-shifted copies of the same pattern group
    together).  Aperiodic branches stay in singleton groups.

    Raises:
        ValueError: on a non-positive width or tolerance outside [0, 1).
    """
    if pattern_bits <= 0:
        raise ValueError("pattern_bits must be positive")
    if not 0.0 <= tolerance < 1.0:
        raise ValueError("tolerance must be in [0, 1)")
    outcomes: Dict[int, List[bool]] = {}
    for pc, taken in zip(trace.pcs.tolist(), trace.taken.tolist()):
        outcomes.setdefault(pc, []).append(bool(taken))

    assignment: Dict[int, GroupId] = {}
    labels: Dict[GroupId, str] = {}
    pattern_groups: Dict[str, GroupId] = {}
    next_group = 0
    for pc in sorted(outcomes):
        cycle = _periodic_cycle(outcomes[pc], pattern_bits, tolerance)
        if cycle is None:
            assignment[pc] = next_group
            labels[next_group] = f"branch-0x{pc:x}"
            next_group += 1
            continue
        group = pattern_groups.get(cycle)
        if group is None:
            group = next_group
            pattern_groups[cycle] = group
            labels[group] = f"pattern-{cycle}"
            next_group += 1
        assignment[pc] = group
    return Grouping(assignment=assignment, labels=labels)


def _periodic_cycle(
    stream: List[bool], max_period: int, tolerance: float
) -> Optional[str]:
    """Canonical rotation of the stream's shortest cycle, if periodic."""
    if len(stream) < 4 * max_period:
        return None
    for period in range(1, max_period + 1):
        mismatches = sum(
            1
            for i in range(period, len(stream))
            if stream[i] != stream[i - period]
        )
        if mismatches <= tolerance * (len(stream) - period):
            # majority vote per residue class absorbs tolerated noise
            votes = [[0, 0] for _ in range(period)]
            for i, taken in enumerate(stream):
                votes[i % period][taken] += 1
            cycle = "".join(
                "T" if v[1] >= v[0] else "N" for v in votes
            )
            rotations = [
                cycle[i:] + cycle[:i] for i in range(len(cycle))
            ]
            return min(rotations)
    return None


def fold_profile(
    profile: InterleaveProfile, grouping: Grouping
) -> InterleaveProfile:
    """Fold a branch-level profile into a group-level profile.

    Group execution/taken counts are the sums over members; a group pair's
    interleave count is the sum of cross-group branch-pair counts.  Pairs
    internal to one group are dropped — members share one predictor
    resource, so their mutual interleaving is no longer contention (the
    same reasoning as §5.2's same-class conflict filtering).

    Branches absent from the grouping are passed through as singleton
    groups with fresh ids.
    """
    assignment = dict(grouping.assignment)
    next_group = max(assignment.values(), default=-1) + 1
    for pc in profile.branches:
        if pc not in assignment:
            assignment[pc] = next_group
            next_group += 1

    folded = InterleaveProfile(name=f"{profile.name}(grouped)")
    for pc, stats in profile.branches.items():
        gid = assignment[pc]
        acc = folded.branches.get(gid)
        if acc is None:
            folded.branches[gid] = BranchStats(
                stats.executions, stats.taken
            )
        else:
            acc.executions += stats.executions
            acc.taken += stats.taken
    for (a, b), count in profile.pairs.items():
        ga, gb = assignment[a], assignment[b]
        if ga == gb:
            continue
        key = pair_key(ga, gb)
        folded.pairs[key] = folded.pairs.get(key, 0) + count
    folded.instructions = profile.instructions
    return folded


def expand_group_assignment(
    group_assignment: Dict[GroupId, int], grouping: Grouping
) -> Dict[int, int]:
    """Expand a group -> BHT entry map back to branch PC -> entry.

    Used to drive :class:`~repro.predictors.indexing.StaticIndexMap` from a
    group-level allocation: all members of a group share its entry.
    """
    return {
        pc: group_assignment[gid]
        for pc, gid in grouping.assignment.items()
        if gid in group_assignment
    }
