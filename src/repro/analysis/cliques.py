"""Maximal-clique enumeration — an alternative working-set definition.

The paper (§4.1): "Note that many other definitions of a working set are
possible and undoubtedly some will prove better at categorizing branches,
but for the simplicity of the study, a complete subgraph definition is
used."  The default pipeline uses a greedy clique *partition*
(:mod:`repro.analysis.working_sets`); this module enumerates *maximal
cliques* (Bron–Kerbosch with pivoting and degeneracy ordering), under which
working sets may overlap — one reading of the paper's Table 2, whose
set-count x mean-size products exceed the programs' static populations.

Enumeration is exponential in the worst case, so a result cap aborts
pathological graphs explicitly rather than hanging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Set

from .conflict_graph import ConflictGraph


class CliqueLimitExceeded(RuntimeError):
    """Raised when the graph has more maximal cliques than the cap."""


@dataclass(frozen=True)
class MaximalCliqueStats:
    """Summary of a maximal-clique enumeration (overlapping Table 2 view)."""

    clique_count: int
    average_size: float
    largest_size: int
    membership_per_branch: float  # mean cliques containing a branch


def _degeneracy_order(graph: ConflictGraph) -> List[int]:
    """Peel minimum-degree vertices repeatedly (degeneracy ordering)."""
    degrees = {pc: graph.degree(pc) for pc in graph.nodes()}
    remaining: Set[int] = set(degrees)
    order: List[int] = []
    while remaining:
        node = min(remaining, key=lambda pc: (degrees[pc], pc))
        order.append(node)
        remaining.discard(node)
        for neighbor in graph.neighbors(node):
            if neighbor in remaining:
                degrees[neighbor] -= 1
    return order


def maximal_cliques(
    graph: ConflictGraph, limit: int = 100_000
) -> List[FrozenSet[int]]:
    """Enumerate all maximal cliques of *graph*.

    Uses Bron–Kerbosch with pivoting, seeded in degeneracy order (the
    standard output-sensitive arrangement for sparse graphs).

    Args:
        graph: the (pruned) conflict graph.
        limit: abort with :class:`CliqueLimitExceeded` beyond this many
            cliques.

    Returns:
        Maximal cliques, deterministically ordered (by sorted membership).
    """
    adjacency = {
        pc: set(graph.neighbors(pc)) for pc in graph.nodes()
    }
    cliques: List[FrozenSet[int]] = []

    def expand(r: Set[int], p: Set[int], x: Set[int]) -> None:
        if not p and not x:
            cliques.append(frozenset(r))
            if len(cliques) > limit:
                raise CliqueLimitExceeded(
                    f"more than {limit} maximal cliques"
                )
            return
        # pivot on the vertex covering the most of P
        pivot = max(p | x, key=lambda pc: (len(adjacency[pc] & p), -pc))
        for vertex in sorted(p - adjacency[pivot]):
            expand(
                r | {vertex},
                p & adjacency[vertex],
                x & adjacency[vertex],
            )
            p.discard(vertex)
            x.add(vertex)

    order = _degeneracy_order(graph)
    position = {pc: i for i, pc in enumerate(order)}
    for vertex in order:
        later = {
            nbr for nbr in adjacency[vertex]
            if position[nbr] > position[vertex]
        }
        earlier = {
            nbr for nbr in adjacency[vertex]
            if position[nbr] < position[vertex]
        }
        expand({vertex}, later, earlier)
    return sorted(cliques, key=lambda c: (sorted(c)))


def maximal_clique_stats(
    graph: ConflictGraph, limit: int = 100_000
) -> MaximalCliqueStats:
    """Table 2-style statistics under the overlapping-clique definition."""
    cliques = maximal_cliques(graph, limit=limit)
    if not cliques:
        return MaximalCliqueStats(0, 0.0, 0, 0.0)
    sizes = [len(c) for c in cliques]
    node_count = graph.node_count
    membership = sum(sizes) / node_count if node_count else 0.0
    return MaximalCliqueStats(
        clique_count=len(cliques),
        average_size=sum(sizes) / len(cliques),
        largest_size=max(sizes),
        membership_per_branch=membership,
    )
