"""McFarling hybrid: two components arbitrated by a selector table."""

from __future__ import annotations

from .base import BranchPredictor
from .counters import CounterTable
from .indexing import IndexFunction, PCModuloIndex


class HybridPredictor(BranchPredictor):
    """Combining predictor (McFarling [6]).

    A table of 2-bit selector counters (indexed by PC) chooses between two
    component predictors; the selector trains toward whichever component
    was correct when they disagree.
    """

    name = "hybrid"

    def __init__(
        self,
        first: BranchPredictor,
        second: BranchPredictor,
        selector_size: int = 4096,
        index_fn: "IndexFunction | None" = None,
    ) -> None:
        self.first = first
        self.second = second
        self.index_fn = (
            index_fn if index_fn is not None else PCModuloIndex(selector_size)
        )
        if self.index_fn.size != selector_size:
            raise ValueError("selector index size must match table size")
        # counter >= 2 selects the first component
        self.selector = CounterTable(selector_size, bits=2)

    def predict(self, pc: int, target: int = 0) -> bool:
        if self.selector.predict(self.index_fn.index(pc)):
            return self.first.predict(pc, target)
        return self.second.predict(pc, target)

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        p1 = self.first.predict(pc, target)
        p2 = self.second.predict(pc, target)
        if p1 != p2:
            # train selector toward the component that got it right
            self.selector.update(self.index_fn.index(pc), p1 == taken)
        self.first.update(pc, taken, target)
        self.second.update(pc, taken, target)

    def access(self, pc: int, taken: bool, target: int = 0) -> bool:
        index = self.index_fn.index(pc)
        use_first = self.selector.predict(index)
        p1 = self.first.access(pc, taken, target)
        p2 = self.second.access(pc, taken, target)
        if p1 != p2:
            self.selector.update(index, p1 == taken)
        return p1 if use_first else p2

    def reset(self) -> None:
        self.first.reset()
        self.second.reset()
        self.selector.reset()
