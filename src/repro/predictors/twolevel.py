"""The two-level adaptive predictor family (Yeh & Patt).

The paper's baseline and subject is **PAg**: Per-address first-level history
(a BHT of local history registers) feeding a single **g**lobal second-level
pattern history table of 2-bit counters.  The sibling organisations are
implemented for ablation studies:

* :class:`PAgPredictor` — BHT (finite or infinite) + one shared PHT;
* :class:`GAgPredictor` — one global history register + one PHT;
* :class:`PApPredictor` — BHT + one PHT *per BHT entry*;
* :class:`GAsPredictor` — global history + per-set PHTs selected by PC bits;
* :class:`GSharePredictor` — global history xor PC indexes one PHT
  (McFarling), in :mod:`repro.predictors.gshare`.

All take an :class:`~repro.predictors.indexing.IndexFunction` where a
first-level table exists, so branch allocation drops in unchanged.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from .base import BranchPredictor, Column
from .chunked import grouped_history_patterns
from .bht import BranchHistoryTable, InfiniteBHT
from .counters import CounterTable
from .indexing import IndexFunction, PCModuloIndex

FirstLevel = Union[BranchHistoryTable, InfiniteBHT]


class PAgPredictor(BranchPredictor):
    """Per-address history, global PHT — the paper's predictor.

    The default geometry matches §5.3: the PHT has ``2**history_bits``
    entries (4096 -> 12 history bits); the BHT size and index function are
    the experiment variables.
    """

    name = "PAg"

    def __init__(
        self,
        bht: FirstLevel,
        pht_bits: int = 2,
    ) -> None:
        self.bht = bht
        self.pht = CounterTable(1 << bht.history_bits, bits=pht_bits)

    @classmethod
    def conventional(
        cls, bht_size: int = 1024, history_bits: int = 12
    ) -> "PAgPredictor":
        """The baseline: PC-modulo indexed BHT (paper's conventional PAg)."""
        return cls(BranchHistoryTable(PCModuloIndex(bht_size), history_bits))

    @classmethod
    def allocated(
        cls, index_fn: IndexFunction, history_bits: int = 12
    ) -> "PAgPredictor":
        """A PAg whose BHT uses a branch-allocation index function."""
        return cls(BranchHistoryTable(index_fn, history_bits))

    def predict(self, pc: int, target: int = 0) -> bool:
        return self.pht.predict(self.bht.read(pc))

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        pattern = self.bht.read_and_update(pc, taken)
        self.pht.update(pattern, taken)

    def access(self, pc: int, taken: bool, target: int = 0) -> bool:
        pattern = self.bht.read_and_update(pc, taken)
        return self.pht.access(pattern, taken)

    def access_chunk(
        self,
        pcs: Column,
        taken: Column,
        targets: Optional[Column] = None,
    ) -> np.ndarray:
        """Vectorized chunk replay: both levels in columnar batches."""
        pcs = np.asarray(pcs)
        taken = np.asarray(taken, dtype=bool)
        patterns = self.bht.read_and_update_chunk(pcs, taken)
        return self.pht.access_chunk(patterns, taken)

    def reset(self) -> None:
        self.bht.reset()
        self.pht.reset()


class InterferenceFreePAg(PAgPredictor):
    """PAg with an unbounded, per-branch BHT (the paper's 2M-entry table).

    First-level aliasing never occurs; second-level (PHT) sharing remains,
    as in the paper's reference configuration.
    """

    name = "PAg-infinite"

    def __init__(self, history_bits: int = 12, pht_bits: int = 2) -> None:
        super().__init__(InfiniteBHT(history_bits), pht_bits=pht_bits)


class GAgPredictor(BranchPredictor):
    """Global history register, global PHT."""

    name = "GAg"

    def __init__(self, history_bits: int = 12, pht_bits: int = 2) -> None:
        if history_bits <= 0:
            raise ValueError("history_bits must be positive")
        self.history_bits = history_bits
        self._mask = (1 << history_bits) - 1
        self.history = 0
        self.pht = CounterTable(1 << history_bits, bits=pht_bits)

    def predict(self, pc: int, target: int = 0) -> bool:
        return self.pht.predict(self.history)

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        self.pht.update(self.history, taken)
        self.history = ((self.history << 1) | taken) & self._mask

    def access(self, pc: int, taken: bool, target: int = 0) -> bool:
        prediction = self.pht.access(self.history, taken)
        self.history = ((self.history << 1) | taken) & self._mask
        return prediction

    def access_chunk(
        self,
        pcs: Column,
        taken: Column,
        targets: Optional[Column] = None,
    ) -> np.ndarray:
        taken = np.asarray(taken, dtype=bool)
        patterns, self.history = _global_history_patterns(
            taken, self.history_bits, self.history
        )
        return self.pht.access_chunk(patterns, taken)

    def reset(self) -> None:
        self.history = 0
        self.pht.reset()


def _global_history_patterns(
    taken: np.ndarray, history_bits: int, history: int
) -> "tuple[np.ndarray, int]":
    """Per-event global history (before each event) and the carry-out.

    The degenerate single-group case of :func:`grouped_history_patterns`
    — the whole batch shares the one global register.
    """
    patterns, carry = grouped_history_patterns(
        np.zeros(len(taken), dtype=np.int64),
        taken,
        history_bits,
        np.array([history], dtype=np.int64),
    )
    return patterns, int(carry[0])


class PApPredictor(BranchPredictor):
    """Per-address history, per-address pattern tables.

    One PHT per BHT entry; the PHT bank is allocated lazily because a
    ``bht_size * 2**history_bits`` dense array is wasteful at the sizes the
    ablations sweep.
    """

    name = "PAp"

    def __init__(
        self,
        bht: BranchHistoryTable,
        pht_bits: int = 2,
    ) -> None:
        self.bht = bht
        self._pht_bits = pht_bits
        self._pht_size = 1 << bht.history_bits
        self.phts: Dict[int, CounterTable] = {}

    def _pht_for(self, pc: int) -> CounterTable:
        index = self.bht.index_fn.index(pc)
        pht = self.phts.get(index)
        if pht is None:
            pht = CounterTable(self._pht_size, bits=self._pht_bits)
            self.phts[index] = pht
        return pht

    def predict(self, pc: int, target: int = 0) -> bool:
        return self._pht_for(pc).predict(self.bht.read(pc))

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        pht = self._pht_for(pc)
        pattern = self.bht.read_and_update(pc, taken)
        pht.update(pattern, taken)

    def access(self, pc: int, taken: bool, target: int = 0) -> bool:
        pht = self._pht_for(pc)
        pattern = self.bht.read_and_update(pc, taken)
        return pht.access(pattern, taken)

    def reset(self) -> None:
        self.bht.reset()
        self.phts.clear()


class GAsPredictor(BranchPredictor):
    """Global history, set-associative PHTs selected by PC bits."""

    name = "GAs"

    def __init__(
        self,
        history_bits: int = 8,
        set_bits: int = 4,
        pht_bits: int = 2,
    ) -> None:
        if history_bits <= 0 or set_bits < 0:
            raise ValueError("bad geometry")
        self.history_bits = history_bits
        self.set_bits = set_bits
        self._hmask = (1 << history_bits) - 1
        self._smask = (1 << set_bits) - 1
        self.history = 0
        self.pht = CounterTable(1 << (history_bits + set_bits), bits=pht_bits)

    def _index(self, pc: int) -> int:
        return (((pc >> 2) & self._smask) << self.history_bits) | self.history

    def predict(self, pc: int, target: int = 0) -> bool:
        return self.pht.predict(self._index(pc))

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        self.pht.update(self._index(pc), taken)
        self.history = ((self.history << 1) | taken) & self._hmask

    def access(self, pc: int, taken: bool, target: int = 0) -> bool:
        prediction = self.pht.access(self._index(pc), taken)
        self.history = ((self.history << 1) | taken) & self._hmask
        return prediction

    def access_chunk(
        self,
        pcs: Column,
        taken: Column,
        targets: Optional[Column] = None,
    ) -> np.ndarray:
        pcs = np.asarray(pcs).astype(np.int64)
        taken = np.asarray(taken, dtype=bool)
        histories, self.history = _global_history_patterns(
            taken, self.history_bits, self.history
        )
        indices = (((pcs >> 2) & self._smask) << self.history_bits) | histories
        return self.pht.access_chunk(indices, taken)

    def reset(self) -> None:
        self.history = 0
        self.pht.reset()
