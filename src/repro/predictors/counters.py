"""Saturating up/down counters — the second-level state of every 2-level
predictor.

A table of n-bit saturating counters is stored as a plain list of ints;
a counter predicts taken when it is in the upper half of its range.  The
2-bit case (the paper's PHT entries) initialises to weakly-taken (2),
matching sim-bpred's default.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .chunked import saturating_counter_predict


class CounterTable:
    """A table of n-bit saturating counters."""

    __slots__ = ("bits", "max_value", "threshold", "table")

    def __init__(self, size: int, bits: int = 2, initial: int = -1) -> None:
        """Create *size* counters of *bits* bits.

        Args:
            size: number of counters (must be positive).
            bits: counter width (must be positive).
            initial: starting value; -1 means weakly-taken
                (``2**(bits-1)``).

        Raises:
            ValueError: on non-positive size/bits or out-of-range initial.
        """
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if bits <= 0:
            raise ValueError(f"bits must be positive, got {bits}")
        self.bits = bits
        self.max_value = (1 << bits) - 1
        self.threshold = 1 << (bits - 1)
        if initial == -1:
            initial = self.threshold
        if not 0 <= initial <= self.max_value:
            raise ValueError(f"initial {initial} out of range")
        self.table: List[int] = [initial] * size

    def __len__(self) -> int:
        return len(self.table)

    def predict(self, index: int) -> bool:
        """Direction of counter *index* (upper half = taken)."""
        return self.table[index] >= self.threshold

    def update(self, index: int, taken: bool) -> None:
        """Saturating increment on taken, decrement on not-taken."""
        value = self.table[index]
        if taken:
            if value < self.max_value:
                self.table[index] = value + 1
        elif value > 0:
            self.table[index] = value - 1

    def access(self, index: int, taken: bool) -> bool:
        """Predict then update counter *index* in one table visit."""
        value = self.table[index]
        prediction = value >= self.threshold
        if taken:
            if value < self.max_value:
                self.table[index] = value + 1
        elif value > 0:
            self.table[index] = value - 1
        return prediction

    def access_chunk(
        self, indices: np.ndarray, taken: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`access` over a batch; returns predictions."""
        return saturating_counter_predict(
            indices, taken, self.table, self.threshold, self.max_value
        )

    def reset(self, initial: int = -1) -> None:
        """Reset every counter (default: weakly-taken)."""
        if initial == -1:
            initial = self.threshold
        for i in range(len(self.table)):
            self.table[i] = initial
