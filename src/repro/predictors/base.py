"""Predictor interface.

All predictors implement :class:`BranchPredictor`: ``predict`` returns the
direction guess for a static branch, ``update`` trains on the resolved
outcome, and ``access`` fuses the two (the common fast path used by the
trace simulator).  Predictors are deterministic and see branches strictly in
program order, mirroring sim-bpred.
"""

from __future__ import annotations

import abc


class BranchPredictor(abc.ABC):
    """A dynamic (or static) conditional branch direction predictor."""

    name: str = "predictor"

    @abc.abstractmethod
    def predict(self, pc: int, target: int = 0) -> bool:
        """Predicted direction for the branch at *pc* (True = taken)."""

    @abc.abstractmethod
    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        """Train on the resolved outcome of the branch at *pc*."""

    def access(self, pc: int, taken: bool, target: int = 0) -> bool:
        """Predict then update; returns the prediction.

        Subclasses override this when predict/update share table lookups.
        """
        prediction = self.predict(pc, target)
        self.update(pc, taken, target)
        return prediction

    def reset(self) -> None:
        """Restore power-on state.  Default: no state."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
