"""Predictor interface.

All predictors implement :class:`BranchPredictor`: ``predict`` returns the
direction guess for a static branch, ``update`` trains on the resolved
outcome, and ``access`` fuses the two (the common fast path used by the
trace simulator).  Predictors are deterministic and see branches strictly in
program order, mirroring sim-bpred.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence, Union

import numpy as np

Column = Union[Sequence, np.ndarray]


class BranchPredictor(abc.ABC):
    """A dynamic (or static) conditional branch direction predictor."""

    name: str = "predictor"

    @abc.abstractmethod
    def predict(self, pc: int, target: int = 0) -> bool:
        """Predicted direction for the branch at *pc* (True = taken)."""

    @abc.abstractmethod
    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        """Train on the resolved outcome of the branch at *pc*."""

    def access(self, pc: int, taken: bool, target: int = 0) -> bool:
        """Predict then update; returns the prediction.

        Subclasses override this when predict/update share table lookups.
        """
        prediction = self.predict(pc, target)
        self.update(pc, taken, target)
        return prediction

    def access_chunk(
        self,
        pcs: Column,
        taken: Column,
        targets: Optional[Column] = None,
    ) -> np.ndarray:
        """Predict+update over a columnar batch; returns the predictions.

        Semantically equivalent to calling :meth:`access` once per event
        in order — the default implementation does exactly that, so every
        predictor rides the streaming pipeline unmodified.  Table-based
        predictors override this with a vectorized path over the numpy
        columns (the trace outcome is known, so future table state is
        computable without per-event Python dispatch).
        """
        pcs_l = pcs.tolist() if isinstance(pcs, np.ndarray) else pcs
        taken_l = taken.tolist() if isinstance(taken, np.ndarray) else taken
        access = self.access
        if targets is None:
            out = [access(pc, tk) for pc, tk in zip(pcs_l, taken_l)]
        else:
            targets_l = (
                targets.tolist()
                if isinstance(targets, np.ndarray)
                else targets
            )
            out = [
                access(pc, tk, tg)
                for pc, tk, tg in zip(pcs_l, taken_l, targets_l)
            ]
        return np.asarray(out, dtype=bool)

    def reset(self) -> None:
        """Restore power-on state.  Default: no state."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
