"""Static predictors: always-taken, BTFNT, heuristic, and profile-guided.

These anchor the low end of the accuracy comparisons and implement the
paper's note that, given an accommodating ISA, highly biased branches can be
"statically predicted reducing the requirements of a hardware predictor".
:class:`StaticHeuristicPredictor` is the strongest profile-free member:
per-branch directions from the Ball–Larus heuristic catalogue in
:mod:`repro.static_analysis.heuristics`, with BTFNT for branches the
program analysis never saw.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..profiling.profile import InterleaveProfile
from .base import BranchPredictor, Column


class AlwaysTakenPredictor(BranchPredictor):
    """Predict taken, always."""

    name = "always-taken"

    def predict(self, pc: int, target: int = 0) -> bool:
        return True

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        return None


class AlwaysNotTakenPredictor(BranchPredictor):
    """Predict not-taken, always."""

    name = "always-not-taken"

    def predict(self, pc: int, target: int = 0) -> bool:
        return False

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        return None


class BTFNTPredictor(BranchPredictor):
    """Backward taken, forward not taken — the classic static heuristic."""

    name = "btfnt"

    def predict(self, pc: int, target: int = 0) -> bool:
        return target < pc

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        return None


class StaticHeuristicPredictor(BranchPredictor):
    """Per-branch directions from the static Ball–Larus heuristics.

    No profile and no training: the direction map comes from
    :func:`repro.static_analysis.heuristics.predict_branches` over the
    program's CFG, and branches outside the map (which should not occur
    for the program the map was built from) fall back to BTFNT.
    """

    name = "static-heur"

    def __init__(self, directions: Dict[int, bool]) -> None:
        """
        Args:
            directions: branch PC -> predicted direction (True = taken).
        """
        self.directions = dict(directions)
        if self.directions:
            pcs = np.fromiter(
                sorted(self.directions), dtype=np.int64,
                count=len(self.directions),
            )
            dirs = np.fromiter(
                (self.directions[pc] for pc in pcs.tolist()), dtype=bool,
                count=len(pcs),
            )
        else:
            pcs = np.empty(0, dtype=np.int64)
            dirs = np.empty(0, dtype=bool)
        self._pcs = pcs
        self._dirs = dirs

    @classmethod
    def from_program(cls, program) -> "StaticHeuristicPredictor":
        """Build the direction map by analysing *program*'s CFG."""
        from ..static_analysis.cfg import build_cfg
        from ..static_analysis.heuristics import predict_branches

        predictions = predict_branches(build_cfg(program))
        return cls({pc: p.taken for pc, p in predictions.items()})

    def predict(self, pc: int, target: int = 0) -> bool:
        direction = self.directions.get(pc)
        if direction is None:
            return target < pc
        return direction

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        return None

    def access_chunk(
        self,
        pcs: Column,
        taken: Column,
        targets: Optional[Column] = None,
    ) -> np.ndarray:
        """Vectorized lookup: stateless, so the whole chunk is one
        searchsorted against the sorted direction table."""
        pcs_arr = np.asarray(pcs, dtype=np.int64)
        if targets is None:
            targets_arr = np.zeros(len(pcs_arr), dtype=np.int64)
        else:
            targets_arr = np.asarray(targets, dtype=np.int64)
        fallback = targets_arr < pcs_arr
        if not len(self._pcs):
            return fallback
        slots = np.searchsorted(self._pcs, pcs_arr)
        slots[slots == len(self._pcs)] = 0
        matched = self._pcs[slots] == pcs_arr
        return np.where(matched, self._dirs[slots], fallback)


class ProfileStaticPredictor(BranchPredictor):
    """Per-branch majority direction from a profile run.

    Branches absent from the profile fall back to BTFNT.
    """

    name = "profile-static"

    def __init__(self, profile: Optional[InterleaveProfile] = None,
                 directions: Optional[Dict[int, bool]] = None) -> None:
        """
        Args:
            profile: profile whose per-branch taken rates set directions.
            directions: explicit PC -> direction map (overrides profile).

        Raises:
            ValueError: if neither source is given.
        """
        if directions is not None:
            self.directions = dict(directions)
        elif profile is not None:
            self.directions = {
                pc: stats.taken_rate >= 0.5
                for pc, stats in profile.branches.items()
            }
        else:
            raise ValueError("need a profile or an explicit direction map")

    def predict(self, pc: int, target: int = 0) -> bool:
        direction = self.directions.get(pc)
        if direction is None:
            return target < pc
        return direction

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        return None
