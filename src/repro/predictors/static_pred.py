"""Static predictors: always-taken, BTFNT, and profile-guided.

These anchor the low end of the accuracy comparisons and implement the
paper's note that, given an accommodating ISA, highly biased branches can be
"statically predicted reducing the requirements of a hardware predictor".
"""

from __future__ import annotations

from typing import Dict, Optional

from ..profiling.profile import InterleaveProfile
from .base import BranchPredictor


class AlwaysTakenPredictor(BranchPredictor):
    """Predict taken, always."""

    name = "always-taken"

    def predict(self, pc: int, target: int = 0) -> bool:
        return True

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        return None


class AlwaysNotTakenPredictor(BranchPredictor):
    """Predict not-taken, always."""

    name = "always-not-taken"

    def predict(self, pc: int, target: int = 0) -> bool:
        return False

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        return None


class BTFNTPredictor(BranchPredictor):
    """Backward taken, forward not taken — the classic static heuristic."""

    name = "btfnt"

    def predict(self, pc: int, target: int = 0) -> bool:
        return target < pc

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        return None


class ProfileStaticPredictor(BranchPredictor):
    """Per-branch majority direction from a profile run.

    Branches absent from the profile fall back to BTFNT.
    """

    name = "profile-static"

    def __init__(self, profile: Optional[InterleaveProfile] = None,
                 directions: Optional[Dict[int, bool]] = None) -> None:
        """
        Args:
            profile: profile whose per-branch taken rates set directions.
            directions: explicit PC -> direction map (overrides profile).

        Raises:
            ValueError: if neither source is given.
        """
        if directions is not None:
            self.directions = dict(directions)
        elif profile is not None:
            self.directions = {
                pc: stats.taken_rate >= 0.5
                for pc, stats in profile.branches.items()
            }
        else:
            raise ValueError("need a profile or an explicit direction map")

    def predict(self, pc: int, target: int = 0) -> bool:
        direction = self.directions.get(pc)
        if direction is None:
            return target < pc
        return direction

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        return None
