"""Trace-driven predictor simulation (the sim-bpred analog).

:func:`simulate_predictor` replays a recorded :class:`~repro.trace.events.
BranchTrace` through a predictor and reports aggregate plus per-branch
misprediction statistics — the quantities behind the paper's Figures 3/4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..trace.events import BranchTrace
from .base import BranchPredictor


@dataclass
class PredictionStats:
    """Outcome of one predictor/trace run.

    Attributes:
        predictor: predictor label.
        trace: trace label.
        branches: dynamic conditional branches simulated.
        mispredictions: total mispredicted branches.
        per_branch: static PC -> (executions, mispredictions).
    """

    predictor: str
    trace: str
    branches: int = 0
    mispredictions: int = 0
    per_branch: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def misprediction_rate(self) -> float:
        """Fraction of dynamic branches mispredicted."""
        if self.branches == 0:
            return 0.0
        return self.mispredictions / self.branches

    @property
    def accuracy(self) -> float:
        """Prediction accuracy (1 - misprediction rate)."""
        return 1.0 - self.misprediction_rate

    def misprediction_rate_of(self, pc: int) -> float:
        """Per-static-branch misprediction rate (0.0 if unseen)."""
        entry = self.per_branch.get(pc)
        if not entry or entry[0] == 0:
            return 0.0
        return entry[1] / entry[0]

    def worst_branches(self, limit: int = 10) -> List[int]:
        """PCs with the most mispredictions, descending."""
        ranked = sorted(
            self.per_branch.items(), key=lambda kv: (-kv[1][1], kv[0])
        )
        return [pc for pc, _ in ranked[:limit]]


def simulate_predictor(
    predictor: BranchPredictor,
    trace: BranchTrace,
    track_per_branch: bool = True,
    warmup: int = 0,
    chunked: bool = True,
) -> PredictionStats:
    """Replay *trace* through *predictor*.

    Args:
        predictor: the predictor (consumed statefully; reset it first if
            reusing).
        trace: the branch trace.
        track_per_branch: disable to save memory/time on huge traces.
        warmup: events at the head of the trace that train the predictor but
            are excluded from the statistics.
        chunked: replay through the streaming pipeline's columnar chunks
            (default), riding the predictor's vectorized
            ``access_chunk`` fast path.  ``False`` forces the classic
            per-event loop — the reference implementation the
            equivalence tests compare against.

    Returns:
        The accumulated :class:`PredictionStats`.

    Raises:
        ValueError: if warmup is negative.
    """
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    if chunked:
        # late import: the pipeline package sits above the predictors
        from ..pipeline.bus import BranchEventBus
        from ..pipeline.consumers import PredictorConsumer

        consumer = PredictorConsumer(
            predictor,
            label=trace.name,
            track_per_branch=track_per_branch,
            warmup=warmup,
        )
        BranchEventBus.replay(trace, [consumer])
        return consumer.result
    stats = PredictionStats(predictor=predictor.name, trace=trace.name)
    per_branch = stats.per_branch
    access = predictor.access
    pcs = trace.pcs.tolist()
    targets = trace.targets.tolist()
    outcomes = trace.taken.tolist()
    branches = 0
    mispredictions = 0
    for i in range(len(pcs)):
        pc = pcs[i]
        taken = outcomes[i]
        prediction = access(pc, taken, targets[i])
        if i < warmup:
            continue
        branches += 1
        wrong = prediction != taken
        if wrong:
            mispredictions += 1
        if track_per_branch:
            entry = per_branch.get(pc)
            if entry is None:
                per_branch[pc] = [1, 1 if wrong else 0]
            else:
                entry[0] += 1
                if wrong:
                    entry[1] += 1
    stats.branches = branches
    stats.mispredictions = mispredictions
    return stats


def compare_predictors(
    predictors: List[BranchPredictor],
    trace: BranchTrace,
    warmup: int = 0,
) -> Dict[str, PredictionStats]:
    """Run several predictors over the same trace; keyed by predictor name.

    The whole bank rides one chunked pass over the trace (each chunk is
    sliced once and fanned out to every predictor) instead of replaying
    the trace once per predictor.

    Raises:
        ValueError: if two predictors share a name (results would collide).
    """
    from ..pipeline.consumers import replay_bank

    return replay_bank(trace, predictors, warmup=warmup)
