"""Bias-filtering predictor (Chang, Evers & Patt, PACT '96 — related work
[15] in the paper).

Highly biased branches pollute shared pattern tables without needing them:
their outcome is a constant.  The filter predicts profiled-biased branches
statically and keeps them from updating the dynamic component, so the
PHT's capacity is spent entirely on the hard, mixed branches — the
hardware-only counterpart of the paper's classified branch allocation
(which solves the same interference problem in the *first* level table).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.classification import ClassificationBounds
from ..profiling.profile import InterleaveProfile
from .base import BranchPredictor


class BiasFilteredPredictor(BranchPredictor):
    """Static prediction for biased branches, a backing predictor for the
    rest.

    Args:
        backing: the dynamic predictor handling mixed branches.
        profile: profile run supplying per-branch taken rates.
        bounds: bias thresholds (paper/related work use 99%/1%).
        min_executions: branches with fewer profiled executions are never
            filtered (their rate estimate is unreliable).

    Raises:
        ValueError: if min_executions is negative.
    """

    name = "bias-filtered"

    def __init__(
        self,
        backing: BranchPredictor,
        profile: InterleaveProfile,
        bounds: ClassificationBounds = ClassificationBounds(),
        min_executions: int = 16,
    ) -> None:
        if min_executions < 0:
            raise ValueError("min_executions must be non-negative")
        self.backing = backing
        self.static_direction: Dict[int, bool] = {}
        for pc, stats in profile.branches.items():
            if stats.executions < min_executions:
                continue
            if stats.taken_rate > bounds.taken_bound:
                self.static_direction[pc] = True
            elif stats.taken_rate < bounds.not_taken_bound:
                self.static_direction[pc] = False

    @property
    def filtered_count(self) -> int:
        """Number of statically predicted branches."""
        return len(self.static_direction)

    def _static(self, pc: int) -> Optional[bool]:
        return self.static_direction.get(pc)

    def predict(self, pc: int, target: int = 0) -> bool:
        direction = self._static(pc)
        if direction is not None:
            return direction
        return self.backing.predict(pc, target)

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        if self._static(pc) is None:
            self.backing.update(pc, taken, target)

    def access(self, pc: int, taken: bool, target: int = 0) -> bool:
        direction = self._static(pc)
        if direction is not None:
            return direction
        return self.backing.access(pc, taken, target)

    def reset(self) -> None:
        self.backing.reset()
