"""BHT index functions — the quantity the paper's technique changes.

A conventional 2-level predictor indexes its first-level table by hashing
the low-order PC bits (:class:`PCModuloIndex`); collisions between hot
branches are exactly the interference the paper attacks.  Branch allocation
replaces that hash with a compiler-produced :class:`StaticIndexMap`.
:class:`XorFoldIndex` is included as a stronger hash baseline for ablations.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

import numpy as np

from ..isa.program import INSTRUCTION_SIZE


class IndexFunction(abc.ABC):
    """Maps a static branch PC to a first-level table index."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"table size must be positive, got {size}")
        self.size = size

    @abc.abstractmethod
    def index(self, pc: int) -> int:
        """Table index for the branch at *pc* (in ``range(size)``)."""

    def index_array(self, pcs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`index` over an event column.

        The mapping depends only on the PC, so it is evaluated once per
        *distinct* PC and broadcast back — exact for every subclass
        (including :class:`StaticIndexMap`'s dictionary lookups) without
        per-event Python calls.
        """
        unique_pcs, inverse = np.unique(pcs, return_inverse=True)
        index = self.index
        mapped = np.fromiter(
            (index(pc) for pc in unique_pcs.tolist()),
            dtype=np.int64,
            count=len(unique_pcs),
        )
        return mapped[inverse]

    def __call__(self, pc: int) -> int:
        return self.index(pc)


class PCModuloIndex(IndexFunction):
    """Conventional indexing: low-order instruction-address bits.

    The word-offset bits (log2 of the instruction size) are discarded first,
    as in real designs, so consecutive instructions map to consecutive
    entries.
    """

    def __init__(self, size: int, shift: int = INSTRUCTION_SIZE.bit_length() - 1):
        super().__init__(size)
        self.shift = shift

    def index(self, pc: int) -> int:
        return (pc >> self.shift) % self.size


class XorFoldIndex(IndexFunction):
    """Hash baseline: xor-fold all PC bits into the index width."""

    def __init__(self, size: int, shift: int = 2):
        super().__init__(size)
        if size & (size - 1):
            raise ValueError("XorFoldIndex requires a power-of-two size")
        self.shift = shift
        self._bits = size.bit_length() - 1

    def index(self, pc: int) -> int:
        value = pc >> self.shift
        folded = 0
        mask = self.size - 1
        while value:
            folded ^= value & mask
            value >>= self._bits
        return folded


class StaticIndexMap(IndexFunction):
    """Compiler-assigned (branch allocation) indexing.

    The allocator produces an explicit PC -> entry mapping; branches outside
    the mapping (cold branches below the profiling cutoff, or code not
    exercised by the profile run) fall back to conventional PC-modulo
    indexing, mirroring the paper's note that unannotated branches (e.g.
    library code without the ISA extension) are not affected by allocation.
    """

    def __init__(
        self,
        size: int,
        assignment: Dict[int, int],
        fallback: Optional[IndexFunction] = None,
    ) -> None:
        super().__init__(size)
        for pc, entry in assignment.items():
            if not 0 <= entry < size:
                raise ValueError(
                    f"assignment for pc 0x{pc:x} out of range: {entry}"
                )
        self.assignment = dict(assignment)
        self.fallback = fallback if fallback is not None else PCModuloIndex(size)
        if self.fallback.size != size:
            raise ValueError("fallback index size must match table size")

    def index(self, pc: int) -> int:
        entry = self.assignment.get(pc)
        if entry is not None:
            return entry
        return self.fallback.index(pc)

    @property
    def mapped_count(self) -> int:
        """Number of statically assigned branches."""
        return len(self.assignment)
