"""Agree predictor (Sprangle et al., ISCA '97 — the paper's related work).

Each branch carries a *bias bit* (here: its profiled majority direction, or
its first observed outcome when no profile is supplied).  PHT counters learn
whether the branch **agrees** with its bias rather than its raw direction,
converting destructive PHT interference between opposite-direction branches
into neutral interference — the hardware counterpart of the paper's
compiler-driven conflict avoidance, included for comparison benches.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..profiling.profile import InterleaveProfile
from .base import BranchPredictor
from .counters import CounterTable


class AgreePredictor(BranchPredictor):
    """gshare-indexed PHT of agree/disagree counters plus bias bits."""

    name = "agree"

    def __init__(
        self,
        history_bits: int = 12,
        profile: Optional[InterleaveProfile] = None,
    ) -> None:
        if history_bits <= 0:
            raise ValueError("history_bits must be positive")
        self._mask = (1 << history_bits) - 1
        self.history = 0
        # counters predict "agrees with bias"; initialise strongly-agree
        self.pht = CounterTable(1 << history_bits, bits=2, initial=3)
        self.bias: Dict[int, bool] = {}
        if profile is not None:
            self.bias = {
                pc: stats.taken_rate >= 0.5
                for pc, stats in profile.branches.items()
            }
        self._from_profile = profile is not None

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self.history) & self._mask

    def _bias_of(self, pc: int, taken: bool) -> bool:
        bias = self.bias.get(pc)
        if bias is None:
            # first-time policy: the first outcome becomes the bias bit
            self.bias[pc] = taken
            return taken
        return bias

    def predict(self, pc: int, target: int = 0) -> bool:
        bias = self.bias.get(pc, True)
        agree = self.pht.predict(self._index(pc))
        return bias if agree else not bias

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        bias = self._bias_of(pc, taken)
        self.pht.update(self._index(pc), taken == bias)
        self.history = ((self.history << 1) | taken) & self._mask

    def access(self, pc: int, taken: bool, target: int = 0) -> bool:
        index = self._index(pc)
        bias = self._bias_of(pc, taken)
        agree = self.pht.access(index, taken == bias)
        self.history = ((self.history << 1) | taken) & self._mask
        return bias if agree else not bias

    def reset(self) -> None:
        self.history = 0
        self.pht.reset(3)
        if not self._from_profile:
            self.bias.clear()
