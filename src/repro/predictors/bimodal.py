"""Bimodal predictor (Smith): one saturating counter per PC hash."""

from __future__ import annotations

from .base import BranchPredictor
from .counters import CounterTable
from .indexing import IndexFunction, PCModuloIndex


class BimodalPredictor(BranchPredictor):
    """A single table of 2-bit counters indexed by PC."""

    name = "bimodal"

    def __init__(self, size: int = 2048, bits: int = 2,
                 index_fn: "IndexFunction | None" = None) -> None:
        self.index_fn = index_fn if index_fn is not None else PCModuloIndex(size)
        if self.index_fn.size != size:
            raise ValueError("index function size must match table size")
        self.counters = CounterTable(size, bits=bits)

    def predict(self, pc: int, target: int = 0) -> bool:
        return self.counters.predict(self.index_fn.index(pc))

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        self.counters.update(self.index_fn.index(pc), taken)

    def access(self, pc: int, taken: bool, target: int = 0) -> bool:
        return self.counters.access(self.index_fn.index(pc), taken)

    def reset(self) -> None:
        self.counters.reset()
