"""gshare (McFarling): global history xor PC indexes one counter table."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import BranchPredictor, Column
from .counters import CounterTable
from .twolevel import _global_history_patterns


class GSharePredictor(BranchPredictor):
    """Global-history/PC xor-indexed PHT."""

    name = "gshare"

    def __init__(self, history_bits: int = 12, pht_bits: int = 2) -> None:
        if history_bits <= 0:
            raise ValueError("history_bits must be positive")
        self.history_bits = history_bits
        self._mask = (1 << history_bits) - 1
        self.history = 0
        self.pht = CounterTable(1 << history_bits, bits=pht_bits)

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self.history) & self._mask

    def predict(self, pc: int, target: int = 0) -> bool:
        return self.pht.predict(self._index(pc))

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        self.pht.update(self._index(pc), taken)
        self.history = ((self.history << 1) | taken) & self._mask

    def access(self, pc: int, taken: bool, target: int = 0) -> bool:
        prediction = self.pht.access(self._index(pc), taken)
        self.history = ((self.history << 1) | taken) & self._mask
        return prediction

    def access_chunk(
        self,
        pcs: Column,
        taken: Column,
        targets: Optional[Column] = None,
    ) -> np.ndarray:
        pcs = np.asarray(pcs).astype(np.int64)
        taken = np.asarray(taken, dtype=bool)
        histories, self.history = _global_history_patterns(
            taken, self.history_bits, self.history
        )
        indices = ((pcs >> 2) ^ histories) & self._mask
        return self.pht.access_chunk(indices, taken)

    def reset(self) -> None:
        self.history = 0
        self.pht.reset()
