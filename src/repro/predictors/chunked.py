"""Vectorized chunk-replay kernels for table-based predictors.

Trace-driven simulation knows every branch outcome up front, so future
predictor table state is computable without per-event Python dispatch:

* :func:`grouped_history_patterns` reconstructs each event's first-level
  history register *before* the event.  Events are grouped by table
  entry; within a group the pattern at in-group position ``t`` is the
  previous ``t`` outcomes (vectorized as ``k`` shifted-OR passes over
  the sorted event array) topped up with the entry's carried-in register
  shifted past them.
* :func:`saturating_counter_predict` replays a batch through a table of
  n-bit saturating counters.  Events are sorted by counter index and cut
  into runs of identical (index, outcome); within a run the counter
  moves monotonically, so the value before the ``t``-th event is
  ``clip(c0 ± t)`` and every prediction falls out of one vectorized
  comparison.  Only the (much shorter) run list is walked in Python to
  chain counter state through runs.

Both kernels are exact: they produce bit-identical results to calling
``read_and_update``/``access`` once per event, which the pipeline
equivalence property tests assert.
"""

from __future__ import annotations

from typing import MutableSequence, Tuple

import numpy as np


def grouped_history_patterns(
    group_ids: np.ndarray,
    taken: np.ndarray,
    history_bits: int,
    carry_in: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-event k-bit history patterns, grouped by table entry.

    Args:
        group_ids: dense group id (``0..G-1``) per event, program order.
        taken: outcome per event.
        history_bits: history register width ``k``.
        carry_in: ``int64[G]`` register value per group entering the batch.

    Returns:
        ``(patterns, carry_out)``: the register value *before* each event
        (program order), and the ``int64[G]`` register value per group
        after the batch.
    """
    n = len(group_ids)
    carry_out = carry_in.copy()
    if n == 0:
        return np.zeros(0, dtype=np.int64), carry_out
    k = history_bits
    mask = (1 << k) - 1
    order = np.argsort(group_ids, kind="stable")
    sorted_gids = group_ids[order]
    outcomes = taken[order].astype(np.int64)
    idx = np.arange(n)
    starts = np.empty(n, dtype=bool)
    starts[0] = True
    starts[1:] = sorted_gids[1:] != sorted_gids[:-1]
    # in-group position of each event
    tpos = idx - np.maximum.accumulate(np.where(starts, idx, 0))
    patterns = np.zeros(n, dtype=np.int64)
    # bit j-1 of the pattern is the outcome j events back in the group
    for j in range(1, k + 1):
        if j >= n:
            break
        contribution = outcomes[:-j] << (j - 1)
        patterns[j:] += np.where(tpos[j:] >= j, contribution, 0)
    # carried-in register fills the bits above the in-batch outcomes;
    # the shift is capped at k so (carry << k) & mask vanishes exactly
    # when the group already has k in-batch outcomes
    carry_per_event = carry_in[sorted_gids]
    patterns += (carry_per_event << np.minimum(tpos, k)) & mask
    patterns &= mask
    ends = np.empty(n, dtype=bool)
    ends[-1] = True
    ends[:-1] = sorted_gids[1:] != sorted_gids[:-1]
    carry_out[sorted_gids[ends]] = (
        (patterns[ends] << 1) | outcomes[ends]
    ) & mask
    unsorted = np.empty(n, dtype=np.int64)
    unsorted[order] = patterns
    return unsorted, carry_out


def saturating_counter_predict(
    indices: np.ndarray,
    taken: np.ndarray,
    table: MutableSequence[int],
    threshold: int,
    max_value: int,
) -> np.ndarray:
    """Batch predict+update over a saturating counter table.

    *table* is updated in place; returns the per-event predictions in
    program order, bit-identical to ``CounterTable.access`` per event.
    """
    n = len(indices)
    if n == 0:
        return np.zeros(0, dtype=bool)
    order = np.argsort(indices, kind="stable")
    sorted_idx = indices[order]
    outcomes = taken[order]
    positions = np.arange(n)
    run_breaks = np.empty(n, dtype=bool)
    run_breaks[0] = True
    run_breaks[1:] = (sorted_idx[1:] != sorted_idx[:-1]) | (
        outcomes[1:] != outcomes[:-1]
    )
    run_start = np.nonzero(run_breaks)[0]
    run_id = np.cumsum(run_breaks) - 1
    tpos = positions - run_start[run_id]
    run_index = sorted_idx[run_start].tolist()
    run_outcome = outcomes[run_start].tolist()
    run_length = np.diff(np.append(run_start, n)).tolist()
    # chain counter state through the run list (runs of one counter are
    # consecutive after the stable sort); within a run the counter moves
    # monotonically so only its starting value is needed per event
    start_counters = [0] * len(run_index)
    current = -1
    value = 0
    for r, counter_index in enumerate(run_index):
        if counter_index != current:
            if current >= 0:
                table[current] = value
            value = table[counter_index]
            current = counter_index
        start_counters[r] = value
        if run_outcome[r]:
            value += run_length[r]
            if value > max_value:
                value = max_value
        else:
            value -= run_length[r]
            if value < 0:
                value = 0
    if current >= 0:
        table[current] = value
    counter_before = np.asarray(start_counters, dtype=np.int64)[run_id]
    # value before event t of a taken-run is min(max, c0+t): >= threshold
    # iff c0+t is (threshold <= max); dually for not-taken runs
    predictions = np.where(
        outcomes,
        counter_before + tpos >= threshold,
        counter_before - tpos >= threshold,
    )
    unsorted = np.empty(n, dtype=bool)
    unsorted[order] = predictions
    return unsorted


__all__ = ["grouped_history_patterns", "saturating_counter_predict"]
