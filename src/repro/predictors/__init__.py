"""Branch predictor library (the sim-bpred analog plus ablation family)."""

from .agree import AgreePredictor
from .base import BranchPredictor
from .bht import BranchHistoryTable, InfiniteBHT
from .bimodal import BimodalPredictor
from .counters import CounterTable
from .filtered import BiasFilteredPredictor
from .gshare import GSharePredictor
from .hybrid import HybridPredictor
from .indexing import (
    IndexFunction,
    PCModuloIndex,
    StaticIndexMap,
    XorFoldIndex,
)
from .simulator import PredictionStats, compare_predictors, simulate_predictor
from .static_pred import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    BTFNTPredictor,
    ProfileStaticPredictor,
)
from .twolevel import (
    GAgPredictor,
    GAsPredictor,
    InterferenceFreePAg,
    PAgPredictor,
    PApPredictor,
)

__all__ = [
    "AgreePredictor",
    "BiasFilteredPredictor",
    "AlwaysNotTakenPredictor",
    "AlwaysTakenPredictor",
    "BTFNTPredictor",
    "BimodalPredictor",
    "BranchHistoryTable",
    "BranchPredictor",
    "CounterTable",
    "GAgPredictor",
    "GAsPredictor",
    "GSharePredictor",
    "HybridPredictor",
    "IndexFunction",
    "InfiniteBHT",
    "InterferenceFreePAg",
    "PAgPredictor",
    "PApPredictor",
    "PCModuloIndex",
    "PredictionStats",
    "ProfileStaticPredictor",
    "StaticIndexMap",
    "XorFoldIndex",
    "compare_predictors",
    "simulate_predictor",
]
