"""First-level branch history tables.

A BHT entry is a k-bit shift register of recent outcomes for the branches
that map to it.  :class:`BranchHistoryTable` is the finite, index-function-
addressed table the paper studies; :class:`InfiniteBHT` keys histories by
exact PC and never aliases — the "interference free ... 2 million-entry"
configuration of §5.3.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .chunked import grouped_history_patterns
from .indexing import IndexFunction


class BranchHistoryTable:
    """Finite table of k-bit local history registers."""

    __slots__ = ("history_bits", "_mask", "index_fn", "table")

    def __init__(self, index_fn: IndexFunction, history_bits: int) -> None:
        """
        Args:
            index_fn: PC -> entry mapping (conventional or allocated).
            history_bits: history register width; the PHT this feeds must
                have ``2**history_bits`` entries.

        Raises:
            ValueError: on non-positive history width.
        """
        if history_bits <= 0:
            raise ValueError(f"history_bits must be positive: {history_bits}")
        self.history_bits = history_bits
        self._mask = (1 << history_bits) - 1
        self.index_fn = index_fn
        self.table: List[int] = [0] * index_fn.size

    @property
    def size(self) -> int:
        return len(self.table)

    def read(self, pc: int) -> int:
        """Current history pattern for the branch at *pc*."""
        return self.table[self.index_fn.index(pc)]

    def update(self, pc: int, taken: bool) -> None:
        """Shift the branch's outcome into its history register."""
        index = self.index_fn.index(pc)
        self.table[index] = ((self.table[index] << 1) | taken) & self._mask

    def read_and_update(self, pc: int, taken: bool) -> int:
        """Read the pattern then shift in the outcome (one index lookup)."""
        index = self.index_fn.index(pc)
        pattern = self.table[index]
        self.table[index] = ((pattern << 1) | taken) & self._mask
        return pattern

    def read_and_update_chunk(
        self, pcs: np.ndarray, taken: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`read_and_update` over an event batch.

        Returns the per-event patterns (register value *before* each
        event) and advances the table, bit-identical to the scalar path —
        including aliasing, since events are grouped by table entry, not
        by PC.
        """
        entry_ids = self.index_fn.index_array(pcs)
        unique_entries, group_ids = np.unique(entry_ids, return_inverse=True)
        entries = unique_entries.tolist()
        table = self.table
        carry_in = np.fromiter(
            (table[entry] for entry in entries),
            dtype=np.int64,
            count=len(entries),
        )
        patterns, carry_out = grouped_history_patterns(
            group_ids, taken, self.history_bits, carry_in
        )
        for entry, register in zip(entries, carry_out.tolist()):
            table[entry] = register
        return patterns

    def reset(self) -> None:
        for i in range(len(self.table)):
            self.table[i] = 0


class InfiniteBHT:
    """Aliasing-free history table: one register per static branch."""

    __slots__ = ("history_bits", "_mask", "table")

    def __init__(self, history_bits: int) -> None:
        if history_bits <= 0:
            raise ValueError(f"history_bits must be positive: {history_bits}")
        self.history_bits = history_bits
        self._mask = (1 << history_bits) - 1
        self.table: Dict[int, int] = {}

    @property
    def size(self) -> int:
        """Number of distinct branches seen so far."""
        return len(self.table)

    def read(self, pc: int) -> int:
        return self.table.get(pc, 0)

    def update(self, pc: int, taken: bool) -> None:
        self.table[pc] = ((self.table.get(pc, 0) << 1) | taken) & self._mask

    def read_and_update(self, pc: int, taken: bool) -> int:
        pattern = self.table.get(pc, 0)
        self.table[pc] = ((pattern << 1) | taken) & self._mask
        return pattern

    def read_and_update_chunk(
        self, pcs: np.ndarray, taken: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`read_and_update`; groups are exact PCs."""
        unique_pcs, group_ids = np.unique(pcs, return_inverse=True)
        keys = unique_pcs.tolist()
        get = self.table.get
        carry_in = np.fromiter(
            (get(pc, 0) for pc in keys), dtype=np.int64, count=len(keys)
        )
        patterns, carry_out = grouped_history_patterns(
            group_ids, taken, self.history_bits, carry_in
        )
        self.table.update(zip(keys, carry_out.tolist()))
        return patterns

    def reset(self) -> None:
        self.table.clear()
