"""Versioned machine-readable output schema for the CLI.

Every ``python -m repro`` subcommand that supports ``--json`` emits one
envelope::

    {
      "schema_version": 1,
      "command": "experiment",
      "params": {...},     # the parsed arguments that shaped the run
      "results": {...}     # command-specific payload
    }

``schema_version`` is bumped on any backwards-incompatible change to the
envelope or to a command's ``results`` payload, so scripts can pin what
they parse.  Replaces the ad-hoc prints as the only stable programmatic
surface of the CLI.

Version history:

* **1** — initial envelope (``run``/``profile``/``allocate``/
  ``experiment``).
* **2** — fault tolerance: ``experiment`` results gain a ``failures``
  array (one ``{benchmark, error, code, message, ...}`` object per
  benchmark that exhausted its retries) and the embedded ``engine``
  stats gain ``failed``/``retried``/``timeouts``/``quarantined``
  counters; the new ``faults`` command emits the same envelope shape.
* **3** — streaming pipeline observability: the embedded ``engine``
  stats gain ``fused_runs``/``replayed_runs`` counters and a
  ``pipeline`` object (``events``, ``delivered``, ``chunk_flushes``,
  ``truncated``, and per-consumer ``consumers`` entries with
  ``chunks``/``events``/``seconds``/``events_per_second``); the new
  ``--version`` flag reports ``{"version": ..., "schema_version": ...}``.
* **4** — checkpoint/resume: the embedded ``engine`` stats gain
  ``checkpoints_written``/``resumed_from_checkpoint`` (simulations that
  restored a mid-run checkpoint instead of cold-starting),
  ``journal_skips`` (benchmarks satisfied from the run journal by
  ``experiment --resume``) and ``quarantine_pruned`` (quarantine files
  age-pruned to keep the directory bounded) counters; ``experiment``
  params gain ``resume``/``checkpoint_every``.
* **5** — static verification: ``lint`` gains ``--json`` and emits the
  envelope (``results`` = ``{reports: [{name, ok, clean, errors,
  warnings, diagnostics: [{severity, code, message, address}]}],
  failed, waived}``); the new ``verify-static`` command emits
  ``results`` = ``{rows: [...], suite: {executions, hits, hit_rate}}``
  where each row carries the dynamic-weighted heuristic hit rate, a
  per-heuristic breakdown, and predicted-vs-measured working-set and
  conflict-edge scores (see
  :mod:`repro.eval.static_compare.VerifyStaticRow`).
* **6** — pluggable simulation backends: ``run``/``profile``/
  ``experiment`` accept ``--backend {interp,superblock}`` and their
  ``params`` gain a ``backend`` field (the resolved backend name; the
  engine folds the same name into artifact digests and journal
  records, so artifacts from different backends never alias).
* **7** — analysis-as-a-service: the new ``serve`` daemon speaks a
  newline-delimited JSON wire protocol whose every response frame
  carries ``schema_version`` (see :mod:`repro.service.wire`: ``submit``
  streams ``accepted`` → ``completed``/``failed``/``cancelled``/
  ``interrupted`` events; rejections are typed —
  ``service_overloaded``/``quota_exceeded`` — never connection drops);
  the new ``loadgen`` command emits a report envelope (``submitted``/
  ``completed``/``shed``/``quota_rejected`` counts, ``jobs_per_second``,
  ``latency`` p50/p99, ``cache_hit_ratio``, ``shed_rate``); run-journal
  records gain a ``v`` format-version field (older records read as v0;
  newer-than-supported journals fail ``experiment --resume`` with a
  typed ``journal_invalid`` error naming the offending record); the
  engine's failure payloads may now carry the ``job_cancelled``/
  ``job_interrupted``/``suite_interrupted`` codes (SIGTERM drain and
  deadline cancellation).
* **8** — benchmark-set registry + distributed sharding: selection-aware
  commands (``run``/``experiment``/``faults``/``loadgen``) accept
  ``--set EXPR`` selector expressions and their ``params`` gain
  ``selection`` (the resolved expression, or None) and ``shard`` (the
  ``K/N`` descriptor, or None); the embedded ``engine`` stats carry the
  same ``shard``/``selection`` fields; ``list`` emits the envelope
  (``results`` = ``{benchmarks, kernels, sets: [{name, members, count,
  default_scale, default_trace_limit, description}]}``); the new
  ``merge-shards`` command emits ``results`` =
  ``{destination, sources, artifacts_copied, artifacts_identical,
  journal_records, benchmarks}``; journal records of sharded runs gain
  ``shard``/``selection`` fields (ignored by older readers); selection
  errors (unknown benchmark/set, malformed shard) exit 2 with the typed
  ``unknown_benchmark``/``unknown_set``/``invalid_selection`` codes and
  a near-miss ``suggestion``.
* **9** — crash-safe shard supervisor: the new ``supervise`` command
  (also reachable as ``experiment --workers N``) emits ``results`` =
  ``{completed, remaining, failed, lost, interrupted, exhausted,
  seconds, supervisor, merge, shard_events}`` where ``supervisor``
  carries the recovery counters (``workers``, ``restarts``,
  ``reassigned_benchmarks``, ``speculative_runs``/``wins``/``losses``,
  ``lease_expiries``, ``shards_lost``, ``cost_model``) and
  ``shard_events`` lists one typed ``shard_lost`` record per recovered
  worker death; the embedded ``engine`` stats gain a ``cost_model``
  field (``"measured"`` when journal wall-clock medians drove the LPT
  partition, ``"fuel"`` for the static estimate, null unsharded);
  journal ``completed`` records gain ``seconds`` (the learned cost
  model's input); ``merge-shards`` results gain ``journal_skipped``
  and ``warnings`` (damaged journal lines tolerated during a
  partial-shard merge); new failure codes ``shard_lost``/
  ``shard_restarts_exhausted``.
"""

from __future__ import annotations

import json
from typing import Any, Dict

#: Bump on backwards-incompatible envelope/payload changes.
SCHEMA_VERSION = 9


def envelope(
    command: str, params: Dict[str, Any], results: Any
) -> Dict[str, Any]:
    """Wrap a command's results in the versioned envelope."""
    return {
        "schema_version": SCHEMA_VERSION,
        "command": command,
        "params": params,
        "results": results,
    }


def dump(document: Dict[str, Any]) -> str:
    """Render an envelope as stable, human-inspectable JSON."""
    return json.dumps(document, indent=2, sort_keys=False)


__all__ = ["SCHEMA_VERSION", "dump", "envelope"]
