"""The analysis-as-a-service daemon (``repro serve``).

An asyncio daemon that wraps the evaluation engine's worker machinery
(:class:`~repro.eval.engine.WorkerHandle`) behind a unix-socket NDJSON
API (:mod:`repro.service.wire`).  Clients submit benchmark + predictor
jobs; the daemon digests each job to its content address, dedupes
in-flight work by that digest (backend-keyed, so superblock and interp
jobs never alias), fans admitted jobs out over a bounded worker pool,
and streams typed result frames back.

Robustness model (see ``docs/SERVICE.md``):

* **Admission control** — a bounded queue; overload sheds submits with
  typed ``service_overloaded`` rejections, never a crash
  (:mod:`repro.service.admission`).
* **Quotas** — per-tenant token buckets with fairness accounting
  (:mod:`repro.service.quotas`).
* **Deadlines** — a per-job wall-clock budget enforced through the
  engine's worker-timeout path: an expired job's worker is SIGTERMed
  (checkpointing on the way down) and the client gets a typed
  ``cancelled`` frame.
* **SIGTERM drain** — stop admitting, SIGTERM in-flight workers (they
  write a final checkpoint and report ``job_interrupted``), journal
  state, exit 0.  Interrupted jobs keep their ``submitted`` journal
  record *without* a ``done`` record, so the next daemon resumes them.
* **Crash recovery** — on startup, ``submitted``-without-``done``
  journal records (a SIGKILLed daemon's in-flight jobs) are re-enqueued;
  their simulations resume from the shared checkpoint store and produce
  artifacts byte-identical to an undisturbed run.  Workers opt in to
  ``PR_SET_PDEATHSIG`` so a SIGKILLed daemon never leaks orphan
  simulations that would race the restart.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from ..errors import (
    JobCancelled,
    JobFailed,
    JobInterrupted,
    ReproError,
    UnknownBenchmark,
    error_to_dict,
)
from ..eval import interrupt
from ..eval.engine import (
    DRAIN_KILL_GRACE,
    ArtifactStore,
    JobResult,
    JobSpec,
    WorkerHandle,
    compute_job_digest,
)
from ..pipeline.bus import BranchEventBus
from ..pipeline.consumers import PredictorConsumer
from ..workloads.registry import resolve_benchmark
from .admission import AdmissionController
from .jobs import ServiceJob, ServiceJournal, build_predictor
from .quotas import QuotaManager
from .wire import (
    MAX_FRAME_BYTES,
    WireError,
    encode_frame,
    read_frame,
    rejection,
    response,
)

#: Scheduler tick while jobs are in flight (seconds).
_POLL_SECONDS = 0.02

#: Subdirectory of the cache root holding the service journal.
SERVICE_SUBDIR = "service"


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` needs to boot one daemon."""

    socket_path: str
    cache_dir: str
    workers: int = 2
    queue_limit: int = 16
    retries: int = 1
    quota_rate: float = 0.0
    quota_burst: float = 8.0
    checkpoint_every: int = 2000
    default_deadline_s: Optional[float] = None
    drain_grace_s: float = DRAIN_KILL_GRACE

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.checkpoint_every < 1:
            raise ValueError(
                "checkpoint_every must be >= 1 (checkpoints are the "
                f"preemption/recovery mechanism), got {self.checkpoint_every}"
            )


@dataclass
class Connection:
    """One client connection's outbox; frames are pumped to the socket."""

    queue: "asyncio.Queue[Optional[Dict[str, Any]]]" = field(
        default_factory=asyncio.Queue
    )
    closed: bool = False

    def send(self, frame: Optional[Dict[str, Any]]) -> None:
        if not self.closed:
            self.queue.put_nowait(frame)


class AnalysisService:
    """One daemon instance: admission, quotas, pool, journal, recovery."""

    def __init__(
        self, config: ServiceConfig, clock=time.monotonic
    ) -> None:
        self.config = config
        self.clock = clock
        self.cache_dir = Path(config.cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.store = ArtifactStore(self.cache_dir)
        self.journal = ServiceJournal(self.cache_dir / SERVICE_SUBDIR)
        self.admission: AdmissionController = AdmissionController(
            config.queue_limit
        )
        self.quotas = QuotaManager(
            rate=config.quota_rate, burst=config.quota_burst, clock=clock
        )
        #: live jobs by job id (queued or running).
        self.jobs: Dict[str, ServiceJob] = {}
        #: in-flight dedupe index: artifact stem -> primary job.
        self.inflight: Dict[str, ServiceJob] = {}
        #: running workers: job id -> (job, handle).
        self.running: Dict[str, Tuple[ServiceJob, WorkerHandle]] = {}
        self.counters: Dict[str, int] = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "interrupted": 0,
            "deduped": 0,
            "store_hits": 0,
            "simulated": 0,
            "recovered": 0,
            "retries": 0,
        }
        self.started = clock()
        self.draining = False
        self._drain_started: Optional[float] = None
        self._tasks: Set["asyncio.Task[Any]"] = set()

    # -- submission ---------------------------------------------------------

    def _parse_submit(
        self, frame: Dict[str, Any]
    ) -> Tuple[str, str, JobSpec, Tuple[str, ...], Optional[float]]:
        """(job id, tenant, spec, predictors, deadline) for one frame.

        Raises:
            ReproError: malformed or unknown fields (typed rejection).
        """
        job_id = frame.get("id") or f"job-{uuid.uuid4().hex[:12]}"
        if not isinstance(job_id, str):
            raise ReproError(f"job id must be a string, got {job_id!r}")
        tenant = frame.get("tenant") or "anonymous"
        benchmark = frame.get("benchmark")
        if not isinstance(benchmark, str) or not benchmark:
            raise ReproError("submit frame needs a benchmark name")
        try:
            resolve_benchmark(benchmark)
        except UnknownBenchmark as exc:
            raise exc  # typed wire rejection with a near-miss suggestion
        predictors = tuple(frame.get("predictors") or ())
        for spec_text in predictors:
            try:
                build_predictor(spec_text)
            except (TypeError, ValueError) as exc:
                raise ReproError(str(exc)) from exc
        deadline_s = frame.get("deadline_s", self.config.default_deadline_s)
        spec = JobSpec(
            name=benchmark,
            scale=float(frame.get("scale", 1.0)),
            trace_limit=frame.get("trace_limit"),
            backend=str(frame.get("backend", "interp")),
        )
        return (
            job_id,
            str(tenant),
            spec,
            predictors,
            float(deadline_s) if deadline_s is not None else None,
        )

    def _submit(self, frame: Dict[str, Any], conn: Connection) -> None:
        """Admit one submit frame; raises a typed error to reject it."""
        job_id, tenant, spec, predictors, deadline_s = self._parse_submit(
            frame
        )
        if job_id in self.jobs:
            raise ReproError(
                f"job id {job_id!r} is already in flight", job=job_id
            )
        self.counters["submitted"] += 1
        self.quotas.admit(tenant)  # may raise QuotaExceeded
        digest = compute_job_digest(spec)
        stem = self.store.stem(spec, digest)
        primary = self.inflight.get(stem)
        if primary is not None:
            # Same content address already queued/running: attach to it
            # instead of simulating twice.  Backend is part of the
            # digest, so different backends never dedupe onto each other.
            primary.waiters.append((conn, job_id))
            self.counters["deduped"] += 1
            conn.send(
                response(
                    "accepted",
                    job_id,
                    digest=digest,
                    dedup=True,
                    primary=primary.id,
                    queue_depth=self.admission.depth(),
                )
            )
            return
        job = ServiceJob(
            id=job_id,
            tenant=tenant,
            spec=spec,
            digest=digest,
            stem=stem,
            predictors=predictors,
            deadline_s=deadline_s,
            submitted_at=self.clock(),
            waiters=[(conn, job_id)],
        )
        self.admission.admit(job)  # may raise ServiceOverloaded
        self.journal.record_submitted(job)
        self.jobs[job.id] = job
        self.inflight[stem] = job
        conn.send(
            response(
                "accepted",
                job_id,
                digest=digest,
                dedup=False,
                queue_depth=self.admission.depth(),
            )
        )

    # -- scheduling ---------------------------------------------------------

    def _launch(self, now: float) -> None:
        while len(self.running) < self.config.workers:
            job = self.admission.pop()
            if job is None:
                return
            remaining = job.deadline_remaining(now)
            if remaining is not None and remaining <= 0:
                self._finalize(
                    job,
                    "cancelled",
                    JobCancelled(
                        f"{job.spec.name} missed its "
                        f"{job.deadline_s:g}s deadline while queued",
                        benchmark=job.spec.name,
                        deadline_s=job.deadline_s,
                    ),
                    now,
                )
                continue
            job.state = "running"
            job.started_at = now
            job.attempts += 1
            handle = WorkerHandle(
                job.spec,
                str(self.cache_dir),
                checkpoint_every=self.config.checkpoint_every,
                timeout=remaining,
            )
            self.running[job.id] = (job, handle)

    def _expire_queued(self, now: float) -> None:
        """Cancel queued jobs whose deadline passed before a worker freed."""
        expired = [
            job
            for job in self.admission.queue
            if job.deadline_remaining(now) is not None
            and job.deadline_remaining(now) <= 0
        ]
        for job in expired:
            self.admission.queue.remove(job)
            self._finalize(
                job,
                "cancelled",
                JobCancelled(
                    f"{job.spec.name} missed its {job.deadline_s:g}s "
                    "deadline while queued",
                    benchmark=job.spec.name,
                    deadline_s=job.deadline_s,
                ),
                now,
            )

    def _poll_outcomes(self, now: float) -> None:
        for job_id in list(self.running):
            job, handle = self.running[job_id]
            outcome = handle.poll()
            if outcome is None:
                continue
            del self.running[job_id]
            handle.reap()
            kind, payload = outcome
            if kind == "ok":
                self._finalize_ok(job, payload, now)
            elif kind == "timeout":
                self._finalize(
                    job,
                    "cancelled",
                    JobCancelled(
                        f"{job.spec.name} missed its "
                        f"{job.deadline_s:g}s deadline; its worker was "
                        "terminated through the timeout path "
                        "(checkpointed)",
                        benchmark=job.spec.name,
                        deadline_s=job.deadline_s,
                        attempts=job.attempts,
                    ),
                    now,
                )
            elif kind == "crash":
                self._retry_or_fail(
                    job,
                    JobFailed(
                        f"worker for {job.spec.name} died "
                        f"(exit code {payload}, attempt {job.attempts})",
                        benchmark=job.spec.name,
                        exit_code=payload,
                        attempts=job.attempts,
                    ),
                    now,
                )
            elif (
                isinstance(payload, dict)
                and payload.get("code") == JobInterrupted.code
            ):
                self._finalize_interrupted(job, payload, now)
            else:
                self._retry_or_fail(
                    job,
                    JobFailed(
                        f"{job.spec.name} failed: "
                        f"{payload.get('message', 'unknown error')}",
                        benchmark=job.spec.name,
                        attempts=job.attempts,
                        cause=payload,
                    ),
                    now,
                )

    def _retry_or_fail(
        self, job: ServiceJob, error: ReproError, now: float
    ) -> None:
        if job.attempts <= self.config.retries and not self.draining:
            job.state = "queued"
            self.counters["retries"] += 1
            self.admission.requeue(job)
            return
        self._finalize(job, "failed", error, now)

    # -- completion ---------------------------------------------------------

    def _finalize_ok(
        self, job: ServiceJob, result: JobResult, now: float
    ) -> None:
        key = "store_hits" if result.source == "store" else "simulated"
        self.counters[key] += 1
        if job.predictors:
            task = asyncio.get_running_loop().create_task(
                self._predict_then_complete(job, result)
            )
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
            return
        self._complete(job, result, None, now)

    async def _predict_then_complete(
        self, job: ServiceJob, result: JobResult
    ) -> None:
        """Replay the predictor bank off-loop, then complete the job."""
        loop = asyncio.get_running_loop()
        try:
            predictions = await loop.run_in_executor(
                None, self._run_predictors, job
            )
        except Exception as exc:
            error = exc if isinstance(exc, ReproError) else ReproError(
                f"predictor replay for {job.spec.name} failed: {exc}",
                benchmark=job.spec.name,
            )
            self._finalize(job, "failed", error, self.clock())
            return
        self._complete(job, result, predictions, self.clock())

    def _run_predictors(self, job: ServiceJob) -> Dict[str, Any]:
        artifacts = self.store.load(job.spec, job.digest)
        if artifacts is None:
            raise ReproError(
                f"artifacts for {job.spec.name} vanished before the "
                "predictor replay",
                benchmark=job.spec.name,
                digest=job.digest,
            )
        bank = [
            PredictorConsumer(build_predictor(text), label=job.spec.name)
            for text in job.predictors
        ]
        BranchEventBus.replay(artifacts.trace, bank)
        return {
            text: {
                "branches": consumer.result.branches,
                "mispredictions": consumer.result.mispredictions,
                "misprediction_rate": round(
                    consumer.result.misprediction_rate, 6
                ),
            }
            for text, consumer in zip(job.predictors, bank)
        }

    def _complete(
        self,
        job: ServiceJob,
        result: JobResult,
        predictions: Optional[Dict[str, Any]],
        now: float,
    ) -> None:
        job.state = "completed"
        self._forget(job)
        self.journal.record_done(job.id, "completed", digest=result.digest)
        self.counters["completed"] += 1
        self.quotas.account(
            job.tenant,
            completed=1,
            busy_seconds=(
                now - job.started_at if job.started_at is not None else 0.0
            ),
        )
        frame_fields: Dict[str, Any] = {
            "digest": result.digest,
            "source": result.source,
            "seconds": round(result.seconds, 6),
            "latency_s": round(now - job.submitted_at, 6),
            "attempts": job.attempts,
            "resumed": result.resumed,
            "checkpoints_written": result.checkpoints_written,
        }
        if result.pipeline is not None:
            frame_fields["pipeline"] = result.pipeline.as_dict()
        if predictions is not None:
            frame_fields["predictions"] = predictions
        self._notify(job, "completed", frame_fields)

    def _finalize(
        self,
        job: ServiceJob,
        status: str,
        error: ReproError,
        now: float,
    ) -> None:
        """Terminal failure/cancellation: journal, account, notify."""
        job.state = status
        job.error = error
        self._forget(job)
        self.journal.record_done(job.id, status, error=error_to_dict(error))
        self.counters[status] += 1
        self.quotas.account(job.tenant, failed=1)
        self._notify(
            job,
            status,
            {
                "error": error_to_dict(error),
                "latency_s": round(now - job.submitted_at, 6),
            },
        )

    def _finalize_interrupted(
        self, job: ServiceJob, payload: Dict[str, Any], now: float
    ) -> None:
        """A drained worker wound down; the job stays journal-orphaned.

        Deliberately no ``done`` record: the ``submitted`` line without
        one is exactly what the restarted daemon's recovery pass looks
        for, and the checkpoint the worker wrote on the way down is what
        it resumes from.
        """
        job.state = "interrupted"
        self._forget(job)
        self.counters["interrupted"] += 1
        self._notify(
            job,
            "interrupted",
            {
                "error": payload,
                "resumable": True,
                "latency_s": round(now - job.submitted_at, 6),
            },
        )

    def _forget(self, job: ServiceJob) -> None:
        self.jobs.pop(job.id, None)
        if self.inflight.get(job.stem) is job:
            del self.inflight[job.stem]

    def _notify(
        self, job: ServiceJob, kind: str, fields: Dict[str, Any]
    ) -> None:
        for conn, client_id in job.waiters:
            conn.send(response(kind, client_id, **fields))

    # -- stats --------------------------------------------------------------

    def stats_frame(self) -> Dict[str, Any]:
        finished = self.counters["store_hits"] + self.counters["simulated"]
        hits = self.counters["store_hits"] + self.counters["deduped"]
        requests = finished + self.counters["deduped"]
        return response(
            "stats",
            uptime_s=round(self.clock() - self.started, 3),
            jobs=dict(self.counters),
            running=len(self.running),
            admission=self.admission.snapshot(),
            tenants=self.quotas.snapshot(),
            cache_hit_ratio=(
                round(hits / requests, 6) if requests else 0.0
            ),
            store={
                "corrupt_events": len(self.store.corrupt_events),
                "claim_waits": self.store.claim_waits,
            },
        )

    # -- connection handling ------------------------------------------------

    def _dispatch(self, frame: Dict[str, Any], conn: Connection) -> None:
        op = frame.get("op")
        if op == "ping":
            conn.send(
                response(
                    "pong",
                    uptime_s=round(self.clock() - self.started, 3),
                )
            )
        elif op == "stats":
            conn.send(self.stats_frame())
        elif op == "submit":
            try:
                self._submit(frame, conn)
            except ReproError as exc:
                conn.send(rejection(exc, frame.get("id")))
        else:
            conn.send(
                rejection(
                    ReproError(f"unknown op {op!r}"), frame.get("id")
                )
            )

    async def _pump(
        self, conn: Connection, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                frame = await conn.queue.get()
                if frame is None:
                    break
                writer.write(encode_frame(frame))
                await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass  # conn_drop: the job keeps running server-side
        finally:
            conn.closed = True
            try:
                writer.close()
            except Exception:
                pass

    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        conn = Connection()
        pump = asyncio.get_running_loop().create_task(
            self._pump(conn, writer)
        )
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except WireError as exc:
                    conn.send(rejection(exc))
                    break
                if frame is None:
                    break
                self._dispatch(frame, conn)
        finally:
            conn.send(None)  # sentinel: flush pending frames, then stop
            conn.closed = True
            try:
                await asyncio.wait_for(pump, timeout=5.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                pump.cancel()

    # -- lifecycle ----------------------------------------------------------

    def _recover(self) -> None:
        """Re-enqueue the previous daemon's journal-orphaned jobs.

        No new ``submitted`` record (the original is still on file); no
        admission/quota gate (the jobs were already admitted once); no
        waiters (their clients are gone — results land in the artifact
        store and the ``done`` journal record).
        """
        for record in self.journal.orphans():
            spec = JobSpec(
                name=str(record.get("benchmark", "")),
                scale=float(record.get("scale", 1.0)),
                trace_limit=record.get("trace_limit"),
                backend=str(record.get("backend", "interp")),
            )
            try:
                resolve_benchmark(spec.name)
            except UnknownBenchmark:
                continue  # journal from an older suite; nothing to resume
            digest = str(record.get("digest", ""))
            job = ServiceJob(
                id=str(record["job"]),
                tenant=str(record.get("tenant", "anonymous")),
                spec=spec,
                digest=digest,
                stem=self.store.stem(spec, digest),
                predictors=tuple(record.get("predictors", ())),
                deadline_s=None,  # its clock died with the old daemon
                submitted_at=self.clock(),
                recovered=True,
            )
            self.jobs[job.id] = job
            self.inflight[job.stem] = job
            self.admission.queue.append(job)
            self.counters["recovered"] += 1

    def _begin_drain(self, now: float) -> None:
        self.draining = True
        self._drain_started = now
        self.admission.draining = True
        for _, handle in self.running.values():
            handle.terminate()  # workers checkpoint + report interrupted

    async def _scheduler(self) -> None:
        while True:
            now = self.clock()
            if not self.draining and interrupt.drain_requested():
                self._begin_drain(now)
            if self.draining:
                if not self.running:
                    break
                if (
                    self._drain_started is not None
                    and now - self._drain_started
                    > self.config.drain_grace_s
                ):
                    for _, handle in self.running.values():
                        handle.kill()
            else:
                self._expire_queued(now)
                self._launch(now)
            self._poll_outcomes(now)
            await asyncio.sleep(_POLL_SECONDS)
        # Jobs still queued at drain keep their journal orphan record;
        # tell any connected waiters the daemon is going away.
        while True:
            job = self.admission.pop()
            if job is None:
                break
            job.state = "interrupted"
            self.counters["interrupted"] += 1
            self._notify(
                job,
                "interrupted",
                {
                    "error": error_to_dict(
                        JobInterrupted(
                            f"{job.spec.name} was queued when the "
                            "daemon drained; it resumes on restart",
                            benchmark=job.spec.name,
                        )
                    ),
                    "resumable": True,
                },
            )

    async def run(self) -> int:
        """Boot, serve until drained, exit 0."""
        interrupt.reset_drain()
        loop = asyncio.get_running_loop()
        handled_signals = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, interrupt.request_drain)
                handled_signals.append(signum)
            except (NotImplementedError, ValueError, OSError):
                pass
        previous_pdeathsig = os.environ.get(interrupt.PDEATHSIG_ENV)
        os.environ[interrupt.PDEATHSIG_ENV] = "1"
        self._recover()
        socket_path = Path(self.config.socket_path)
        socket_path.parent.mkdir(parents=True, exist_ok=True)
        if socket_path.exists():
            socket_path.unlink()  # stale socket from a SIGKILLed daemon
        server = await asyncio.start_unix_server(
            self._handle_client,
            path=str(socket_path),
            limit=MAX_FRAME_BYTES,
        )
        try:
            await self._scheduler()
            if self._tasks:
                await asyncio.wait_for(
                    asyncio.gather(*self._tasks, return_exceptions=True),
                    timeout=self.config.drain_grace_s,
                )
        finally:
            server.close()
            await server.wait_closed()
            try:
                socket_path.unlink()
            except OSError:
                pass
            for signum in handled_signals:
                loop.remove_signal_handler(signum)
            if previous_pdeathsig is None:
                os.environ.pop(interrupt.PDEATHSIG_ENV, None)
            else:
                os.environ[interrupt.PDEATHSIG_ENV] = previous_pdeathsig
            interrupt.reset_drain()
        return 0


def serve(config: ServiceConfig) -> int:
    """Run one daemon to completion (drain or loop teardown); exit code."""
    return asyncio.run(AnalysisService(config).run())


__all__ = [
    "AnalysisService",
    "Connection",
    "SERVICE_SUBDIR",
    "ServiceConfig",
    "serve",
]
