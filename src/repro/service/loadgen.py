"""Open-loop load generator for the analysis daemon (``repro loadgen``).

Open-loop means arrivals are scheduled on a fixed clock — request *i*
is sent at ``i / rate`` seconds after start — regardless of how fast the
service answers.  That is the honest way to measure a service under
load: a closed loop (send, wait, send) self-throttles exactly when the
server slows down, hiding the queueing behaviour the admission
controller exists to manage.

Each request is one short-lived unix-socket connection: submit, stream
frames until the terminal one, record the outcome and latency.  After
the run, one ``stats`` query collects the server-side counters
(cache-hit ratio, shed counts, per-tenant fairness) into the report.

Client-side fault modes reuse :class:`repro.eval.faults.FaultPlan`
(installed via ``REPRO_FAULTS`` or passed directly):

* ``slow_client`` — every Nth request trickles its submit frame in two
  writes separated by a pause, exercising the daemon's partial-frame
  reads;
* ``conn_drop`` — every Nth request disconnects right after its
  ``accepted`` frame; the job must still complete server-side (the
  report marks it ``dropped``, and the artifact lands in the store).
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..eval import faults
from .wire import encode_frame, read_frame

#: Frame types that end one request's stream.
TERMINAL_TYPES = (
    "completed",
    "failed",
    "cancelled",
    "interrupted",
    "rejected",
)


@dataclass(frozen=True)
class LoadgenConfig:
    """One load-generation run."""

    socket_path: str
    rate: float = 10.0
    jobs: int = 20
    benchmarks: Tuple[str, ...] = ("plot",)
    tenants: Tuple[str, ...] = ("tenant-0",)
    scale: float = 0.05
    trace_limit: Optional[int] = None
    backend: str = "interp"
    predictors: Tuple[str, ...] = ()
    deadline_s: Optional[float] = None
    #: per-request budget for the response stream (client-side guard so
    #: a wedged daemon cannot hang the generator forever).
    response_timeout_s: float = 120.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if not self.benchmarks:
            raise ValueError("loadgen needs at least one benchmark")
        from ..workloads.registry import resolve_benchmark

        for name in self.benchmarks:
            resolve_benchmark(name)  # UnknownBenchmark before any traffic
        if not self.tenants:
            raise ValueError("loadgen needs at least one tenant")


@dataclass
class RequestOutcome:
    """What happened to one open-loop request."""

    index: int
    benchmark: str
    tenant: str
    outcome: str = "pending"
    error_code: str = ""
    latency_s: float = 0.0
    frames: List[Dict[str, Any]] = field(default_factory=list)


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


async def _one_request(
    config: LoadgenConfig,
    index: int,
    plan: Optional[faults.FaultPlan],
) -> RequestOutcome:
    benchmark = config.benchmarks[index % len(config.benchmarks)]
    tenant = config.tenants[index % len(config.tenants)]
    record = RequestOutcome(index=index, benchmark=benchmark, tenant=tenant)
    frame: Dict[str, Any] = {
        "op": "submit",
        "id": f"lg-{index}",
        "tenant": tenant,
        "benchmark": benchmark,
        "scale": config.scale,
        "trace_limit": config.trace_limit,
        "backend": config.backend,
    }
    if config.predictors:
        frame["predictors"] = list(config.predictors)
    if config.deadline_s is not None:
        frame["deadline_s"] = config.deadline_s
    started = time.monotonic()
    try:
        reader, writer = await asyncio.open_unix_connection(
            config.socket_path
        )
    except OSError as exc:
        record.outcome = "connect_error"
        record.error_code = type(exc).__name__
        return record
    try:
        payload = encode_frame(frame)
        delay = plan.client_delay(index) if plan is not None else 0.0
        if delay > 0.0:
            split = max(1, len(payload) // 2)
            writer.write(payload[:split])
            await writer.drain()
            await asyncio.sleep(delay)
            writer.write(payload[split:])
        else:
            writer.write(payload)
        await writer.drain()
        drop = plan is not None and plan.drops_connection(index)
        deadline = started + config.response_timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                record.outcome = "client_timeout"
                break
            reply = await asyncio.wait_for(
                read_frame(reader), timeout=remaining
            )
            if reply is None:
                record.outcome = "disconnected"
                break
            record.frames.append(reply)
            kind = reply.get("type")
            if kind == "accepted" and drop:
                record.outcome = "dropped"
                break
            if kind in TERMINAL_TYPES:
                record.outcome = kind
                if kind == "rejected":
                    record.error_code = str(
                        (reply.get("error") or {}).get("code", "")
                    )
                break
    except (OSError, asyncio.TimeoutError, ValueError) as exc:
        record.outcome = "client_error"
        record.error_code = type(exc).__name__
    finally:
        record.latency_s = time.monotonic() - started
        try:
            writer.close()
        except Exception:
            pass
    return record


async def _query_stats(socket_path: str) -> Optional[Dict[str, Any]]:
    try:
        reader, writer = await asyncio.open_unix_connection(socket_path)
    except OSError:
        return None
    try:
        writer.write(encode_frame({"op": "stats"}))
        await writer.drain()
        return await asyncio.wait_for(read_frame(reader), timeout=10.0)
    except (OSError, asyncio.TimeoutError, ValueError):
        return None
    finally:
        try:
            writer.close()
        except Exception:
            pass


async def _run(
    config: LoadgenConfig, plan: Optional[faults.FaultPlan]
) -> Dict[str, Any]:
    started = time.monotonic()

    async def scheduled(index: int) -> RequestOutcome:
        due = started + index / config.rate
        pause = due - time.monotonic()
        if pause > 0:
            await asyncio.sleep(pause)
        return await _one_request(config, index, plan)

    records = await asyncio.gather(
        *(scheduled(index) for index in range(config.jobs))
    )
    duration = time.monotonic() - started
    stats = await _query_stats(config.socket_path)
    return summarize(list(records), duration, stats, config)


def summarize(
    records: List[RequestOutcome],
    duration_s: float,
    service_stats: Optional[Dict[str, Any]],
    config: LoadgenConfig,
) -> Dict[str, Any]:
    """The loadgen report (the ``BENCH_service.json`` results shape)."""
    by_outcome: Dict[str, int] = {}
    for record in records:
        by_outcome[record.outcome] = by_outcome.get(record.outcome, 0) + 1
    rejected_overloaded = sum(
        1
        for r in records
        if r.outcome == "rejected" and r.error_code == "service_overloaded"
    )
    rejected_quota = sum(
        1
        for r in records
        if r.outcome == "rejected" and r.error_code == "quota_exceeded"
    )
    latencies = sorted(
        r.latency_s for r in records if r.outcome == "completed"
    )
    jobs = dict(service_stats.get("jobs", {})) if service_stats else {}
    report: Dict[str, Any] = {
        "jobs": len(records),
        "rate_hz": config.rate,
        "duration_s": round(duration_s, 6),
        "completed": by_outcome.get("completed", 0),
        "failed": by_outcome.get("failed", 0),
        "cancelled": by_outcome.get("cancelled", 0),
        "interrupted": by_outcome.get("interrupted", 0),
        "dropped": by_outcome.get("dropped", 0),
        "rejected": by_outcome.get("rejected", 0),
        "rejected_overloaded": rejected_overloaded,
        "rejected_quota": rejected_quota,
        "client_errors": (
            by_outcome.get("client_error", 0)
            + by_outcome.get("connect_error", 0)
            + by_outcome.get("client_timeout", 0)
            + by_outcome.get("disconnected", 0)
        ),
        "jobs_per_sec": (
            round(by_outcome.get("completed", 0) / duration_s, 6)
            if duration_s > 0
            else 0.0
        ),
        "latency_p50_s": round(_percentile(latencies, 0.50), 6),
        "latency_p99_s": round(_percentile(latencies, 0.99), 6),
        "shed_rate": (
            round(rejected_overloaded / len(records), 6) if records else 0.0
        ),
        "cache_hit_ratio": (
            service_stats.get("cache_hit_ratio", 0.0)
            if service_stats
            else 0.0
        ),
        "outcomes": dict(sorted(by_outcome.items())),
    }
    if service_stats is not None:
        report["service"] = {
            "jobs": jobs,
            "admission": service_stats.get("admission", {}),
            "tenants": service_stats.get("tenants", {}),
        }
    return report


def run_loadgen(
    config: LoadgenConfig,
    plan: Optional[faults.FaultPlan] = None,
) -> Dict[str, Any]:
    """Drive one open-loop run against a live daemon; returns the report.

    *plan* defaults to the ``REPRO_FAULTS`` environment plan, so the
    same installation mechanism drives worker faults (daemon-side) and
    client faults (here).
    """
    if plan is None:
        plan = faults.active_plan()
    return asyncio.run(_run(config, plan))


__all__ = [
    "LoadgenConfig",
    "RequestOutcome",
    "TERMINAL_TYPES",
    "run_loadgen",
    "summarize",
]
