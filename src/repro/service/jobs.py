"""Service job records, the crash-safe service journal, and predictors.

A job's lifecycle must survive the daemon dying at any instant, so it is
written down twice:

* the **service journal** (``<cache>/service/service.jsonl``, same
  fsynced append discipline as the suite run journal) records one
  ``submitted`` line when a job is admitted and one ``done`` line when
  it reaches a terminal state.  A ``submitted`` line without a matching
  ``done`` line is an *orphan*: the daemon died (or was SIGKILLed) with
  the job in flight, and the restarted daemon re-enqueues it;
* the job's simulation progress lives in the shared checkpoint store
  under the job's artifact stem, so a re-enqueued orphan resumes
  mid-simulation and produces artifacts byte-identical to an
  undisturbed run (the engine's checkpoint/resume guarantee).

Predictor configs ride along as compact specs (``"gshare:10"``) so a
submit frame stays one JSON line; :func:`build_predictor` maps them to
instances inside the daemon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..checkpoint.journal import RunJournal
from ..errors import ReproError
from ..eval.engine import JobSpec
from ..predictors import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    BimodalPredictor,
    BranchPredictor,
    BTFNTPredictor,
    GSharePredictor,
)

#: Terminal job states: exactly these get a ``done`` journal record.
#: ``interrupted`` is deliberately NOT terminal — an interrupted job
#: stays an orphan in the journal so the restarted daemon resumes it.
TERMINAL_STATES = ("completed", "failed", "cancelled")


def build_predictor(spec: str) -> BranchPredictor:
    """A predictor instance for a compact wire spec.

    ``"bimodal[:SIZE]"``, ``"gshare[:HISTORY_BITS]"``,
    ``"always_taken"``, ``"always_not_taken"``, ``"btfnt"``.

    Raises:
        ValueError: unknown predictor name or malformed parameter.
    """
    name, _, param = spec.partition(":")
    name = name.strip().lower()
    try:
        if name == "bimodal":
            return BimodalPredictor(size=int(param) if param else 2048)
        if name == "gshare":
            return GSharePredictor(
                history_bits=int(param) if param else 12
            )
        if name == "always_taken" and not param:
            return AlwaysTakenPredictor()
        if name == "always_not_taken" and not param:
            return AlwaysNotTakenPredictor()
        if name == "btfnt" and not param:
            return BTFNTPredictor()
    except (TypeError, ValueError) as exc:
        raise ValueError(f"bad predictor spec {spec!r}: {exc}") from exc
    raise ValueError(
        f"unknown predictor spec {spec!r} (expected bimodal[:size], "
        "gshare[:bits], always_taken, always_not_taken or btfnt)"
    )


@dataclass
class ServiceJob:
    """One submitted analysis job and its in-daemon runtime state."""

    id: str
    tenant: str
    spec: JobSpec
    digest: str
    stem: str
    predictors: Tuple[str, ...] = ()
    #: wall-clock budget from admission to completion; None = unbounded.
    deadline_s: Optional[float] = None
    state: str = "queued"
    #: monotonic admission time (latency measurements).
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    attempts: int = 0
    error: Optional[ReproError] = None
    #: True when this job was re-enqueued from the journal after a
    #: daemon crash (no client is waiting on it).
    recovered: bool = False
    #: (outbox, client job id) pairs to stream result frames to;
    #: deduped submits attach here with their own id.
    waiters: List[Tuple[Any, str]] = field(default_factory=list)

    def deadline_remaining(self, now: float) -> Optional[float]:
        """Seconds left on the deadline at *now* (None = unbounded)."""
        if self.deadline_s is None:
            return None
        return self.deadline_s - (now - self.submitted_at)

    def journal_record(self) -> Dict[str, Any]:
        """The ``submitted`` journal line — everything a restarted
        daemon needs to rebuild and resume this job."""
        return {
            "kind": "submitted",
            "job": self.id,
            "tenant": self.tenant,
            "benchmark": self.spec.name,
            "scale": self.spec.scale,
            "trace_limit": self.spec.trace_limit,
            "backend": self.spec.backend,
            "digest": self.digest,
            "predictors": list(self.predictors),
        }


class ServiceJournal(RunJournal):
    """Append-only, fsynced record of the daemon's job lifecycle.

    Reuses the suite journal's torn-tail-safe append and tolerant reads;
    only the record vocabulary differs (``kind: submitted | done``
    keyed by job id, rather than per-benchmark completion).
    """

    FILENAME = "service.jsonl"

    def record_submitted(self, job: ServiceJob) -> None:
        self.append(job.journal_record())

    def record_done(
        self,
        job_id: str,
        status: str,
        digest: str = "",
        error: Optional[Dict[str, Any]] = None,
    ) -> None:
        record: Dict[str, Any] = {
            "kind": "done",
            "job": job_id,
            "status": status,
        }
        if digest:
            record["digest"] = digest
        if error is not None:
            record["error"] = error
        self.append(record)

    def orphans(self) -> List[Dict[str, Any]]:
        """``submitted`` records with no terminal ``done`` record.

        These are the jobs a dead daemon left in flight (or queued);
        the restarted daemon re-enqueues them and their simulations
        resume from the shared checkpoint store.  Append order is
        preserved so recovery re-runs jobs in submission order.
        """
        submitted: Dict[str, Dict[str, Any]] = {}
        order: List[str] = []
        for record in self.records():
            job_id = record.get("job")
            if not isinstance(job_id, str):
                continue
            kind = record.get("kind")
            if kind == "submitted":
                if job_id not in submitted:
                    order.append(job_id)
                submitted[job_id] = record
            elif kind == "done" and record.get("status") in TERMINAL_STATES:
                submitted.pop(job_id, None)
        return [submitted[job_id] for job_id in order if job_id in submitted]


__all__ = [
    "ServiceJob",
    "ServiceJournal",
    "TERMINAL_STATES",
    "build_predictor",
]
