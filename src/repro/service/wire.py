"""NDJSON wire protocol for the analysis service.

One JSON object per ``\\n``-terminated line, in both directions, over a
unix-domain socket.  Newline-delimited JSON keeps the protocol
inspectable with ``nc -U`` + a pipe to ``jq`` and makes framing trivial:
a frame is a line, a torn line is a dead peer.

Client → server frames carry an ``op``:

* ``{"op": "submit", "id": ..., "tenant": ..., "benchmark": ..., ...}``
  — submit one analysis job; the server streams ``accepted`` and then a
  terminal frame (``completed``/``failed``/``cancelled``/
  ``interrupted``) for the same ``id``, or a single ``rejected`` frame
  (admission shed, quota, bad request) and no job;
* ``{"op": "stats"}`` — one ``stats`` frame with the service counters;
* ``{"op": "ping"}`` — one ``pong`` frame (liveness).

Server → client frames carry a ``type`` and the envelope's
``schema_version`` (see :mod:`repro.schema`, v7 changelog).  Errors are
always the typed :func:`repro.errors.error_to_dict` form — a shed or
over-quota submit gets a ``rejected`` frame with
``error.code == "service_overloaded"`` / ``"quota_exceeded"``, never a
dropped connection.

Frames are bounded by :data:`MAX_FRAME_BYTES`; a peer that sends an
oversized or unparsable line gets one ``rejected`` frame (where a reply
is still possible) and the connection is closed.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional

from ..errors import error_to_dict
from ..schema import SCHEMA_VERSION

#: Hard bound on one frame (one line) in either direction.
MAX_FRAME_BYTES = 1 << 20


class WireError(ValueError):
    """A peer sent something that is not a bounded NDJSON object."""


def encode_frame(frame: Dict[str, Any]) -> bytes:
    """One frame as its NDJSON line (sorted keys, trailing newline)."""
    return json.dumps(frame, sort_keys=True).encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one line into a frame object.

    Raises:
        WireError: oversized line, invalid JSON, or a non-object frame.
    """
    if len(line) > MAX_FRAME_BYTES:
        raise WireError(
            f"frame of {len(line)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound"
        )
    try:
        frame = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireError(f"unparsable frame: {exc}") from exc
    if not isinstance(frame, dict):
        raise WireError(
            f"frame must be a JSON object, got {type(frame).__name__}"
        )
    return frame


async def read_frame(
    reader: asyncio.StreamReader,
) -> Optional[Dict[str, Any]]:
    """The peer's next frame, or None on a clean EOF.

    Raises:
        WireError: on an oversized or unparsable line (the caller should
            reply if it can, then close).
    """
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError) as exc:
        raise WireError(f"oversized frame: {exc}") from exc
    if not line:
        return None
    if not line.strip():
        return await read_frame(reader)
    return decode_frame(line)


def response(kind: str, job_id: Optional[str] = None, **fields: Any) -> Dict[str, Any]:
    """A server frame of *kind*, stamped with the schema version."""
    frame: Dict[str, Any] = {
        "type": kind,
        "schema_version": SCHEMA_VERSION,
    }
    if job_id is not None:
        frame["id"] = job_id
    frame.update(fields)
    return frame


def rejection(exc: BaseException, job_id: Optional[str] = None) -> Dict[str, Any]:
    """The typed ``rejected`` frame for *exc* (never a dropped socket)."""
    return response("rejected", job_id, error=error_to_dict(exc))


__all__ = [
    "MAX_FRAME_BYTES",
    "WireError",
    "decode_frame",
    "encode_frame",
    "read_frame",
    "rejection",
    "response",
]
