"""Admission control: a bounded queue that sheds load instead of dying.

The daemon's first robustness line.  An unbounded queue turns overload
into unbounded memory growth and unbounded latency — every queued job
waits behind every other — until the process falls over with all jobs
lost.  The admission controller caps the queue at ``limit``: a submit
that finds the queue full is *shed* with a typed
:class:`~repro.errors.ServiceOverloaded` rejection (never a crash, never
a silent drop), so clients get an explicit back-off signal while the
jobs already admitted keep their latency bounded.

Draining (SIGTERM) closes admission the same way: new submits are shed
with ``draining=True`` in the rejection context while in-flight work is
checkpointed.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, TypeVar

from ..errors import ServiceOverloaded

T = TypeVar("T")


class AdmissionController:
    """Bounded FIFO admission queue with shed counters."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"queue limit must be >= 1, got {limit}")
        self.limit = limit
        self.queue: Deque[T] = deque()
        self.draining = False
        self.admitted = 0
        self.shed = 0

    def depth(self) -> int:
        return len(self.queue)

    def admit(self, job: T) -> None:
        """Queue *job*, or shed it.

        Raises:
            ServiceOverloaded: queue at capacity, or the daemon is
                draining; the context names which.
        """
        if self.draining:
            self.shed += 1
            raise ServiceOverloaded(
                "service is draining (SIGTERM received); not admitting "
                "new jobs — resubmit after restart",
                draining=True,
            )
        if len(self.queue) >= self.limit:
            self.shed += 1
            raise ServiceOverloaded(
                f"admission queue is full ({len(self.queue)}/"
                f"{self.limit}); retry with backoff",
                queue_depth=len(self.queue),
                queue_limit=self.limit,
            )
        self.queue.append(job)
        self.admitted += 1

    def requeue(self, job: T) -> None:
        """Put *job* back at the head (recovery path; bypasses the cap)."""
        self.queue.appendleft(job)

    def pop(self) -> Optional[T]:
        """The oldest admitted job, or None when the queue is empty."""
        if not self.queue:
            return None
        return self.queue.popleft()

    def snapshot(self) -> Dict[str, object]:
        return {
            "queue_depth": len(self.queue),
            "queue_limit": self.limit,
            "admitted": self.admitted,
            "shed": self.shed,
            "draining": self.draining,
        }


__all__ = ["AdmissionController"]
