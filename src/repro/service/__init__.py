"""Analysis-as-a-service: the daemon, its clients, and its guardrails.

The ROADMAP's north star is a production-scale system serving heavy
traffic; this package is the serving layer over the evaluation engine:

* :mod:`repro.service.app` — the asyncio daemon (``repro serve``):
  unix-socket NDJSON API, digest-keyed in-flight dedupe, bounded worker
  pool, SIGTERM drain, journal-driven crash recovery;
* :mod:`repro.service.admission` — bounded admission queue with typed
  load shedding;
* :mod:`repro.service.quotas` — per-tenant token buckets and fairness
  accounting;
* :mod:`repro.service.jobs` — job records, the crash-safe service
  journal, predictor wire specs;
* :mod:`repro.service.wire` — the NDJSON frame protocol;
* :mod:`repro.service.loadgen` — the open-loop load generator
  (``repro loadgen``) and the ``BENCH_service.json`` report shape.

See ``docs/SERVICE.md`` for the API, the failure model and the recovery
guarantees.
"""

from .admission import AdmissionController
from .app import AnalysisService, ServiceConfig, serve
from .jobs import ServiceJob, ServiceJournal, build_predictor
from .loadgen import LoadgenConfig, run_loadgen, summarize
from .quotas import QuotaManager, TokenBucket
from .wire import (
    MAX_FRAME_BYTES,
    WireError,
    decode_frame,
    encode_frame,
    read_frame,
    rejection,
    response,
)

__all__ = [
    "AdmissionController",
    "AnalysisService",
    "LoadgenConfig",
    "MAX_FRAME_BYTES",
    "QuotaManager",
    "ServiceConfig",
    "ServiceJob",
    "ServiceJournal",
    "TokenBucket",
    "WireError",
    "build_predictor",
    "decode_frame",
    "encode_frame",
    "read_frame",
    "rejection",
    "response",
    "run_loadgen",
    "serve",
    "summarize",
]
