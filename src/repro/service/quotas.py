"""Per-tenant token-bucket quotas and fairness accounting.

The daemon serves many tenants from one bounded worker pool; without
rate limiting, one chatty client starves everyone else *before* the
admission queue even gets a say.  Each tenant owns a token bucket
(``rate`` tokens/second, capacity ``burst``): a submit spends one token
or is rejected with a typed :class:`~repro.errors.QuotaExceeded` naming
the earliest moment a token will be available (``retry_after_s``), so
clients can back off precisely instead of hammering.

Buckets are lazy — tokens accrue arithmetically from the last-touched
timestamp, no background refill task — and the clock is injectable, so
tests drive time explicitly instead of sleeping.

Fairness is *accounted*, not enforced beyond the buckets: the manager
keeps per-tenant counters (admitted/rejected/completed/failed and busy
seconds actually consumed) that the ``stats`` wire op exposes, so a
skewed share of the pool is visible in one snapshot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict

from ..errors import QuotaExceeded


@dataclass
class TokenBucket:
    """A lazily refilled token bucket (``rate``/s, capacity ``burst``)."""

    rate: float
    burst: float
    tokens: float
    updated: float

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now

    def try_take(self, now: float, amount: float = 1.0) -> float:
        """Spend *amount* tokens; 0.0 on success, else seconds to wait.

        The wait is exact under the lazy-refill arithmetic: after that
        many seconds the bucket will hold *amount* tokens (barring
        competing takers).
        """
        self._refill(now)
        if self.tokens >= amount:
            self.tokens -= amount
            return 0.0
        if self.rate <= 0:
            return float("inf")
        return (amount - self.tokens) / self.rate


@dataclass
class TenantUsage:
    """Fairness accounting for one tenant (exposed via the stats op)."""

    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    busy_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "busy_seconds": round(self.busy_seconds, 6),
        }


@dataclass
class QuotaManager:
    """One token bucket + usage record per tenant.

    ``rate <= 0`` disables rate limiting entirely (every admit
    succeeds); usage is accounted either way.  *clock* must be a
    monotonic-seconds callable.
    """

    rate: float = 0.0
    burst: float = 8.0
    clock: Callable[[], float] = time.monotonic
    buckets: Dict[str, TokenBucket] = field(default_factory=dict)
    usage: Dict[str, TenantUsage] = field(default_factory=dict)

    def usage_for(self, tenant: str) -> TenantUsage:
        record = self.usage.get(tenant)
        if record is None:
            record = TenantUsage()
            self.usage[tenant] = record
        return record

    def admit(self, tenant: str) -> None:
        """Spend one of *tenant*'s tokens.

        Raises:
            QuotaExceeded: when the bucket is empty; carries the tenant
                and ``retry_after_s``.
        """
        usage = self.usage_for(tenant)
        usage.submitted += 1
        if self.rate <= 0:
            usage.admitted += 1
            return
        bucket = self.buckets.get(tenant)
        now = self.clock()
        if bucket is None:
            bucket = TokenBucket(
                rate=self.rate, burst=self.burst,
                tokens=self.burst, updated=now,
            )
            self.buckets[tenant] = bucket
        wait = bucket.try_take(now)
        if wait > 0.0:
            usage.rejected += 1
            raise QuotaExceeded(
                f"tenant {tenant!r} is over quota "
                f"({self.rate:g}/s, burst {self.burst:g}); retry in "
                f"{wait:.3f}s",
                tenant=tenant,
                retry_after_s=round(wait, 3),
            )
        usage.admitted += 1

    def account(
        self,
        tenant: str,
        *,
        completed: int = 0,
        failed: int = 0,
        busy_seconds: float = 0.0,
    ) -> None:
        """Fold one finished job's outcome into *tenant*'s usage."""
        usage = self.usage_for(tenant)
        usage.completed += completed
        usage.failed += failed
        usage.busy_seconds += busy_seconds

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-tenant usage, JSON-ready (the stats op's ``tenants``)."""
        return {
            tenant: usage.as_dict()
            for tenant, usage in sorted(self.usage.items())
        }


__all__ = ["QuotaManager", "TenantUsage", "TokenBucket"]
