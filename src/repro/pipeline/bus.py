"""The columnar branch-event bus.

One simulation (or one pass over a recorded trace) produces *all* the
derived artifacts: the :class:`BranchEventBus` sits on the simulator's
branch hook, batches events into fixed-size columnar chunks, and fans
each full chunk out to pluggable consumers — the interleave profiler,
predictor banks, streaming trace statistics, and (optionally) a chunked
trace builder.  This replaces the seed's materialize-then-replay shape,
where a full :class:`~repro.trace.events.BranchTrace` was built out of
per-event Python list appends, round-tripped through the npz cache, and
then re-iterated once per profiler and once per predictor.

Two event sources feed the same consumer API:

* **live** — attach the bus as the simulator's ``branch_hook``
  (:meth:`BranchEventBus.on_branch`); events are staged in plain Python
  lists (the cheapest per-event operation available to a Python hook) and
  converted to numpy blocks at chunk boundaries;
* **replay** — :meth:`BranchEventBus.replay` streams a recorded
  :class:`~repro.trace.events.BranchTrace`'s columns through the same
  consumers in zero-copy array slices.

Chunks carry both representations lazily (:class:`EventChunk`): consumers
that iterate events share one ``tolist`` conversion per column, and
vectorized consumers (the predictors' chunk fast path) get contiguous
numpy views.  The bus records per-consumer observability counters —
events, chunks, seconds, events/sec — surfaced by the engine's schema-v3
JSON envelope.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..trace.events import BranchTrace

#: Default events per chunk.  Large enough that per-chunk numpy/list
#: conversion overhead amortises to noise, small enough that four staged
#: columns stay cache-friendly and partial chunks flush promptly.
DEFAULT_CHUNK_EVENTS = 1 << 16


class EventConsumer(Protocol):
    """Anything that can ride the bus.

    Consumers see every chunk in program order via :meth:`on_chunk` and
    produce their artifact in :meth:`finish`.  They must not mutate the
    chunk (its arrays may be views into a shared trace).

    Consumers may additionally implement the optional checkpoint hook
    pair ``snapshot_state() -> object`` / ``restore_state(state)`` so
    mid-run state survives a worker kill (see
    :mod:`repro.checkpoint.snapshot`); consumers without the hooks are
    snapshotted via their instance ``__dict__``.
    """

    def on_chunk(self, chunk: "EventChunk") -> None:
        """Process one columnar batch of branch events (program order)."""
        ...

    def finish(self) -> object:
        """Finalize and return this consumer's artifact."""
        ...


class EventChunk:
    """A columnar batch of dynamic branch events.

    Holds the four event columns (pcs, targets, taken, timestamps) and
    converts lazily between numpy arrays and plain Python lists, caching
    each direction — so N consumers that iterate events share a single
    ``tolist`` per column, and vectorized consumers share a single
    ``np.asarray`` per column.
    """

    __slots__ = ("_n", "_arrays", "_lists")

    def __init__(
        self,
        n: int,
        arrays: Optional[Tuple[np.ndarray, ...]] = None,
        lists: Optional[Tuple[list, ...]] = None,
    ) -> None:
        if arrays is None and lists is None:
            raise ValueError("chunk needs arrays or lists")
        self._n = n
        self._arrays = arrays
        self._lists = lists

    @classmethod
    def from_lists(
        cls, pcs: list, targets: list, taken: list, timestamps: list
    ) -> "EventChunk":
        return cls(len(pcs), lists=(pcs, targets, taken, timestamps))

    @classmethod
    def from_arrays(
        cls,
        pcs: np.ndarray,
        targets: np.ndarray,
        taken: np.ndarray,
        timestamps: np.ndarray,
    ) -> "EventChunk":
        return cls(len(pcs), arrays=(pcs, targets, taken, timestamps))

    def __len__(self) -> int:
        return self._n

    # -- columnar views -----------------------------------------------------

    def arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(pcs, targets, taken, timestamps) as numpy arrays (cached)."""
        if self._arrays is None:
            pcs, targets, taken, timestamps = self._lists
            self._arrays = (
                np.array(pcs, dtype=np.uint64),
                np.array(targets, dtype=np.uint64),
                np.array(taken, dtype=bool),
                np.array(timestamps, dtype=np.uint64),
            )
        return self._arrays

    def lists(self) -> Tuple[list, list, list, list]:
        """(pcs, targets, taken, timestamps) as Python lists (cached)."""
        if self._lists is None:
            self._lists = tuple(col.tolist() for col in self._arrays)
        return self._lists

    @property
    def pcs(self) -> np.ndarray:
        return self.arrays()[0]

    @property
    def targets(self) -> np.ndarray:
        return self.arrays()[1]

    @property
    def taken(self) -> np.ndarray:
        return self.arrays()[2]

    @property
    def timestamps(self) -> np.ndarray:
        return self.arrays()[3]


@dataclass
class ConsumerStats:
    """Observability counters for one consumer on one bus."""

    name: str
    chunks: int = 0
    events: int = 0
    seconds: float = 0.0

    @property
    def events_per_second(self) -> float:
        if self.seconds <= 0.0:
            return 0.0
        return self.events / self.seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "chunks": self.chunks,
            "events": self.events,
            "seconds": round(self.seconds, 6),
            "events_per_second": round(self.events_per_second, 1),
        }


@dataclass
class PipelineStats:
    """Counters for one bus run (and, merged, for an engine's lifetime)."""

    events: int = 0
    delivered: int = 0
    chunk_flushes: int = 0
    truncated: bool = False
    consumers: Dict[str, ConsumerStats] = field(default_factory=dict)

    def consumer(self, name: str) -> ConsumerStats:
        stats = self.consumers.get(name)
        if stats is None:
            stats = ConsumerStats(name=name)
            self.consumers[name] = stats
        return stats

    def merge(self, other: "PipelineStats") -> None:
        """Fold another run's counters into this accumulator."""
        self.events += other.events
        self.delivered += other.delivered
        self.chunk_flushes += other.chunk_flushes
        self.truncated = self.truncated or other.truncated
        for name, theirs in other.consumers.items():
            mine = self.consumer(name)
            mine.chunks += theirs.chunks
            mine.events += theirs.events
            mine.seconds += theirs.seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "events": self.events,
            "delivered": self.delivered,
            "chunk_flushes": self.chunk_flushes,
            "truncated": self.truncated,
            "consumers": [
                self.consumers[name].as_dict()
                for name in sorted(self.consumers)
            ],
        }


class BranchEventBus:
    """Fans dynamic branch events out to consumers in columnar chunks.

    Usable directly as a simulator branch hook::

        bus = BranchEventBus([profiler, bank], limit=trace_limit)
        Simulator(program, branch_hook=bus).run()
        bus.finish()
        profile = profiler.result
        stats = bank.result

    Args:
        consumers: initial consumer list (more via :meth:`subscribe`).
        chunk_events: events per chunk (block size of the columnar
            buffers).
        limit: optional cap on *delivered* events.  Mirrors the classic
            ``TraceCapture(limit=...)`` semantics: once the cap is hit
            the bus goes quiet but the simulation keeps executing.  A
            limit that is not a multiple of the chunk size truncates
            exactly at the limit.
    """

    def __init__(
        self,
        consumers: Optional[Sequence[EventConsumer]] = None,
        chunk_events: int = DEFAULT_CHUNK_EVENTS,
        limit: Optional[int] = None,
    ) -> None:
        if chunk_events < 1:
            raise ValueError(f"chunk_events must be >= 1, got {chunk_events}")
        if limit is not None and limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        self.chunk_events = chunk_events
        self.limit = limit
        self.stats = PipelineStats()
        self._consumers: List[Tuple[str, EventConsumer]] = []
        self._finished = False
        self._pcs: List[int] = []
        self._targets: List[int] = []
        self._taken: List[bool] = []
        self._timestamps: List[int] = []
        for consumer in consumers or ():
            self.subscribe(consumer)

    # -- consumer management ------------------------------------------------

    def subscribe(
        self, consumer: EventConsumer, name: Optional[str] = None
    ) -> EventConsumer:
        """Register *consumer*; returns it for chaining.

        Names must be unique on one bus (counters are keyed by name); an
        unnamed consumer uses its ``name`` attribute or class name.
        """
        if self._finished:
            raise RuntimeError("bus already finished")
        label = name or getattr(consumer, "name", type(consumer).__name__)
        if any(existing == label for existing, _ in self._consumers):
            raise ValueError(f"duplicate consumer name {label!r}")
        self._consumers.append((label, consumer))
        self.stats.consumer(label)
        return consumer

    @property
    def consumer_names(self) -> List[str]:
        return [name for name, _ in self._consumers]

    # -- live event intake (simulator hook) ---------------------------------

    def on_branch(
        self, pc: int, target: int, taken: bool, instruction_count: int
    ) -> None:
        """Simulator branch-hook entry point (one dynamic branch)."""
        self.stats.events += 1
        pcs = self._pcs
        limit = self.limit
        if limit is not None and self.stats.delivered + len(pcs) >= limit:
            self.stats.truncated = True
            return
        pcs.append(pc)
        self._targets.append(target)
        self._taken.append(taken)
        self._timestamps.append(instruction_count)
        if len(pcs) >= self.chunk_events:
            self._flush()

    @property
    def saturated(self) -> bool:
        """True once the delivery limit has been reached."""
        return (
            self.limit is not None
            and self.stats.delivered + len(self._pcs) >= self.limit
        )

    def __len__(self) -> int:
        """Events delivered or staged so far (i.e. not dropped)."""
        return self.stats.delivered + len(self._pcs)

    # -- chunk fan-out ------------------------------------------------------

    def _flush(self) -> None:
        chunk = EventChunk.from_lists(
            self._pcs, self._targets, self._taken, self._timestamps
        )
        self._pcs = []
        self._targets = []
        self._taken = []
        self._timestamps = []
        self._dispatch(chunk)

    def _dispatch(self, chunk: EventChunk) -> None:
        n = len(chunk)
        if n == 0:
            return
        self.stats.delivered += n
        self.stats.chunk_flushes += 1
        perf_counter = time.perf_counter
        for name, consumer in self._consumers:
            started = perf_counter()
            consumer.on_chunk(chunk)
            elapsed = perf_counter() - started
            counters = self.stats.consumers[name]
            counters.chunks += 1
            counters.events += n
            counters.seconds += elapsed

    def finish(self) -> PipelineStats:
        """Flush the partial tail chunk and finalize every consumer.

        Consumer results are read off the consumer objects themselves
        (each consumer's ``finish`` stores its artifact on ``result``).
        Idempotent: a second call is a no-op.
        """
        if not self._finished:
            self._flush()
            self._finished = True
            for _, consumer in self._consumers:
                consumer.finish()
        return self.stats

    # -- replay from a recorded trace ---------------------------------------

    def feed_trace(self, trace: BranchTrace) -> None:
        """Stream a recorded trace through the bus in array-slice chunks.

        Honors the delivery limit exactly, like live capture.  Does not
        finish the bus — call :meth:`finish` after the last trace.
        """
        if self._pcs:
            self._flush()  # keep program order across mixed live/replay
        n = len(trace)
        self.stats.events += n
        remaining = (
            None
            if self.limit is None
            else max(0, self.limit - self.stats.delivered)
        )
        if remaining is not None and n > remaining:
            n = remaining
            self.stats.truncated = True
        step = self.chunk_events
        for start in range(0, n, step):
            stop = min(start + step, n)
            self._dispatch(
                EventChunk.from_arrays(
                    trace.pcs[start:stop],
                    trace.targets[start:stop],
                    trace.taken[start:stop],
                    trace.timestamps[start:stop],
                )
            )

    @classmethod
    def replay(
        cls,
        trace: BranchTrace,
        consumers: Sequence[EventConsumer],
        chunk_events: int = DEFAULT_CHUNK_EVENTS,
        limit: Optional[int] = None,
    ) -> PipelineStats:
        """One-shot helper: stream *trace* through *consumers* and finish."""
        bus = cls(consumers, chunk_events=chunk_events, limit=limit)
        bus.feed_trace(trace)
        return bus.finish()


__all__ = [
    "BranchEventBus",
    "ConsumerStats",
    "DEFAULT_CHUNK_EVENTS",
    "EventChunk",
    "EventConsumer",
    "PipelineStats",
]
