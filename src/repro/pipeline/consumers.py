"""Bus consumers: the pluggable sinks of the streaming pipeline.

Each consumer implements the two-method bus contract
(:meth:`on_chunk`/:meth:`finish`) and exposes its artifact as
``.result`` after the bus finishes:

* :class:`InterleaveConsumer` — the paper's time-stamp interleave
  analysis, producing an :class:`~repro.profiling.profile.
  InterleaveProfile` byte-identical to ``profile_trace`` over the same
  events;
* :class:`PredictorConsumer` — one predictor bank entry, producing
  :class:`~repro.predictors.simulator.PredictionStats` identical to
  ``simulate_predictor`` (including ``warmup`` handling), via the
  predictors' vectorized chunk fast path where available;
* :class:`TraceBuilder` — the chunked trace writer: accumulates columnar
  numpy blocks and concatenates them into an immutable
  :class:`~repro.trace.events.BranchTrace` at the end (optional — fused
  aggregate-only runs simply leave it off the bus);
* :class:`TraceStatsConsumer` — streaming whole-trace statistics
  (dynamic/static counts, taken fraction, timestamp span) without
  materializing anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..predictors.base import BranchPredictor
from ..predictors.simulator import PredictionStats
from ..profiling.interleave import InterleaveAnalyzer
from ..profiling.profile import InterleaveProfile
from ..trace.events import BranchTrace
from .bus import BranchEventBus, EventChunk

_U64 = np.uint64


class InterleaveConsumer:
    """Streams events into a recency-stack :class:`InterleaveAnalyzer`.

    ``result`` (after ``finish``) matches ``profile_trace`` over the same
    event stream exactly: same branch stats, same pair counts, and
    ``instructions`` set to the last event's time stamp.
    """

    name = "interleave"

    def __init__(self, label: str = "<profile>") -> None:
        self._analyzer = InterleaveAnalyzer(name=label)
        self.result: Optional[InterleaveProfile] = None

    def on_chunk(self, chunk: EventChunk) -> None:
        pcs, _, taken, timestamps = chunk.arrays()
        self._analyzer.observe_chunk(pcs, taken)
        self._analyzer._instructions = int(timestamps[-1])

    def finish(self) -> InterleaveProfile:
        self.result = self._analyzer.finish()
        return self.result

    # -- checkpoint hooks (see repro.checkpoint.snapshot) --------------------

    def snapshot_state(self) -> object:
        return self._analyzer

    def restore_state(self, state: object) -> None:
        self._analyzer = state  # type: ignore[assignment]
        self.result = None


class PredictorConsumer:
    """Feeds one predictor and accumulates its prediction statistics.

    Equivalent to ``simulate_predictor(predictor, trace, ...)`` over the
    same events: the first *warmup* events train the predictor but are
    excluded from every counter (total and per-branch).
    """

    def __init__(
        self,
        predictor: BranchPredictor,
        label: str = "<stream>",
        track_per_branch: bool = True,
        warmup: int = 0,
        name: Optional[str] = None,
    ) -> None:
        if warmup < 0:
            raise ValueError("warmup must be non-negative")
        self.predictor = predictor
        self.name = name or f"predict:{predictor.name}"
        self._stats = PredictionStats(
            predictor=predictor.name, trace=label
        )
        self._track = track_per_branch
        self._warmup = warmup
        self._offset = 0  # events seen before the current chunk
        self.result: Optional[PredictionStats] = None

    def on_chunk(self, chunk: EventChunk) -> None:
        pcs, targets, taken, _ = chunk.arrays()
        n = len(chunk)
        predictions = self.predictor.access_chunk(pcs, taken, targets)
        offset = self._offset
        self._offset = offset + n
        skip = self._warmup - offset  # events of this chunk still warming
        if skip >= n:
            return
        wrong = predictions != taken
        if skip > 0:
            pcs = pcs[skip:]
            wrong = wrong[skip:]
            n -= skip
        self._stats.branches += n
        self._stats.mispredictions += int(np.count_nonzero(wrong))
        if not self._track:
            return
        uniq, inverse = np.unique(pcs, return_inverse=True)
        executions = np.bincount(inverse, minlength=len(uniq))
        misses = np.bincount(
            inverse[wrong], minlength=len(uniq)
        )
        per_branch = self._stats.per_branch
        for pc, ex, mi in zip(
            uniq.tolist(), executions.tolist(), misses.tolist()
        ):
            entry = per_branch.get(pc)
            if entry is None:
                per_branch[pc] = [ex, mi]
            else:
                entry[0] += ex
                entry[1] += mi

    def finish(self) -> PredictionStats:
        self.result = self._stats
        return self.result

    # -- checkpoint hooks (see repro.checkpoint.snapshot) --------------------

    def snapshot_state(self) -> object:
        # The predictor object itself is snapshotted: its tables are
        # arbitrary per-implementation attributes (numpy arrays, ints)
        # that the checkpoint store pickles wholesale.
        return {
            "predictor": self.predictor,
            "stats": self._stats,
            "offset": self._offset,
        }

    def restore_state(self, state: object) -> None:
        self.predictor = state["predictor"]  # type: ignore[index]
        self._stats = state["stats"]  # type: ignore[index]
        self._offset = state["offset"]  # type: ignore[index]
        self.result = None


class TraceBuilder:
    """The chunked trace writer: columnar blocks, concatenated at finish.

    Unlike the seed's :class:`~repro.trace.capture.TraceCapture` (one
    unbounded Python list per column, each event a boxed ``int``), blocks
    are compact numpy arrays as soon as a chunk is full, so memory stays
    ~8 bytes per event per column and long traces stop being capped by
    the Python object heap.
    """

    name = "trace"

    def __init__(self, label: str = "<capture>") -> None:
        self.label = label
        self._blocks: List[EventChunk] = []
        self._events = 0
        self.result: Optional[BranchTrace] = None

    def __len__(self) -> int:
        return self._events

    def on_chunk(self, chunk: EventChunk) -> None:
        chunk.arrays()  # materialize columnar blocks eagerly
        self._blocks.append(chunk)
        self._events += len(chunk)

    def finish(self, label: Optional[str] = None) -> BranchTrace:
        name = label or self.label
        if not self._blocks:  # empty capture: well-formed zero-length trace
            empty = np.zeros(0, dtype=_U64)
            self.result = BranchTrace(
                empty, empty, np.zeros(0, dtype=bool), empty, name=name
            )
            return self.result
        columns = [block.arrays() for block in self._blocks]
        self.result = BranchTrace(
            np.concatenate([cols[0] for cols in columns]),
            np.concatenate([cols[1] for cols in columns]),
            np.concatenate([cols[2] for cols in columns]),
            np.concatenate([cols[3] for cols in columns]),
            name=name,
        )
        return self.result

    # -- checkpoint hooks (see repro.checkpoint.snapshot) --------------------

    def snapshot_state(self) -> object:
        # Column arrays, not EventChunk objects: the chunk is a lazy
        # dual-representation cache, the arrays are the actual state.
        return {
            "label": self.label,
            "events": self._events,
            "columns": [block.arrays() for block in self._blocks],
        }

    def restore_state(self, state: object) -> None:
        self.label = state["label"]  # type: ignore[index]
        self._events = state["events"]  # type: ignore[index]
        self._blocks = [
            EventChunk.from_arrays(*cols)
            for cols in state["columns"]  # type: ignore[index]
        ]
        self.result = None


@dataclass(frozen=True)
class StreamTraceStats:
    """Whole-trace statistics computed without materializing the trace."""

    name: str
    events: int
    taken: int
    static_branches: int
    first_timestamp: int
    last_timestamp: int

    @property
    def taken_fraction(self) -> float:
        if self.events == 0:
            return 0.0
        return self.taken / self.events

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "events": self.events,
            "taken": self.taken,
            "taken_fraction": round(self.taken_fraction, 6),
            "static_branches": self.static_branches,
            "first_timestamp": self.first_timestamp,
            "last_timestamp": self.last_timestamp,
        }


class TraceStatsConsumer:
    """Streaming Table-1-style counters (no trace materialization)."""

    name = "stats"

    def __init__(self, label: str = "<stream>") -> None:
        self.label = label
        self._events = 0
        self._taken = 0
        self._statics: set = set()
        self._first_ts: Optional[int] = None
        self._last_ts = 0
        self.result: Optional[StreamTraceStats] = None

    def on_chunk(self, chunk: EventChunk) -> None:
        pcs, _, taken, timestamps = chunk.arrays()
        self._events += len(chunk)
        self._taken += int(np.count_nonzero(taken))
        self._statics.update(np.unique(pcs).tolist())
        if self._first_ts is None:
            self._first_ts = int(timestamps[0])
        self._last_ts = int(timestamps[-1])

    def finish(self) -> StreamTraceStats:
        self.result = StreamTraceStats(
            name=self.label,
            events=self._events,
            taken=self._taken,
            static_branches=len(self._statics),
            first_timestamp=self._first_ts or 0,
            last_timestamp=self._last_ts,
        )
        return self.result

    # -- checkpoint hooks (see repro.checkpoint.snapshot) --------------------

    def snapshot_state(self) -> object:
        return {
            "label": self.label,
            "events": self._events,
            "taken": self._taken,
            "statics": set(self._statics),
            "first_ts": self._first_ts,
            "last_ts": self._last_ts,
        }

    def restore_state(self, state: object) -> None:
        self.label = state["label"]  # type: ignore[index]
        self._events = state["events"]  # type: ignore[index]
        self._taken = state["taken"]  # type: ignore[index]
        self._statics = set(state["statics"])  # type: ignore[index]
        self._first_ts = state["first_ts"]  # type: ignore[index]
        self._last_ts = state["last_ts"]  # type: ignore[index]
        self.result = None


def replay_bank(
    trace: BranchTrace,
    predictors: Sequence[BranchPredictor],
    warmup: int = 0,
    track_per_branch: bool = False,
    chunk_events: Optional[int] = None,
) -> Dict[str, PredictionStats]:
    """Run a predictor bank over a recorded trace in one chunked pass.

    The single-pass replacement for calling ``simulate_predictor`` once
    per predictor: the trace's columns are sliced into chunks once and
    every bank entry consumes the same chunk views (with the vectorized
    fast path where the predictor provides one).

    Raises:
        ValueError: if two predictors share a name (results would
            collide), mirroring ``compare_predictors``.
    """
    consumers: List[PredictorConsumer] = []
    seen = set()
    for predictor in predictors:
        if predictor.name in seen:
            raise ValueError(
                f"duplicate predictor name {predictor.name!r}"
            )
        seen.add(predictor.name)
        consumers.append(
            PredictorConsumer(
                predictor,
                label=trace.name,
                track_per_branch=track_per_branch,
                warmup=warmup,
            )
        )
    kwargs = {} if chunk_events is None else {"chunk_events": chunk_events}
    BranchEventBus.replay(trace, consumers, **kwargs)
    return {c.predictor.name: c.result for c in consumers}


__all__ = [
    "InterleaveConsumer",
    "PredictorConsumer",
    "StreamTraceStats",
    "TraceBuilder",
    "TraceStatsConsumer",
    "replay_bank",
]
