"""Single-pass streaming pipeline: simulate → profile → predict, fused.

The :class:`BranchEventBus` sits on the simulator's branch hook, batches
dynamic branch events into columnar numpy chunks, and fans each chunk
out to pluggable consumers, so one simulation (or one pass over a
recorded trace) yields the interleave profile, prediction statistics for
a whole predictor bank, streaming trace stats, and — optionally — the
archived trace itself.  See ``docs/PIPELINE.md``.
"""

from .bus import (
    DEFAULT_CHUNK_EVENTS,
    BranchEventBus,
    ConsumerStats,
    EventChunk,
    EventConsumer,
    PipelineStats,
)
from .consumers import (
    InterleaveConsumer,
    PredictorConsumer,
    StreamTraceStats,
    TraceBuilder,
    TraceStatsConsumer,
    replay_bank,
)

__all__ = [
    "BranchEventBus",
    "ConsumerStats",
    "DEFAULT_CHUNK_EVENTS",
    "EventChunk",
    "EventConsumer",
    "InterleaveConsumer",
    "PipelineStats",
    "PredictorConsumer",
    "StreamTraceStats",
    "TraceBuilder",
    "TraceStatsConsumer",
    "replay_bank",
]
