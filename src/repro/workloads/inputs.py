"""Deterministic input-set generators.

Each paper benchmark ran on a reference input (Table 1); the analogs run on
seeded synthetic inputs with matching character: English-like token text
(tex/perl/gcc sources), run-heavy binary (compress), and structured mixed
data.  Every generator is a pure function of (size, seed).
"""

from __future__ import annotations

import numpy as np

_WORDS = (
    "the of and to in is that it was for on are as with his they at be "
    "this have from or one had by word but not what all were we when your "
    "can said there use an each which she do how their if will up other "
    "about out many then them these so some her would make like him into "
    "time has look two more write go see number no way could people my "
    "than first water been call who oil its now find long down day did get "
    "come made may part over new sound take only little work know place "
    "year live me back give most very after thing our just name good "
    "sentence man think say great where help through much before line "
    "right too mean old any same tell boy follow came want show also "
    "around form three small set put end does another well large must big "
    "even such because turn here why ask went men read need land different "
    "home us move try kind hand picture again change off play spell air "
    "away animal house point page letter mother answer found study still "
    "learn should america world"
).split()

_PUNCTUATION = [". ", ", ", "; ", "! ", "? ", ": ", " - "]


def text_input(size: int, seed: int = 0) -> bytes:
    """English-like token stream: words, digits, punctuation, newlines."""
    if size < 0:
        raise ValueError("size must be non-negative")
    rng = np.random.default_rng(seed)
    parts = []
    length = 0
    column = 0
    while length < size:
        roll = rng.random()
        if roll < 0.78:
            token = _WORDS[int(rng.integers(len(_WORDS)))] + " "
        elif roll < 0.90:
            token = str(int(rng.integers(0, 10000))) + " "
        else:
            token = _PUNCTUATION[int(rng.integers(len(_PUNCTUATION)))]
        column += len(token)
        if column > 68:
            token = token.rstrip() + "\n"
            column = 0
        parts.append(token)
        length += len(token)
    return "".join(parts).encode("latin-1")[:size]


def binary_runs(size: int, seed: int = 0, mean_run: int = 6) -> bytes:
    """Run-heavy binary data (what RLE-style compressors eat)."""
    if size < 0:
        raise ValueError("size must be non-negative")
    if mean_run < 1:
        raise ValueError("mean_run must be >= 1")
    rng = np.random.default_rng(seed)
    out = bytearray()
    while len(out) < size:
        byte = int(rng.integers(0, 64))  # small alphabet -> long runs
        run = 1 + int(rng.geometric(1.0 / mean_run))
        out.extend(bytes([byte]) * run)
    return bytes(out[:size])


def mixed_input(size: int, seed: int = 0) -> bytes:
    """Alternating text and binary sections (document-with-images shape)."""
    if size < 0:
        raise ValueError("size must be non-negative")
    rng = np.random.default_rng(seed)
    out = bytearray()
    section = 0
    while len(out) < size:
        chunk = int(rng.integers(200, 800))
        if section % 2 == 0:
            out.extend(text_input(chunk, seed=seed + section + 1))
        else:
            out.extend(binary_runs(chunk, seed=seed + section + 1))
        section += 1
    return bytes(out[:size])


INPUT_KINDS = {
    "text": text_input,
    "binary": binary_runs,
    "mixed": mixed_input,
}


def make_input(kind: str, size: int, seed: int = 0) -> bytes:
    """Dispatch on input *kind* (``text``/``binary``/``mixed``).

    Raises:
        KeyError: on an unknown kind.
    """
    if kind not in INPUT_KINDS:
        raise KeyError(f"unknown input kind {kind!r}; known: {sorted(INPUT_KINDS)}")
    return INPUT_KINDS[kind](size, seed)
