"""Workload program builder.

Turns a declarative :class:`WorkloadSpec` — phases of kernel calls, possibly
with replicated kernel instances — into an assembled
:class:`~repro.isa.program.Program` plus its input bytes.

Replication is the mechanism for reaching realistic *static* branch counts:
``KernelCall(kernel="fsm", instance=7)`` instantiates a 7th textual copy of
the FSM kernel at a distinct address, the way a large program has many
distinct functions with similar structure (the paper's gcc has >16k static
conditional branches; analogs approximate scale with copies).

Driver structure (generated assembly)::

    main:
        for round in rounds:            # outer loop in s1
            for each phase:
                for i in phase.iterations:   # loop in s0
                    call <kernel><suffix> with its arguments
                    s2 += a0                 # result checksum
        print s2; exit 0

Scratch regions are assigned per (kernel, instance) pair from a fixed arena
so instances never share state.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..asm import assemble
from ..isa.program import Program
from .inputs import make_input
from .kernels import get_kernel

SCRATCH_BASE = 0x0040_0000
SCRATCH_ALIGN = 0x1000  # 4 KiB granularity


@dataclass(frozen=True)
class KernelCall:
    """One call in a phase.

    Attributes:
        kernel: registry name.
        instance: which textual copy of the kernel to call.
        args: integer arguments.  For kernels with scratch, the scratch
            address is passed in ``a0`` and *args* fill ``a1``/``a2``; for
            scratch-free kernels *args* start at ``a0``.
    """

    kernel: str
    instance: int = 0
    args: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.instance < 0:
            raise ValueError("instance must be non-negative")
        if len(self.args) > 3:
            raise ValueError("at most three integer arguments are supported")


@dataclass(frozen=True)
class PhaseSpec:
    """A phase: a call sequence repeated *iterations* times."""

    calls: Tuple[KernelCall, ...]
    iterations: int = 1

    def __post_init__(self) -> None:
        if not self.calls:
            raise ValueError("phase must contain at least one call")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")


@dataclass(frozen=True)
class InputSpec:
    """Input-set description: generator kind, size and seed."""

    kind: str = "text"
    size: int = 4096
    seed: int = 0


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete benchmark analog.

    Attributes:
        name: benchmark label (e.g. ``"compress"``).
        phases: phase list, executed in order each round.
        rounds: whole-phase-list repetitions (phase *revisits* are what
            create cross-phase temporal separation in the trace).
        input: input-set description.
        random_seed: seed for the in-simulator RANDOM syscall.
        description: one-line summary of what the analog models.
        fuel: recommended instruction budget when simulating (the paper's
            "first 500 million instructions" cap, downscaled).
    """

    name: str
    phases: Tuple[PhaseSpec, ...]
    rounds: int = 1
    input: InputSpec = field(default_factory=InputSpec)
    random_seed: int = 0x2545F491
    description: str = ""
    fuel: int = 5_000_000
    #: (min, max) filler words inserted before each kernel instance,
    #: scattering the functions across a realistically large text segment
    #: so PC-indexed tables alias the way they do for real binaries.
    #: None disables scattering (functions packed contiguously).
    text_scatter: Optional[Tuple[int, int]] = (256, 2048)

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("workload must have at least one phase")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")


@dataclass(frozen=True)
class BuiltWorkload:
    """Assembly output: the program, its input bytes, and metadata."""

    spec: WorkloadSpec
    program: Program
    input_data: bytes
    scratch_map: Dict[Tuple[str, int], int]

    @property
    def static_conditional_branches(self) -> int:
        """Static conditional branch count of the built program."""
        return len(self.program.static_conditional_branches())

    def kernel_extents(self) -> Dict[Tuple[str, int], Tuple[int, int]]:
        """Text-segment extent per kernel instance: key -> (start, end).

        Derived from the instances' entry symbols; the driver occupies
        [text_base, first entry).  Used by the branch-alignment transform
        to attribute static branches to the kernel instance that owns
        them.
        """
        entries: List[Tuple[int, Tuple[str, int]]] = []
        for symbol, address in self.program.symbols.items():
            key = _entry_symbol_key(symbol)
            if key is not None:
                entries.append((address, key))
        entries.sort()
        text_end = self.program.text_base + 4 * len(self.program)
        extents: Dict[Tuple[str, int], Tuple[int, int]] = {}
        for i, (start, key) in enumerate(entries):
            end = entries[i + 1][0] if i + 1 < len(entries) else text_end
            extents[key] = (start, end)
        return extents


def _entry_symbol_key(symbol: str) -> Optional[Tuple[str, int]]:
    """Map an entry label like ``fsm_3`` back to its instance key."""
    from .kernels import kernel_registry

    registry = kernel_registry()
    if symbol in registry:
        return (symbol, 0)
    if "_" in symbol:
        base, _, tail = symbol.rpartition("_")
        if base in registry and tail.isdigit():
            return (base, int(tail))
    return None


def _suffix(kernel: str, instance: int) -> str:
    return "" if instance == 0 else f"_{instance}"


def build_workload(
    spec: WorkloadSpec,
    explicit_pads: Optional[Dict[Tuple[str, int], int]] = None,
) -> BuiltWorkload:
    """Assemble the driver + kernel instances for *spec*.

    Args:
        spec: the workload description.
        explicit_pads: optional filler words preceding each kernel instance
            (key -> words), overriding the spec's pseudo-random text
            scatter.  The branch-alignment transform uses this to realise
            a computed placement; instances absent from the map get no
            pad.

    Raises:
        KeyError: if a call names an unknown kernel.
        ValueError: on malformed specs (propagated from the dataclasses).
    """
    # collect the distinct kernel instances used
    instances: List[Tuple[str, int]] = []
    seen = set()
    for phase in spec.phases:
        for call in phase.calls:
            get_kernel(call.kernel)  # raises KeyError early for bad names
            key = (call.kernel, call.instance)
            if key not in seen:
                seen.add(key)
                instances.append(key)

    # assign scratch regions
    scratch_map: Dict[Tuple[str, int], int] = {}
    cursor = SCRATCH_BASE
    for key in instances:
        kernel = get_kernel(key[0])
        if kernel.scratch_bytes > 0:
            scratch_map[key] = cursor
            size = (
                (kernel.scratch_bytes + SCRATCH_ALIGN - 1)
                // SCRATCH_ALIGN
                * SCRATCH_ALIGN
            )
            cursor += size

    driver = _emit_driver(spec, scratch_map)
    if explicit_pads is not None:
        pads = [explicit_pads.get(key, 0) for key in instances]
    else:
        pads = _scatter_pads(spec, len(instances))
    bodies: List[str] = []
    for (kernel, instance), pad in zip(instances, pads):
        if pad:
            bodies.append(f".skip {pad}")
        bodies.append(get_kernel(kernel).emit(_suffix(kernel, instance)))
    source = "\n".join([driver] + bodies)
    program = assemble(source, name=spec.name)
    input_data = make_input(spec.input.kind, spec.input.size, spec.input.seed)
    return BuiltWorkload(
        spec=spec,
        program=program,
        input_data=input_data,
        scratch_map=scratch_map,
    )


def _scatter_pads(spec: WorkloadSpec, count: int) -> List[int]:
    """Deterministic filler sizes (words) preceding each kernel instance."""
    if spec.text_scatter is None or count == 0:
        return [0] * count
    low, high = spec.text_scatter
    if not 0 <= low <= high:
        raise ValueError(f"bad text_scatter range {spec.text_scatter}")
    # xorshift-based, seeded by a stable hash of the workload name
    # (Python's hash() is salted per process and would not reproduce)
    state = (
        zlib.crc32(spec.name.encode("utf-8")) ^ 0x9E3779B9
    ) & 0xFFFFFFFF or 1
    pads: List[int] = []
    span = high - low + 1
    for _ in range(count):
        state ^= (state << 13) & 0xFFFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0xFFFFFFFF
        pads.append(low + state % span)
    return pads


def _emit_driver(
    spec: WorkloadSpec, scratch_map: Dict[Tuple[str, int], int]
) -> str:
    lines: List[str] = [".text", "main:", "    li s1, 0", "    li s2, 0"]
    lines.append("main_round:")
    for phase_index, phase in enumerate(spec.phases):
        label = f"main_phase{phase_index}"
        lines.append(f"    li s0, 0")
        lines.append(f"{label}:")
        for call in phase.calls:
            lines.extend(_emit_call(call, scratch_map))
        lines.append("    addi s0, s0, 1")
        lines.append(f"    li t0, {phase.iterations}")
        lines.append(f"    blt s0, t0, {label}")
    lines.append("    addi s1, s1, 1")
    lines.append(f"    li t0, {spec.rounds}")
    lines.append("    blt s1, t0, main_round")
    lines.append("    mv a1, s2")
    lines.append("    li a0, 1")       # print the accumulated checksum
    lines.append("    ecall")
    lines.append("    li a0, 0")
    lines.append("    li a1, 0")
    lines.append("    ecall")
    return "\n".join(lines)


def _emit_call(
    call: KernelCall, scratch_map: Dict[Tuple[str, int], int]
) -> List[str]:
    kernel = get_kernel(call.kernel)
    suffix = _suffix(call.kernel, call.instance)
    lines: List[str] = []
    arg_regs = ["a0", "a1", "a2", "a3"]
    next_reg = 0
    scratch = scratch_map.get((call.kernel, call.instance))
    if scratch is not None:
        lines.append(f"    li a0, {scratch}")
        next_reg = 1
    for value in call.args:
        lines.append(f"    li {arg_regs[next_reg]}, {value}")
        next_reg += 1
    lines.append(f"    call {call.kernel}{suffix}")
    lines.append("    add s2, s2, a0")
    return lines


def run_workload(
    built: BuiltWorkload,
    max_instructions: int = 0,
    branch_hook: Optional[object] = None,
    backend: Optional[object] = None,
):
    """Simulate a built workload; returns the simulator's RunResult.

    Args:
        built: output of :func:`build_workload`.
        max_instructions: fuel limit; 0 uses the spec's recommended budget.
        branch_hook: optional branch observer (trace capture / analyzer).
        backend: simulation backend name or instance (default interpreter).
    """
    from ..sim.machine import Simulator

    simulator = Simulator(
        built.program,
        input_data=built.input_data,
        branch_hook=branch_hook,  # type: ignore[arg-type]
        random_seed=built.spec.random_seed,
        backend=backend,  # type: ignore[arg-type]
    )
    fuel = max_instructions or built.spec.fuel
    return simulator.run(max_instructions=fuel)


def replicated_calls(
    kernel: str,
    instances: int,
    args: Sequence[int] = (),
) -> Tuple[KernelCall, ...]:
    """Convenience: one call per instance 0..instances-1 with shared args."""
    if instances < 1:
        raise ValueError("instances must be >= 1")
    return tuple(
        KernelCall(kernel=kernel, instance=i, args=tuple(args))
        for i in range(instances)
    )
