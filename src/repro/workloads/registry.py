"""Declarative benchmark-set registry and selector algebra.

The single source of truth for *which benchmarks a run covers*.  Every
CLI path, experiment and service endpoint resolves its benchmark
selection here instead of re-implementing comma-splitting or importing
hard-coded tuples; the legacy ``TABLE2_BENCHMARKS``-style constants in
:mod:`repro.workloads.suite` are deprecated read-only views over this
registry.

Named sets (SPEC2017 ``benchmark_sets.py`` style)::

    paper6    the six SPECint95 analogs (Table 1, top half)
    unix      the UNIX application analogs (Table 1, bottom half)
    table2    the Table 2 row order (paper §4.2)
    table34   the Table 3/4 row order (paper §5, with input variants)
    figures   the benchmarks plotted in Figures 3 and 4
    variants  the _a/_b input-set variant pairs (§5.2)
    smoke     a three-benchmark quick set (default scale 0.05)
    all       every registered selection name, suite order

Selector grammar — an expression of terms combined left to right:

* ``+`` (or ``,``) unions the next term in;
* ``-`` removes the next term;
* a term is a set name, a benchmark name, or a glob over benchmark
  names (``perl_*``, ``ss_?``).

``unix+paper6-gcc`` is every UNIX analog plus the SPECint95 analogs
minus gcc; ``all-variants`` is the suite without the input-variant
pairs.  Resolution is deterministic and, for union-only expressions,
order-independent: members are always emitted in canonical suite order,
deduplicated.  Unknown names raise the typed
:class:`~repro.errors.UnknownBenchmark` / :class:`~repro.errors.UnknownSet`
errors carrying a near-miss ``suggestion``, which the CLI renders as an
exit-2 diagnostic.

Per-set metadata (``default_scale``, ``default_trace_limit``) gives
callers a sensible run configuration when the user did not pick one,
and :func:`estimated_cost` exposes the suite's fuel budgets so the
shard partitioner (:mod:`repro.eval.shards`) can balance work across
hosts.
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass
from fnmatch import fnmatchcase
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import SelectionError, UnknownBenchmark, UnknownSet

__all__ = [
    "BenchmarkSet",
    "Selection",
    "benchmark_sets",
    "estimated_cost",
    "known_benchmarks",
    "members",
    "resolve_benchmark",
    "resolve_selection",
]


@dataclass(frozen=True)
class BenchmarkSet:
    """One named, ordered benchmark collection.

    Attributes:
        name: registry key (the selector term).
        members: benchmark names in presentation order; alias names
            (``perl``, ``ss``) are kept as-is, exactly like the legacy
            tuples, so artifact tags and table row labels are unchanged.
        description: one-line summary for ``repro list``.
        default_scale: the scale a run of this set uses when the caller
            does not pick one.
        default_trace_limit: per-run captured-event cap default (None =
            unbounded).
    """

    name: str
    members: Tuple[str, ...]
    description: str
    default_scale: float = 1.0
    default_trace_limit: Optional[int] = None


@dataclass(frozen=True)
class Selection:
    """A resolved benchmark selection.

    Attributes:
        expression: the selector text that produced this selection.
        names: resolved benchmark names in canonical suite order.
        sets: registry sets the expression referenced, in reference
            order (empty for pure name/glob selections).
        default_scale: the referenced sets' agreed default scale, or
            None when no set was referenced / the sets disagree.
        default_trace_limit: likewise for the trace limit.
    """

    expression: str
    names: Tuple[str, ...]
    sets: Tuple[str, ...] = ()
    default_scale: Optional[float] = None
    default_trace_limit: Optional[int] = None


#: Order used by Table 2 (paper §4.2).
_TABLE2 = (
    "compress", "gcc", "ijpeg", "li", "m88ksim", "perl",
    "chess", "pgp", "plot", "python", "ss",
)

#: Order used by Tables 3 and 4 (paper §5).
_TABLE34 = (
    "chess", "compress", "gcc", "gs", "li", "m88ksim",
    "perl_a", "perl_b", "pgp", "plot", "python", "ss_a", "ss_b", "tex",
)

#: Benchmarks plotted in Figures 3 and 4.
_FIGURES = (
    "compress", "gcc", "ijpeg", "li", "m88ksim", "perl",
    "chess", "gs", "pgp", "plot", "python", "ss", "tex",
)

#: Union in first-seen order (the historical ``ALL_BENCHMARKS`` order).
_ALL = tuple(dict.fromkeys(_TABLE2 + _TABLE34 + _FIGURES))


@lru_cache(maxsize=1)
def benchmark_sets() -> Dict[str, BenchmarkSet]:
    """The registry: set name -> :class:`BenchmarkSet`, insertion order.

    Built lazily (and validated against the suite) on first use; the
    mapping is cached, so treat it as read-only.
    """
    sets = {
        s.name: s
        for s in (
            BenchmarkSet(
                "paper6",
                ("compress", "gcc", "ijpeg", "li", "m88ksim", "perl"),
                "the six SPECint95 analogs (Table 1, top half)",
            ),
            BenchmarkSet(
                "unix",
                ("chess", "gs", "pgp", "plot", "python", "ss", "tex"),
                "the UNIX application analogs (Table 1, bottom half)",
            ),
            BenchmarkSet(
                "table2", _TABLE2, "Table 2 row order (paper §4.2)"
            ),
            BenchmarkSet(
                "table34",
                _TABLE34,
                "Table 3/4 row order (paper §5, input variants split)",
            ),
            BenchmarkSet(
                "figures", _FIGURES, "benchmarks plotted in Figures 3/4"
            ),
            BenchmarkSet(
                "variants",
                ("perl_a", "perl_b", "ss_a", "ss_b"),
                "the _a/_b input-set variant pairs (§5.2)",
            ),
            BenchmarkSet(
                "smoke",
                ("plot", "pgp", "compress"),
                "three quick analogs for demos and fault injection",
                default_scale=0.05,
            ),
            BenchmarkSet(
                "all", _ALL, "every registered selection name, suite order"
            ),
        )
    }
    known = set(known_benchmarks())
    for s in sets.values():
        stray = [m for m in s.members if m not in known]
        if stray:  # registry definition bug: fail loudly at first use
            raise SelectionError(
                f"benchmark set {s.name!r} names unknown benchmarks: "
                f"{stray}",
                set=s.name,
                unknown=stray,
            )
    return sets


@lru_cache(maxsize=1)
def known_benchmarks() -> Tuple[str, ...]:
    """Every resolvable benchmark name, in canonical suite order.

    Alias names (``perl``/``ss`` for the ``_a`` variants) are included:
    they are distinct *selection* names even though they build the same
    workload, exactly as the legacy tuples treated them.
    """
    from .suite import _ALIASES, benchmark_suite

    names = list(benchmark_suite(1.0)) + sorted(_ALIASES)
    # canonical order: the historical ALL order first, stragglers after
    rank = {name: index for index, name in enumerate(_ALL)}
    return tuple(
        sorted(dict.fromkeys(names), key=lambda n: (rank.get(n, len(rank)), n))
    )


def members(set_name: str) -> Tuple[str, ...]:
    """The member tuple of one registered set.

    Raises:
        UnknownSet: for unregistered set names (with a near-miss
            suggestion in the message and context).
    """
    sets = benchmark_sets()
    if set_name not in sets:
        raise UnknownSet(
            _unknown_message("benchmark set", set_name, sorted(sets)),
            set=set_name,
            suggestion=_closest(set_name, sets),
        )
    return sets[set_name].members


def resolve_benchmark(name: str) -> str:
    """Validate one benchmark name, returning it unchanged.

    The single-benchmark counterpart of :func:`resolve_selection`: CLI
    paths that take one positional benchmark route through here so an
    unknown name produces the same typed exit-2 diagnostic (with a
    near-miss suggestion) as a bad selector expression.

    Raises:
        UnknownBenchmark: for unregistered names.
    """
    if name in known_benchmarks():
        return name
    raise UnknownBenchmark(
        _unknown_message("benchmark", name, list(known_benchmarks())),
        benchmark=name,
        suggestion=_closest(name, known_benchmarks()),
    )


#: term separators: ``+`` and ``,`` union, ``-`` differences.
_TOKEN = re.compile(r"([+,\-])")

#: characters that mark a term as a glob pattern.
_GLOB_CHARS = frozenset("*?[")


def resolve_selection(
    selector: Union[str, Sequence[str]],
) -> Selection:
    """Resolve a selector expression to a concrete benchmark selection.

    *selector* is either one expression string (``"unix+paper6-gcc"``,
    ``"table2"``, ``"perl_*"``, ``"plot,pgp"``) or a sequence of terms
    that are unioned (the ``--benchmarks a b c`` CLI form).  Members are
    returned in canonical suite order, deduplicated, so union-only
    expressions resolve order-independently.

    Raises:
        UnknownBenchmark: a term (or glob) matched no benchmark.
        UnknownSet: a term looked like a set name but is not registered.
        SelectionError: a malformed expression, or one that resolves to
            no benchmarks at all.
    """
    if not isinstance(selector, str):
        selector = "+".join(selector)
    expression = selector.strip()
    if not expression:
        raise SelectionError("empty benchmark selector", selector=selector)
    included: set = set()
    referenced_sets: List[str] = []
    op = "+"
    for token in _TOKEN.split(expression):
        token = token.strip()
        if not token:
            continue
        if token in "+,-":
            op = "+" if token in "+," else "-"
            continue
        names = _resolve_term(token, referenced_sets)
        if op == "+":
            included.update(names)
        else:
            included.difference_update(names)
    if not included:
        raise SelectionError(
            f"selector {expression!r} resolves to no benchmarks",
            selector=expression,
        )
    rank = {name: index for index, name in enumerate(known_benchmarks())}
    ordered = tuple(sorted(included, key=rank.__getitem__))
    scale = _agreed(referenced_sets, "default_scale")
    limit = _agreed(referenced_sets, "default_trace_limit")
    return Selection(
        expression=expression,
        names=ordered,
        sets=tuple(dict.fromkeys(referenced_sets)),
        default_scale=scale,
        default_trace_limit=limit,
    )


def estimated_cost(name: str, scale: float = 1.0) -> int:
    """Estimated simulation cost of one benchmark, in fuel units.

    The suite's per-benchmark fuel budget is proportional to the work a
    full run performs, which makes it an honest static cost model for
    balancing shards (:mod:`repro.eval.shards`) without profiling first.

    Raises:
        UnknownBenchmark: for unregistered names.
    """
    from .suite import get_benchmark

    return get_benchmark(resolve_benchmark(name), scale=scale).fuel


# -- internals --------------------------------------------------------------


def _resolve_term(term: str, referenced_sets: List[str]) -> List[str]:
    """One selector term -> benchmark names (set, glob or plain name)."""
    sets = benchmark_sets()
    if term in sets:
        referenced_sets.append(term)
        return list(sets[term].members)
    if _GLOB_CHARS.intersection(term):
        matched = [
            name for name in known_benchmarks() if fnmatchcase(name, term)
        ]
        if not matched:
            raise UnknownBenchmark(
                f"glob {term!r} matches no registered benchmark",
                benchmark=term,
            )
        return matched
    if term in known_benchmarks():
        return [term]
    # Unknown term: decide which typed error by what it is closest to.
    close_set = _closest(term, sets)
    close_name = _closest(term, known_benchmarks())
    if close_set and not close_name:
        raise UnknownSet(
            _unknown_message("benchmark set", term, sorted(sets)),
            set=term,
            suggestion=close_set,
        )
    raise UnknownBenchmark(
        _unknown_message(
            "benchmark", term, list(known_benchmarks()) + sorted(sets)
        ),
        benchmark=term,
        suggestion=close_name or close_set,
    )


def _closest(term: str, candidates: Iterable[str]) -> Optional[str]:
    matches = difflib.get_close_matches(term, list(candidates), n=1)
    return matches[0] if matches else None


def _unknown_message(kind: str, term: str, candidates: List[str]) -> str:
    closest = _closest(term, candidates)
    hint = f" (did you mean {closest!r}?)" if closest else ""
    return f"unknown {kind} {term!r}{hint}"


def _agreed(set_names: Sequence[str], attribute: str):
    """The sets' shared default for *attribute*, or None on disagreement."""
    values = {
        getattr(benchmark_sets()[name], attribute)
        for name in dict.fromkeys(set_names)
    }
    if len(values) == 1:
        return values.pop()
    return None
