"""Workload substrate: kernels, inputs, builder and the benchmark suite."""

from .build import (
    BuiltWorkload,
    InputSpec,
    KernelCall,
    PhaseSpec,
    WorkloadSpec,
    build_workload,
    replicated_calls,
    run_workload,
)
from .inputs import binary_runs, make_input, mixed_input, text_input
from .kernels import KernelSpec, get_kernel, kernel_registry
from .suite import (
    ALL_BENCHMARKS,
    FIGURE_BENCHMARKS,
    TABLE2_BENCHMARKS,
    TABLE34_BENCHMARKS,
    benchmark_names,
    benchmark_suite,
    get_benchmark,
)

__all__ = [
    "ALL_BENCHMARKS",
    "BuiltWorkload",
    "FIGURE_BENCHMARKS",
    "InputSpec",
    "KernelCall",
    "KernelSpec",
    "PhaseSpec",
    "TABLE2_BENCHMARKS",
    "TABLE34_BENCHMARKS",
    "WorkloadSpec",
    "benchmark_names",
    "benchmark_suite",
    "binary_runs",
    "build_workload",
    "get_benchmark",
    "get_kernel",
    "kernel_registry",
    "make_input",
    "mixed_input",
    "replicated_calls",
    "run_workload",
    "text_input",
]
