"""Workload substrate: kernels, inputs, builder, suite and set registry."""

from .build import (
    BuiltWorkload,
    InputSpec,
    KernelCall,
    PhaseSpec,
    WorkloadSpec,
    build_workload,
    replicated_calls,
    run_workload,
)
from .inputs import binary_runs, make_input, mixed_input, text_input
from .kernels import KernelSpec, get_kernel, kernel_registry
from .registry import (
    BenchmarkSet,
    Selection,
    benchmark_sets,
    estimated_cost,
    known_benchmarks,
    members,
    resolve_benchmark,
    resolve_selection,
)
from .suite import (
    ALL_BENCHMARKS,
    FIGURE_BENCHMARKS,
    TABLE2_BENCHMARKS,
    TABLE34_BENCHMARKS,
    benchmark_names,
    benchmark_suite,
    get_benchmark,
)

__all__ = [
    "ALL_BENCHMARKS",
    "BenchmarkSet",
    "BuiltWorkload",
    "FIGURE_BENCHMARKS",
    "InputSpec",
    "KernelCall",
    "KernelSpec",
    "PhaseSpec",
    "Selection",
    "TABLE2_BENCHMARKS",
    "TABLE34_BENCHMARKS",
    "WorkloadSpec",
    "benchmark_names",
    "benchmark_sets",
    "benchmark_suite",
    "binary_runs",
    "build_workload",
    "estimated_cost",
    "get_benchmark",
    "get_kernel",
    "kernel_registry",
    "known_benchmarks",
    "make_input",
    "members",
    "mixed_input",
    "replicated_calls",
    "resolve_benchmark",
    "resolve_selection",
    "run_workload",
    "text_input",
]
