"""Sieve of Eratosthenes kernel — the ``plot`` analog's numeric phase.

Byte sieve in the scratch buffer; returns the count of primes below n.
The composite-mark branch density varies with the prime gaps, producing a
branch whose bias drifts over the run.
"""

from __future__ import annotations

from .common import KernelSpec, instantiate, register_kernel

TEMPLATE = """
# sieve@: count primes < n with a byte sieve.
#   a0 = sieve base (n bytes of scratch), a1 = n; returns a0 = prime count
sieve@:
    mv t0, a0            # sieve
    mv t1, a1            # n
    li t2, 0
sieve_clear@:
    bge t2, t1, sieve_mark@
    add t3, t0, t2
    sb zero, 0(t3)
    addi t2, t2, 1
    j sieve_clear@
sieve_mark@:
    li t2, 2             # p
sieve_ploop@:
    mul t3, t2, t2
    bge t3, t1, sieve_count@
    add t4, t0, t2
    lb t5, 0(t4)
    bnez t5, sieve_pnext@
sieve_mloop@:
    bge t3, t1, sieve_pnext@
    add t4, t0, t3
    li t5, 1
    sb t5, 0(t4)
    add t3, t3, t2
    j sieve_mloop@
sieve_pnext@:
    addi t2, t2, 1
    j sieve_ploop@
sieve_count@:
    li t2, 2
    li t6, 0
sieve_cloop@:
    bge t2, t1, sieve_done@
    add t3, t0, t2
    lb t4, 0(t3)
    bnez t4, sieve_cnext@
    addi t6, t6, 1
sieve_cnext@:
    addi t2, t2, 1
    j sieve_cloop@
sieve_done@:
    mv a0, t6
    ret
"""


def emit(suffix: str = "") -> str:
    """Instantiate the sieve kernel."""
    return instantiate(TEMPLATE, suffix)


def reference(n: int) -> int:
    """Count of primes below n (Python reference)."""
    if n < 3:
        return 0
    sieve = bytearray(n)
    count = 0
    for p in range(2, n):
        if not sieve[p]:
            count += 1
            for multiple in range(p * p, n, p):
                sieve[multiple] = 1
    return count


SPEC = register_kernel(
    KernelSpec(
        name="sieve",
        emit=emit,
        description="prime sieve; returns pi(n)",
        scratch_bytes=1 << 14,
    )
)
