"""Bitwise CRC-32 kernel — the ``pgp`` analog's integrity-check inner loop.

Computes the standard reflected CRC-32 (polynomial 0xEDB88320) of the input
stream one bit at a time.  The bit-test branch inside the unrolled-by-zero
loop alternates data-dependently; the per-byte EOF branch is highly biased.
The result matches :func:`binascii.crc32`, which the unit tests exploit.
"""

from __future__ import annotations

from .common import KernelSpec, instantiate, register_kernel

TEMPLATE = """
# crc@: CRC-32 (poly 0xEDB88320) of a prefix of the input stream.
#   a0 = max bytes to consume (0 = all); returns a0 = crc
crc@:
    mv t5, a0            # input budget
    bnez t5, crc_seek@
    li t5, 0x7FFFFFFF    # 0 means unlimited
crc_seek@:
    li a0, 5             # SYS_SEEK_INPUT to offset 0
    li a1, 0
    ecall
    li t0, -1            # crc = 0xFFFFFFFF
crc_byte@:
    blez t5, crc_done@
    addi t5, t5, -1
    li a0, 3             # SYS_GET_CHAR
    ecall
    bltz a0, crc_done@
    xor t0, t0, a0
    li t2, 8
crc_bit@:
    andi t3, t0, 1
    srli t0, t0, 1
    beqz t3, crc_nopoly@
    li t4, 0xEDB88320
    xor t0, t0, t4
crc_nopoly@:
    addi t2, t2, -1
    bgtz t2, crc_bit@
    j crc_byte@
crc_done@:
    not a0, t0
    ret
"""


def emit(suffix: str = "") -> str:
    """Instantiate the CRC-32 kernel."""
    return instantiate(TEMPLATE, suffix)


SPEC = register_kernel(
    KernelSpec(
        name="crc",
        emit=emit,
        description="bitwise CRC-32 of the input stream",
        needs_input=True,
        scratch_bytes=0,
    )
)
