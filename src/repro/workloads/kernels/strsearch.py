"""Naive substring-search kernel — the ``tex``/text-processing analog.

Reads the whole input stream into the scratch buffer and counts the
occurrences of a fixed needle with the quadratic naive scan.  The
first-character mismatch branch is strongly not-taken-to-match biased; the
inner comparison branches carry data-dependent behaviour.
"""

from __future__ import annotations

from .common import KernelSpec, instantiate, register_kernel

TEMPLATE = """
.data
strsearch_pat@: .asciiz "the"
.text
# strsearch@: count needle occurrences in a prefix of the input stream.
#   a0 = scratch base (input is buffered there), a1 = max bytes (0 = all)
#   returns a0 = match count
strsearch@:
    mv t0, a0            # buffer base
    mv a2, a1            # input budget
    bnez a2, strsearch_seek@
    li a2, 0x7FFFFFFF    # 0 means unlimited
strsearch_seek@:
    li a0, 5             # SYS_SEEK_INPUT to 0
    li a1, 0
    ecall
    mv t1, t0            # write cursor
strsearch_read@:
    blez a2, strsearch_term@
    addi a2, a2, -1
    li a0, 3
    ecall
    bltz a0, strsearch_term@
    sb a0, 0(t1)
    addi t1, t1, 1
    j strsearch_read@
strsearch_term@:
    sb zero, 0(t1)
    li t6, 0             # match count
    mv t2, t0            # scan cursor
strsearch_outer@:
    lb t3, 0(t2)
    beqz t3, strsearch_done@
    la t4, strsearch_pat@
    mv t5, t2
strsearch_inner@:
    lb a1, 0(t4)
    beqz a1, strsearch_hit@
    lb a2, 0(t5)
    beqz a2, strsearch_next@
    bne a1, a2, strsearch_next@
    addi t4, t4, 1
    addi t5, t5, 1
    j strsearch_inner@
strsearch_hit@:
    addi t6, t6, 1
strsearch_next@:
    addi t2, t2, 1
    j strsearch_outer@
strsearch_done@:
    mv a0, t6
    ret
"""

NEEDLE = b"the"


def emit(suffix: str = "") -> str:
    """Instantiate the substring-search kernel."""
    return instantiate(TEMPLATE, suffix)


def reference(haystack: bytes, needle: bytes = NEEDLE, limit: int = 0) -> int:
    """Overlapping occurrence count (matches the kernel's naive scan)."""
    if limit:
        haystack = haystack[:limit]
    count = 0
    for i in range(len(haystack)):
        if haystack[i : i + len(needle)] == needle:
            count += 1
    return count


SPEC = register_kernel(
    KernelSpec(
        name="strsearch",
        emit=emit,
        description="naive substring search over the input stream",
        needs_input=True,
        scratch_bytes=1 << 16,
    )
)
