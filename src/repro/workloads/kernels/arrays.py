"""Array utility kernels: pseudo-random fill, checksum, and quicksort.

``fillrand`` seeds data-dependent workloads from the deterministic RANDOM
syscall; ``checksum`` is the self-check primitive drivers print to validate
runs; ``qsort`` is the classic recursive quicksort, whose partition branch
is the textbook example of a hard-to-predict data-dependent branch.
"""

from __future__ import annotations

from typing import List

from .common import KernelSpec, instantiate, register_kernel

FILLRAND_TEMPLATE = """
# fillrand@: fill words [a0, a0+4*a1) with masked pseudo-random values.
#   a0 = base, a1 = count; returns a0 = base
fillrand@:
    mv t0, a0            # cursor
    mv t1, a1            # remaining
    mv t5, a0            # saved base
fillrand_loop@:
    blez t1, fillrand_done@
    li a0, 6             # SYS_RANDOM
    ecall
    li t2, 0x7FFFFF
    and a0, a0, t2       # keep values positive and compact
    sw a0, 0(t0)
    addi t0, t0, 4
    addi t1, t1, -1
    j fillrand_loop@
fillrand_done@:
    mv a0, t5
    ret
"""

CHECKSUM_TEMPLATE = """
# checksum@: wrapped sum of words [a0, a0+4*a1).
#   a0 = base, a1 = count; returns a0 = sum
checksum@:
    li t0, 0
checksum_loop@:
    blez a1, checksum_done@
    lw t1, 0(a0)
    add t0, t0, t1
    addi a0, a0, 4
    addi a1, a1, -1
    j checksum_loop@
checksum_done@:
    mv a0, t0
    ret
"""

QSORT_TEMPLATE = """
# qsort@: recursive quicksort of words [a0, a0+4*a1) (Lomuto partition).
#   a0 = base, a1 = count
qsort@:
    addi sp, sp, -16
    sw ra, 0(sp)
    sw s0, 4(sp)
    sw s1, 8(sp)
    sw s2, 12(sp)
    mv s0, a0            # base
    mv s1, a1            # n
    li t0, 2
    blt s1, t0, qsort_ret@
    addi t1, s1, -1      # pivot index n-1
    slli t2, t1, 2
    add t2, t2, s0       # &arr[n-1]
    lw t3, 0(t2)         # pivot value
    li t4, 0             # i (store index)
    li t5, 0             # j (scan index)
qsort_part@:
    bge t5, t1, qsort_pivot@
    slli t6, t5, 2
    add t6, t6, s0
    lw a2, 0(t6)         # arr[j]
    bge a2, t3, qsort_skip@
    slli a3, t4, 2
    add a3, a3, s0
    lw a4, 0(a3)         # swap arr[i] <-> arr[j]
    sw a2, 0(a3)
    sw a4, 0(t6)
    addi t4, t4, 1
qsort_skip@:
    addi t5, t5, 1
    j qsort_part@
qsort_pivot@:
    slli a3, t4, 2
    add a3, a3, s0
    lw a4, 0(a3)         # swap arr[i] <-> pivot
    sw t3, 0(a3)
    sw a4, 0(t2)
    mv s2, t4            # pivot landing index
    mv a0, s0
    mv a1, s2
    call qsort@          # left half
    addi t0, s2, 1
    slli t1, t0, 2
    add a0, s0, t1
    sub a1, s1, t0
    call qsort@          # right half
qsort_ret@:
    lw ra, 0(sp)
    lw s0, 4(sp)
    lw s1, 8(sp)
    lw s2, 12(sp)
    addi sp, sp, 16
    ret
"""


def emit_fillrand(suffix: str = "") -> str:
    """Instantiate the fillrand kernel."""
    return instantiate(FILLRAND_TEMPLATE, suffix)


def emit_checksum(suffix: str = "") -> str:
    """Instantiate the checksum kernel."""
    return instantiate(CHECKSUM_TEMPLATE, suffix)


def emit_qsort(suffix: str = "") -> str:
    """Instantiate the quicksort kernel."""
    return instantiate(QSORT_TEMPLATE, suffix)


def checksum_reference(values: List[int]) -> int:
    """Wrapped 32-bit sum matching the checksum kernel."""
    total = sum(values) & 0xFFFFFFFF
    return total - (1 << 32) if total & (1 << 31) else total


FILLRAND_SPEC = register_kernel(
    KernelSpec(
        name="fillrand",
        emit=emit_fillrand,
        description="fill an array with deterministic pseudo-random words",
        scratch_bytes=1 << 16,
    )
)
CHECKSUM_SPEC = register_kernel(
    KernelSpec(
        name="checksum",
        emit=emit_checksum,
        description="wrapped 32-bit sum of an array",
        scratch_bytes=0,
    )
)
QSORT_SPEC = register_kernel(
    KernelSpec(
        name="qsort",
        emit=emit_qsort,
        description="recursive quicksort (data-dependent branches)",
        scratch_bytes=1 << 16,
    )
)
