"""N-queens backtracking kernel — the ``chess`` analog's search engine.

Bitmask backtracking search counting all solutions.  Deep recursion with
data-dependent pruning branches at every level gives the large, highly
interleaved branch working sets characteristic of game-tree search.
"""

from __future__ import annotations

from .common import KernelSpec, instantiate, register_kernel

TEMPLATE = """
# queens@: count the solutions of the n-queens problem.
#   a0 = n (1..16); returns a0 = solution count
queens@:
    addi sp, sp, -8
    sw ra, 0(sp)
    sw s0, 4(sp)
    li t0, 1
    sll t0, t0, a0
    addi s0, t0, -1      # all = (1 << n) - 1
    li a0, 0             # cols
    li a1, 0             # left diagonals
    li a2, 0             # right diagonals
    call queens_rec@
    lw ra, 0(sp)
    lw s0, 4(sp)
    addi sp, sp, 8
    ret

# queens_rec@: a0 = cols, a1 = ld, a2 = rd (s0 = all, live across calls)
queens_rec@:
    bne a0, s0, queens_go@
    li a0, 1             # all columns filled: one solution
    ret
queens_go@:
    addi sp, sp, -24
    sw ra, 0(sp)
    sw s1, 4(sp)
    sw s2, 8(sp)
    sw s3, 12(sp)
    sw s4, 16(sp)
    sw s5, 20(sp)
    mv s3, a0            # cols
    mv s4, a1            # ld
    mv s5, a2            # rd
    or t0, a0, a1
    or t0, t0, a2
    not t0, t0
    and s1, t0, s0       # poss = ~(cols|ld|rd) & all
    li s2, 0             # count
queens_loop@:
    beqz s1, queens_rdone@
    neg t1, s1
    and t1, t1, s1       # bit = poss & -poss
    sub s1, s1, t1
    or a0, s3, t1
    or t2, s4, t1
    slli a1, t2, 1
    or t3, s5, t1
    srli a2, t3, 1
    call queens_rec@
    add s2, s2, a0
    j queens_loop@
queens_rdone@:
    mv a0, s2
    lw ra, 0(sp)
    lw s1, 4(sp)
    lw s2, 8(sp)
    lw s3, 12(sp)
    lw s4, 16(sp)
    lw s5, 20(sp)
    addi sp, sp, 24
    ret
"""

#: Known solution counts, used by the kernel unit tests.
SOLUTIONS = {1: 1, 2: 0, 3: 0, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352}


def emit(suffix: str = "") -> str:
    """Instantiate the n-queens kernel."""
    return instantiate(TEMPLATE, suffix)


SPEC = register_kernel(
    KernelSpec(
        name="queens",
        emit=emit,
        description="n-queens backtracking solution count",
        scratch_bytes=0,
    )
)
