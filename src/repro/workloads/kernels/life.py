"""Conway's Game of Life kernel — the ``ss`` (simulator-simulating) analog.

A 16x16 toroidal grid seeded from the deterministic RANDOM syscall, double
buffered, evolved for a given number of generations.  The alive/dead rule
branches correlate with spatial structure that shifts as the population
stabilises — branch biases drift over the run, like a simulator warming up.
"""

from __future__ import annotations

from typing import List

from .common import KernelSpec, instantiate, register_kernel

GRID = 8
CELLS = GRID * GRID

GRID_SHIFT = GRID.bit_length() - 1

TEMPLATE = f"""
# life@: evolve a {GRID}x{GRID} toroidal Life grid.
#   a0 = scratch (two {CELLS}-byte grids), a1 = generations
#   returns a0 = live-cell count after the last generation
life@:
    addi sp, sp, -24
    sw s0, 0(sp)
    sw s1, 4(sp)
    sw s2, 8(sp)
    sw s3, 12(sp)
    sw s4, 16(sp)
    sw s5, 20(sp)
    mv s5, a1            # generations
    mv s0, a0            # src grid
    addi s1, a0, {CELLS} # dst grid
    li t0, 0
life_init@:
    li t1, {CELLS}
    bge t0, t1, life_genloop@
    li a0, 6             # SYS_RANDOM
    ecall
    andi t2, a0, 1
    add t3, s0, t0
    sb t2, 0(t3)
    addi t0, t0, 1
    j life_init@
life_genloop@:
    blez s5, life_count@
    li s2, 0             # row
life_row@:
    li t0, {GRID}
    bge s2, t0, life_swap@
    li s3, 0             # col
life_col@:
    li t0, {GRID}
    bge s3, t0, life_row_next@
    li t1, 0             # neighbour count
    li t2, -1            # dr
life_dr@:
    li t0, 2
    bge t2, t0, life_decide@
    li t3, -1            # dc
life_dc@:
    li t0, 2
    bge t3, t0, life_dr_next@
    or t4, t2, t3
    beqz t4, life_dc_next@   # skip the cell itself
    add t4, s2, t2
    andi t4, t4, {GRID - 1}
    add t5, s3, t3
    andi t5, t5, {GRID - 1}
    slli t4, t4, {GRID_SHIFT}
    add t4, t4, t5
    add t4, t4, s0
    lb t6, 0(t4)
    add t1, t1, t6
life_dc_next@:
    addi t3, t3, 1
    j life_dc@
life_dr_next@:
    addi t2, t2, 1
    j life_dr@
life_decide@:
    slli t4, s2, {GRID_SHIFT}
    add t4, t4, s3
    add t5, t4, s0
    lb t6, 0(t5)         # current cell
    add t4, t4, s1       # destination address
    li t0, 3
    beq t1, t0, life_alive@
    beqz t6, life_dead@
    li t0, 2
    beq t1, t0, life_alive@
life_dead@:
    sb zero, 0(t4)
    j life_col_next@
life_alive@:
    li t0, 1
    sb t0, 0(t4)
life_col_next@:
    addi s3, s3, 1
    j life_col@
life_row_next@:
    addi s2, s2, 1
    j life_row@
life_swap@:
    mv t0, s0
    mv s0, s1
    mv s1, t0
    addi s5, s5, -1
    j life_genloop@
life_count@:
    li t0, 0
    li t1, 0
life_cnt@:
    li t2, {CELLS}
    bge t1, t2, life_done@
    add t3, s0, t1
    lb t4, 0(t3)
    add t0, t0, t4
    addi t1, t1, 1
    j life_cnt@
life_done@:
    mv a0, t0
    lw s0, 0(sp)
    lw s1, 4(sp)
    lw s2, 8(sp)
    lw s3, 12(sp)
    lw s4, 16(sp)
    lw s5, 20(sp)
    addi sp, sp, 24
    ret
"""


def emit(suffix: str = "") -> str:
    """Instantiate the Life kernel."""
    return instantiate(TEMPLATE, suffix)


def reference(initial: List[int], generations: int) -> int:
    """Evolve *initial* (flat GRIDxGRID 0/1 list); return the live count."""
    if len(initial) != CELLS:
        raise ValueError(f"grid must have {CELLS} cells")
    src = list(initial)
    for _ in range(generations):
        dst = [0] * CELLS
        for r in range(GRID):
            for c in range(GRID):
                neighbours = 0
                for dr in (-1, 0, 1):
                    for dc in (-1, 0, 1):
                        if dr == 0 and dc == 0:
                            continue
                        rr = (r + dr) & (GRID - 1)
                        cc = (c + dc) & (GRID - 1)
                        neighbours += src[rr * GRID + cc]
                alive = src[r * GRID + c]
                dst[r * GRID + c] = int(
                    neighbours == 3 or (alive and neighbours == 2)
                )
        src = dst
    return sum(src)


SPEC = register_kernel(
    KernelSpec(
        name="life",
        emit=emit,
        description="Conway's Life on a 8x8 torus",
        scratch_bytes=2 * CELLS,
    )
)
