"""Workload kernels: hand-written assembly routines with Python references.

Importing this package registers every kernel in the registry exposed by
:func:`~repro.workloads.kernels.common.kernel_registry`.
"""

from . import (  # noqa: F401  (imported for registration side effects)
    arrays,
    bintree,
    crc,
    fsm,
    hashtab,
    interp,
    life,
    matmul,
    queens,
    rle,
    sieve,
    strsearch,
)
from .common import (
    KernelSpec,
    get_kernel,
    instantiate,
    kernel_registry,
    register_kernel,
)

__all__ = [
    "KernelSpec",
    "get_kernel",
    "instantiate",
    "kernel_registry",
    "register_kernel",
]
