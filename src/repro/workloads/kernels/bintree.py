"""Binary search tree kernel — the ``li``/``gs`` analog's pointer chasing.

Bump-allocates nodes in an arena and inserts deterministic pseudo-random
keys; the left/right descent branch is the canonical ~50/50 data-dependent
branch, while the duplicate-found branch is rare.  Returns the number of
distinct keys (tree size).

Arena layout: word 0 = root pointer (0 = empty), word 1 = bump cursor,
nodes are 12 bytes: key, left pointer, right pointer.
"""

from __future__ import annotations

from .common import KernelSpec, instantiate, register_kernel

NODE_BYTES = 12
HEADER_BYTES = 8

TEMPLATE = """
# bintree@: insert a1 random keys into a BST allocated from arena a0.
#   a0 = arena base, a1 = insert attempts; returns a0 = distinct keys
bintree@:
    addi sp, sp, -16
    sw s0, 0(sp)
    sw s1, 4(sp)
    sw s2, 8(sp)
    sw s3, 12(sp)
    mv s0, a0            # arena
    mv s1, a1            # attempts
    sw zero, 0(s0)       # root = null
    addi t0, s0, 8
    sw t0, 4(s0)         # bump cursor = arena + 8
    li s2, 0             # attempt index
    li s3, 0             # distinct keys
bintree_loop@:
    bge s2, s1, bintree_done@
    li a0, 6             # SYS_RANDOM
    ecall
    li t0, 0xFFFF
    and t6, a0, t0       # key
    lw t1, 0(s0)         # current = root
    beqz t1, bintree_newroot@
bintree_walk@:
    lw t2, 0(t1)         # current.key
    beq t2, t6, bintree_next@   # duplicate
    blt t6, t2, bintree_left@
    lw t3, 8(t1)         # right child
    beqz t3, bintree_attach_right@
    mv t1, t3
    j bintree_walk@
bintree_left@:
    lw t3, 4(t1)         # left child
    beqz t3, bintree_attach_left@
    mv t1, t3
    j bintree_walk@
bintree_attach_left@:
    lw t4, 4(s0)         # new node from bump cursor
    sw t6, 0(t4)
    sw zero, 4(t4)
    sw zero, 8(t4)
    sw t4, 4(t1)
    addi t4, t4, 12
    sw t4, 4(s0)
    addi s3, s3, 1
    j bintree_next@
bintree_attach_right@:
    lw t4, 4(s0)
    sw t6, 0(t4)
    sw zero, 4(t4)
    sw zero, 8(t4)
    sw t4, 8(t1)
    addi t4, t4, 12
    sw t4, 4(s0)
    addi s3, s3, 1
    j bintree_next@
bintree_newroot@:
    lw t4, 4(s0)
    sw t6, 0(t4)
    sw zero, 4(t4)
    sw zero, 8(t4)
    sw t4, 0(s0)
    addi t4, t4, 12
    sw t4, 4(s0)
    addi s3, s3, 1
bintree_next@:
    addi s2, s2, 1
    j bintree_loop@
bintree_done@:
    mv a0, s3
    lw s0, 0(sp)
    lw s1, 4(sp)
    lw s2, 8(sp)
    lw s3, 12(sp)
    addi sp, sp, 16
    ret
"""


def emit(suffix: str = "") -> str:
    """Instantiate the BST kernel."""
    return instantiate(TEMPLATE, suffix)


def arena_bytes(inserts: int) -> int:
    """Arena size needed for *inserts* worst-case distinct keys."""
    return HEADER_BYTES + NODE_BYTES * inserts


SPEC = register_kernel(
    KernelSpec(
        name="bintree",
        emit=emit,
        description="binary search tree insert with bump allocation",
        scratch_bytes=1 << 16,
    )
)
