"""Bytecode-interpreter kernel — the ``li``/``python``/``perl`` analog core.

Generates a small random bytecode program (2-byte instructions: opcode,
immediate) and executes it for a fixed number of steps through a
jump-table dispatch loop (``jr`` through a ``.word``-of-labels table) — the
classic interpreter structure whose dispatch and operand branches dominate
scripting-language branch profiles.

Opcodes: 0 add-imm, 1 sub-imm, 2 xor-imm, 3 shift-left, 4 shift-right,
5 conditional jump (pc = imm mod n when acc is odd), 6 acc = 3*acc + 1,
7 and-imm.  The accumulator wraps at 32 bits.
"""

from __future__ import annotations

from typing import List, Tuple

from .common import KernelSpec, instantiate, register_kernel

TEMPLATE = """
# interp@: generate and run a random bytecode program.
#   a0 = scratch (code area), a1 = instruction count, a2 = steps
#   returns a0 = final accumulator
interp@:
    addi sp, sp, -20
    sw s0, 0(sp)
    sw s1, 4(sp)
    sw s2, 8(sp)
    sw s3, 12(sp)
    sw s4, 16(sp)
    mv s0, a0            # code base
    mv s1, a1            # instruction count
    mv s4, a2            # step budget
    li t0, 0
interp_gen@:
    bge t0, s1, interp_run@
    li a0, 6             # SYS_RANDOM
    ecall
    andi t1, a0, 7       # opcode
    srli t2, a0, 3
    andi t2, t2, 255     # immediate
    slli t3, t0, 1
    add t3, t3, s0
    sb t1, 0(t3)
    sb t2, 1(t3)
    addi t0, t0, 1
    j interp_gen@
interp_run@:
    li s2, 0             # vm pc (instruction index)
    li s3, 0             # accumulator
interp_step@:
    blez s4, interp_done@
    addi s4, s4, -1
    slli t0, s2, 1
    add t0, t0, s0
    lb t1, 0(t0)         # opcode
    lb t2, 1(t0)         # immediate
    addi s2, s2, 1       # advance vm pc, wrapping
    blt s2, s1, interp_dispatch@
    li s2, 0
interp_dispatch@:
    la t3, interp_table@
    slli t4, t1, 2
    add t4, t4, t3
    lw t5, 0(t4)
    jr t5
interp_op0@:
    add s3, s3, t2
    j interp_step@
interp_op1@:
    sub s3, s3, t2
    j interp_step@
interp_op2@:
    xor s3, s3, t2
    j interp_step@
interp_op3@:
    slli s3, s3, 1
    j interp_step@
interp_op4@:
    srli s3, s3, 1
    j interp_step@
interp_op5@:
    andi t6, s3, 1
    beqz t6, interp_step@
    rem s2, t2, s1
    j interp_step@
interp_op6@:
    slli t6, s3, 1
    add s3, s3, t6
    addi s3, s3, 1
    j interp_step@
interp_op7@:
    and s3, s3, t2
    j interp_step@
interp_done@:
    mv a0, s3
    lw s0, 0(sp)
    lw s1, 4(sp)
    lw s2, 8(sp)
    lw s3, 12(sp)
    lw s4, 16(sp)
    addi sp, sp, 20
    ret
.data
.align 2
interp_table@: .word interp_op0@, interp_op1@, interp_op2@, interp_op3@
               .word interp_op4@, interp_op5@, interp_op6@, interp_op7@
.text
"""


def emit(suffix: str = "") -> str:
    """Instantiate the interpreter kernel."""
    return instantiate(TEMPLATE, suffix)


def reference(program: List[Tuple[int, int]], steps: int) -> int:
    """Python reference VM (same wrap semantics as the kernel)."""

    def wrap(value: int) -> int:
        value &= 0xFFFFFFFF
        return value - (1 << 32) if value & (1 << 31) else value

    n = len(program)
    pc, acc = 0, 0
    for _ in range(steps):
        opcode, imm = program[pc]
        pc = (pc + 1) % n
        if opcode == 0:
            acc = wrap(acc + imm)
        elif opcode == 1:
            acc = wrap(acc - imm)
        elif opcode == 2:
            acc = wrap(acc ^ imm)
        elif opcode == 3:
            acc = wrap(acc << 1)
        elif opcode == 4:
            acc = (acc & 0xFFFFFFFF) >> 1
        elif opcode == 5:
            if acc & 1:
                pc = imm % n
        elif opcode == 6:
            acc = wrap(3 * acc + 1)
        else:
            acc = acc & imm
    return acc


SPEC = register_kernel(
    KernelSpec(
        name="interp",
        emit=emit,
        description="jump-table bytecode interpreter over a random program",
        scratch_bytes=1 << 12,
    )
)
