"""Open-addressing hash table kernel — the ``perl`` analog's symbol table.

Linear-probing insert-or-bump over a 4096-slot table of (key, value) pairs
with deterministic pseudo-random keys.  Probe-loop branches depend on the
table's fill state, so their bias drifts over the run; the duplicate-hit
branch is data-dependent.  An insert cap keeps the load factor below 3/4 so
probing always terminates.
"""

from __future__ import annotations

from typing import Dict

from .common import KernelSpec, instantiate, register_kernel

SLOTS = 256
INSERT_CAP = 3 * SLOTS // 4

TEMPLATE = f"""
# hashtab@: perform a1 insert-or-bump operations with random keys.
#   a0 = table base ({SLOTS} slots x 8 bytes), a1 = operations
#   returns a0 = number of distinct keys inserted
hashtab@:
    addi sp, sp, -24
    sw s0, 0(sp)
    sw s1, 4(sp)
    sw s2, 8(sp)
    sw s3, 12(sp)
    sw s4, 16(sp)
    sw s5, 20(sp)
    mv s0, a0            # table
    mv s1, a1            # ops
    li s3, {SLOTS - 1}   # slot mask
    li s5, 0             # inserts so far
    li t0, 0
hashtab_clear@:
    li t1, {SLOTS}
    bge t0, t1, hashtab_ops@
    slli t2, t0, 3
    add t2, t2, s0
    sw zero, 0(t2)
    sw zero, 4(t2)
    addi t0, t0, 1
    j hashtab_clear@
hashtab_ops@:
    li s2, 0             # op index
hashtab_loop@:
    bge s2, s1, hashtab_done@
    li a0, 6             # SYS_RANDOM
    ecall
    li t0, 0x3FFF
    and s4, a0, t0       # small key space -> frequent duplicates
    ori s4, s4, 1        # keys are nonzero (0 marks an empty slot)
    mul t1, s4, s4
    srli t1, t1, 7
    xor t1, t1, s4
    and t1, t1, s3       # home slot
hashtab_probe@:
    slli t2, t1, 3
    add t2, t2, s0
    lw t3, 0(t2)
    beqz t3, hashtab_insert@
    beq t3, s4, hashtab_bump@
    addi t1, t1, 1
    and t1, t1, s3
    j hashtab_probe@
hashtab_insert@:
    li t4, {INSERT_CAP}
    bge s5, t4, hashtab_next@   # table nearly full: drop the insert
    sw s4, 0(t2)
    li t4, 1
    sw t4, 4(t2)
    addi s5, s5, 1
    j hashtab_next@
hashtab_bump@:
    lw t4, 4(t2)
    addi t4, t4, 1
    sw t4, 4(t2)
hashtab_next@:
    addi s2, s2, 1
    j hashtab_loop@
hashtab_done@:
    mv a0, s5
    lw s0, 0(sp)
    lw s1, 4(sp)
    lw s2, 8(sp)
    lw s3, 12(sp)
    lw s4, 16(sp)
    lw s5, 20(sp)
    addi sp, sp, 24
    ret
"""


def emit(suffix: str = "") -> str:
    """Instantiate the hash-table kernel."""
    return instantiate(TEMPLATE, suffix)


def reference(keys: list) -> Dict[int, int]:
    """Insert-or-bump reference over explicit keys (for unit tests)."""
    table: Dict[int, int] = {}
    for key in keys:
        if key in table:
            table[key] += 1
        elif len(table) < INSERT_CAP:
            table[key] = 1
    return table


SPEC = register_kernel(
    KernelSpec(
        name="hashtab",
        emit=emit,
        description="linear-probing hash table insert/bump loop",
        scratch_bytes=SLOTS * 8,
    )
)
