"""Table-driven finite-state machine kernel — the ``m88ksim`` decode analog.

A tokenizer-like DFA over the input stream: bytes are classified into four
character classes (whitespace / digit / letter / other) by a compare chain,
then a ``.word`` transition table advances the state.  The classify chain's
branches have input-distribution-dependent biases; the accept-state branch
is rare — the structure of an instruction decoder's dispatch.
"""

from __future__ import annotations

from typing import List

from .common import KernelSpec, instantiate, register_kernel

#: Character classes.
CLASS_WS, CLASS_DIGIT, CLASS_ALPHA, CLASS_OTHER = 0, 1, 2, 3

#: 8 states x 4 classes transition table; state 7 is the accept state
#: ("token complete"), whose visits the kernel counts.
TRANSITIONS: List[List[int]] = [
    # ws digit alpha other
    [0, 1, 2, 3],  # 0 idle
    [7, 1, 4, 3],  # 1 in-number
    [7, 4, 2, 3],  # 2 in-word
    [0, 1, 2, 3],  # 3 punctuation
    [0, 4, 4, 3],  # 4 error recovery
    [0, 0, 0, 0],  # 5 (unused)
    [0, 0, 0, 0],  # 6 (unused)
    [0, 1, 2, 3],  # 7 accept
]

_TABLE_WORDS = ", ".join(
    str(state) for row in TRANSITIONS for state in row
)

TEMPLATE = f"""
.data
.align 2
fsm_table@: .word {_TABLE_WORDS}
.text
# fsm@: run the tokenizer DFA over a prefix of the input stream.
#   a0 = max bytes to consume (0 = all)
#   returns a0 = number of accept-state entries (tokens recognised)
fsm@:
    mv a3, a0            # input budget
    bnez a3, fsm_seek@
    li a3, 0x7FFFFFFF    # 0 means unlimited
fsm_seek@:
    li a0, 5             # SYS_SEEK_INPUT to 0
    li a1, 0
    ecall
    li t0, 0             # state
    li t6, 0             # tokens
    la t5, fsm_table@
fsm_loop@:
    blez a3, fsm_done@
    addi a3, a3, -1
    li a0, 3             # SYS_GET_CHAR
    ecall
    bltz a0, fsm_done@
    li t1, {CLASS_OTHER}
    li t2, 32
    beq a0, t2, fsm_ws@
    li t2, 9
    beq a0, t2, fsm_ws@
    li t2, 10
    beq a0, t2, fsm_ws@
    li t2, 48
    blt a0, t2, fsm_classified@
    li t2, 58
    blt a0, t2, fsm_digit@
    li t2, 65
    blt a0, t2, fsm_classified@
    li t2, 91
    blt a0, t2, fsm_alpha@
    li t2, 97
    blt a0, t2, fsm_classified@
    li t2, 123
    blt a0, t2, fsm_alpha@
    j fsm_classified@
fsm_ws@:
    li t1, {CLASS_WS}
    j fsm_classified@
fsm_digit@:
    li t1, {CLASS_DIGIT}
    j fsm_classified@
fsm_alpha@:
    li t1, {CLASS_ALPHA}
fsm_classified@:
    slli t3, t0, 2
    add t3, t3, t1
    slli t3, t3, 2
    add t3, t3, t5
    lw t0, 0(t3)         # next state
    li t4, 7
    bne t0, t4, fsm_loop@
    addi t6, t6, 1
    j fsm_loop@
fsm_done@:
    mv a0, t6
    ret
"""


def classify(byte: int) -> int:
    """Character class of *byte* (reference for tests)."""
    if byte in (32, 9, 10):
        return CLASS_WS
    if 48 <= byte < 58:
        return CLASS_DIGIT
    if 65 <= byte < 91 or 97 <= byte < 123:
        return CLASS_ALPHA
    return CLASS_OTHER


def reference(data: bytes, limit: int = 0) -> int:
    """Count accept-state entries over *data* (Python reference)."""
    if limit:
        data = data[:limit]
    state = 0
    tokens = 0
    for byte in data:
        state = TRANSITIONS[state][classify(byte)]
        if state == 7:
            tokens += 1
    return tokens


def emit(suffix: str = "") -> str:
    """Instantiate the FSM kernel."""
    return instantiate(TEMPLATE, suffix)


SPEC = register_kernel(
    KernelSpec(
        name="fsm",
        emit=emit,
        description="table-driven tokenizer DFA over the input stream",
        needs_input=True,
        scratch_bytes=0,
    )
)
