"""Run-length encoding kernel — the ``compress`` analog's core.

Encodes the environment input stream into ``(count, byte)`` pairs in the
scratch buffer; runs are capped at 255.  Branch population: the run-continue
test is data-dependent and moderately biased; the EOF and cap tests are
highly biased — the mix that makes compress's working sets small but
non-trivial.
"""

from __future__ import annotations

from .common import KernelSpec, instantiate, register_kernel

TEMPLATE = """
# rle@: run-length encode a prefix of the input stream into scratch.
#   a0 = scratch base, a1 = max input bytes to consume (0 = all)
#   returns a0 = encoded length in bytes
rle@:
    mv t0, a0            # output cursor
    mv t6, a0            # output base
    mv t4, a1            # remaining input budget
    bnez t4, rle_seek@
    li t4, 0x7FFFFFFF    # 0 means unlimited
rle_seek@:
    li a0, 5             # SYS_SEEK_INPUT
    li a1, 0
    ecall
    li a0, 3             # SYS_GET_CHAR
    ecall
    mv t1, a0            # current run byte
    bltz t1, rle_done@   # empty input
    addi t4, t4, -1
    li t2, 1             # current run length
rle_loop@:
    blez t4, rle_flush@  # input budget exhausted
    li a0, 3
    ecall
    bltz a0, rle_flush@
    addi t4, t4, -1
    bne a0, t1, rle_break@
    li t3, 255
    bge t2, t3, rle_cap@
    addi t2, t2, 1
    j rle_loop@
rle_cap@:
    sb t2, 0(t0)         # flush the capped run, start a fresh one
    sb t1, 1(t0)
    addi t0, t0, 2
    li t2, 1
    j rle_loop@
rle_break@:
    sb t2, 0(t0)
    sb t1, 1(t0)
    addi t0, t0, 2
    mv t1, a0
    li t2, 1
    j rle_loop@
rle_flush@:
    sb t2, 0(t0)
    sb t1, 1(t0)
    addi t0, t0, 2
rle_done@:
    sub a0, t0, t6
    ret
"""


def emit(suffix: str = "") -> str:
    """Instantiate the RLE kernel under *suffix*."""
    return instantiate(TEMPLATE, suffix)


def reference(data: bytes, limit: int = 0) -> bytes:
    """Python reference implementation (for kernel unit tests)."""
    if limit:
        data = data[:limit]
    out = bytearray()
    i = 0
    while i < len(data):
        byte = data[i]
        run = 1
        while i + run < len(data) and data[i + run] == byte and run < 255:
            run += 1
        out.append(run)
        out.append(byte)
        i += run
    return bytes(out)


SPEC = register_kernel(
    KernelSpec(
        name="rle",
        emit=emit,
        description="run-length encode the input stream",
        needs_input=True,
        scratch_bytes=1 << 16,
    )
)
