"""Integer matrix-multiply kernel — the ``ijpeg`` analog's regular compute.

C = A x B over n x n signed 32-bit matrices laid out contiguously in the
scratch buffer (A at base, B at base + 4n^2, C at base + 8n^2).  All loop
branches are highly biased taken with deterministic periodic exits — the
kind of branch population that makes ijpeg's working sets compact and its
prediction accuracy high.
"""

from __future__ import annotations

from typing import List

from .common import KernelSpec, instantiate, register_kernel

TEMPLATE = """
# matmul@: C = A * B for n x n int matrices in one contiguous arena.
#   a0 = arena base (A | B | C), a1 = n
matmul@:
    addi sp, sp, -24
    sw s0, 0(sp)
    sw s1, 4(sp)
    sw s2, 8(sp)
    sw s3, 12(sp)
    sw s4, 16(sp)
    sw s5, 20(sp)
    mv s0, a0            # A
    mv s1, a1            # n
    mul t0, s1, s1
    slli t0, t0, 2
    add s4, s0, t0       # B
    add s5, s4, t0       # C
    li s2, 0             # i
matmul_i@:
    bge s2, s1, matmul_done@
    li s3, 0             # j
matmul_j@:
    bge s3, s1, matmul_i_next@
    li t0, 0             # acc
    li t1, 0             # k
matmul_k@:
    bge t1, s1, matmul_store@
    mul t2, s2, s1
    add t2, t2, t1
    slli t2, t2, 2
    add t2, t2, s0
    lw t3, 0(t2)         # A[i][k]
    mul t4, t1, s1
    add t4, t4, s3
    slli t4, t4, 2
    add t4, t4, s4
    lw t5, 0(t4)         # B[k][j]
    mul t6, t3, t5
    add t0, t0, t6
    addi t1, t1, 1
    j matmul_k@
matmul_store@:
    mul t2, s2, s1
    add t2, t2, s3
    slli t2, t2, 2
    add t2, t2, s5
    sw t0, 0(t2)
    addi s3, s3, 1
    j matmul_j@
matmul_i_next@:
    addi s2, s2, 1
    j matmul_i@
matmul_done@:
    lw s0, 0(sp)
    lw s1, 4(sp)
    lw s2, 8(sp)
    lw s3, 12(sp)
    lw s4, 16(sp)
    lw s5, 20(sp)
    addi sp, sp, 24
    ret
"""


def emit(suffix: str = "") -> str:
    """Instantiate the matmul kernel."""
    return instantiate(TEMPLATE, suffix)


def reference(a: List[List[int]], b: List[List[int]]) -> List[List[int]]:
    """Python reference with 32-bit wrap, matching the kernel."""
    n = len(a)
    out = [[0] * n for _ in range(n)]
    for i in range(n):
        for j in range(n):
            acc = 0
            for k in range(n):
                acc += a[i][k] * b[k][j]
            acc &= 0xFFFFFFFF
            out[i][j] = acc - (1 << 32) if acc & (1 << 31) else acc
    return out


SPEC = register_kernel(
    KernelSpec(
        name="matmul",
        emit=emit,
        description="n x n integer matrix multiply",
        scratch_bytes=3 * 4 * 32 * 32,
    )
)
