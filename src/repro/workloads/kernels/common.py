"""Kernel template machinery.

Each kernel module defines an assembly ``TEMPLATE`` whose labels end in the
placeholder ``@`` and an ``emit(suffix)`` helper that instantiates the
template.  Instantiating the same kernel under different suffixes yields
textually distinct function bodies at distinct addresses — how the
benchmark analogs reach realistic *static* branch populations (the paper's
gcc has >16k static conditional branches; no hand-written kernel does, but
two hundred specialised copies of a dozen kernels do).

Calling convention (enforced by every kernel):

* arguments in ``a0``–``a3``, result in ``a0``;
* ``t``-registers and ``a``-registers are caller-saved (kernels clobber
  them freely);
* ``s``-registers, ``sp`` and ``ra`` are callee-saved (kernels that use
  them push/pop on the stack);
* scratch memory is supplied by the driver in ``a0`` so instantiations
  never share state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

#: Placeholder character appended to every label in kernel templates.
SUFFIX_MARK = "@"


def instantiate(template: str, suffix: str) -> str:
    """Expand a kernel template for one instantiation.

    Args:
        template: assembly text with ``@`` label placeholders.
        suffix: instantiation suffix (e.g. ``"_3"``); must be a valid label
            fragment.

    Raises:
        ValueError: if the suffix contains characters invalid in labels.
    """
    cleaned = suffix.replace("_", "")
    if cleaned and not cleaned.isalnum():
        raise ValueError(f"invalid kernel suffix {suffix!r}")
    return template.replace(SUFFIX_MARK, suffix)


@dataclass(frozen=True)
class KernelSpec:
    """Registry entry for a kernel.

    Attributes:
        name: kernel id; the entry label is ``<name><suffix>``.
        emit: ``emit(suffix) -> str`` producing the instantiated body.
        description: one-line summary for documentation and listings.
        needs_input: True if the kernel consumes the input byte stream.
        scratch_bytes: scratch memory the driver must reserve per call.
    """

    name: str
    emit: Callable[[str], str]
    description: str
    needs_input: bool = False
    scratch_bytes: int = 0


_REGISTRY: Dict[str, KernelSpec] = {}


def register_kernel(spec: KernelSpec) -> KernelSpec:
    """Add a kernel to the global registry (idempotent by name).

    Raises:
        ValueError: if a different spec is already registered for the name.
    """
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing is not spec:
        raise ValueError(f"kernel {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def kernel_registry() -> Dict[str, KernelSpec]:
    """All registered kernels (import side effect of the kernel modules)."""
    return dict(_REGISTRY)


def get_kernel(name: str) -> KernelSpec:
    """Look up a kernel by name.

    Raises:
        KeyError: if the kernel is unknown.
    """
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown kernel {name!r}; known: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]
