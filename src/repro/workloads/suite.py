"""The benchmark-analog suite.

One analog per paper benchmark (Table 1): six SPECint95 programs —
compress, gcc, ijpeg, li, m88ksim, perl — and the UNIX applications —
chess, gs, pgp, plot, python, ss (SimpleScalar itself), tex.  ``perl`` and
``ss`` additionally come in ``_a``/``_b`` input-set variants, which §5.2
uses to study profile sensitivity.

Structural principles (what makes the analogs behave like the originals):

* **Phases iterate.**  Real program phases are loops executed thousands of
  times; every analog phase iterates enough (scaled ~50-70 visits x 2
  rounds) that the branches of kernels co-resident in a phase accumulate
  pairwise interleave counts above the paper's threshold of 100 — that is
  what gives working sets their size.
* **Per-call work is small.**  Input-consuming kernels take byte limits and
  table kernels small op counts, so a phase iteration costs a few thousand
  instructions and whole runs fit the downsampled budget.
* **Replication sets the static scale.**  Each benchmark instantiates many
  textual copies of kernels with varied parameters (a compiler has many
  similar-shaped functions); branch-rich analogs (gcc, python, chess, gs,
  ss) get the most copies.  Combined with text scattering in the builder,
  this makes conventional PC-modulo BHT indexing alias the way it does for
  real binaries — the interference branch allocation removes.

The ``scale`` knob multiplies iteration counts; 1.0 is the full analog used
by the benchmark harness, ~0.15 runs the suite in seconds for integration
tests (with proportionally lower interleave counts — tests use scaled-down
thresholds).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from .build import InputSpec, KernelCall, PhaseSpec, WorkloadSpec

__all__ = [
    "ALL_BENCHMARKS",
    "TABLE2_BENCHMARKS",
    "TABLE34_BENCHMARKS",
    "FIGURE_BENCHMARKS",
    "benchmark_names",
    "benchmark_suite",
    "get_benchmark",
]

#: Deprecated tuple constants, now read-only views over the declarative
#: set registry (:mod:`repro.workloads.registry`).  New code should call
#: ``resolve_selection("table2")`` etc. instead of importing these; they
#: exist only so historical ``from repro.workloads.suite import
#: TABLE2_BENCHMARKS`` keeps meaning the same thing.
_REGISTRY_VIEWS = {
    "TABLE2_BENCHMARKS": "table2",
    "TABLE34_BENCHMARKS": "table34",
    "FIGURE_BENCHMARKS": "figures",
    "ALL_BENCHMARKS": "all",
}


def __getattr__(name: str) -> Tuple[str, ...]:
    # PEP 562 lazy views: resolved through the registry on first access,
    # which avoids a suite <-> registry import cycle in either order.
    set_name = _REGISTRY_VIEWS.get(name)
    if set_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from .registry import members

    return members(set_name)

#: Aliases: the un-suffixed names used by Table 2 / the figures resolve to
#: the ``_a`` input set where variants exist.
_ALIASES = {"perl": "perl_a", "ss": "ss_a"}

ArgsFn = Callable[[int], Tuple[int, ...]]


class _Replicator:
    """Hands out fresh kernel instances within one workload spec."""

    def __init__(self) -> None:
        self._next: Dict[str, int] = {}

    def take(
        self, kernel: str, count: int, args_fn: ArgsFn
    ) -> List[KernelCall]:
        """*count* fresh instances of *kernel*; args vary by local index."""
        start = self._next.get(kernel, 0)
        self._next[kernel] = start + count
        return [
            KernelCall(kernel, start + i, tuple(args_fn(i)))
            for i in range(count)
        ]


def _n(value: float, minimum: int = 1) -> int:
    return max(minimum, int(value))


def _iters(base: int, scale: float) -> int:
    """Phase iteration count: scales down for tests, floor of 2."""
    return _n(base * scale, 2)


def _compress(scale: float) -> WorkloadSpec:
    rep = _Replicator()
    coding = (
        rep.take("rle", 10, lambda i: (120 + 25 * i,))
        + rep.take("crc", 6, lambda i: (20 + 8 * i,))
    )
    integrity = (
        rep.take("crc", 8, lambda i: (25 + 10 * i,))
        + rep.take("rle", 6, lambda i: (60 + 20 * i,))
    )
    return WorkloadSpec(
        name="compress",
        description="RLE coding + CRC over run-heavy binary data",
        phases=(
            PhaseSpec(tuple(coding), iterations=_iters(60, scale)),
            PhaseSpec(tuple(integrity), iterations=_iters(55, scale)),
        ),
        rounds=2,
        input=InputSpec(kind="binary", size=4096, seed=101),
        random_seed=1001,
        fuel=_n(6_000_000 * scale, 300_000),
    )


def _gcc(scale: float) -> WorkloadSpec:
    rep = _Replicator()
    lex = (
        rep.take("fsm", 4, lambda i: (35 + 12 * i,))
        + rep.take("strsearch", 3, lambda i: (25 + 8 * i,))
        + rep.take("rle", 2, lambda i: (50 + 15 * i,))
        + rep.take("crc", 2, lambda i: (15 + 6 * i,))
    )
    parse = (
        rep.take("bintree", 4, lambda i: (8 + 3 * i,))
        + rep.take("hashtab", 3, lambda i: (6 + 3 * i,))
        + rep.take("fsm", 3, lambda i: (25 + 10 * i,))
        + rep.take("strsearch", 2, lambda i: (18 + 8 * i,))
    )
    optimize = (
        rep.take("interp", 4, lambda i: (24, 30 + 12 * i))
        + rep.take("hashtab", 2, lambda i: (5 + 3 * i,))
        + rep.take("bintree", 2, lambda i: (6 + 3 * i,))
        + rep.take("sieve", 2, lambda i: (90 + 40 * i,))
        + rep.take("queens", 2, lambda i: (4 + i,))
    )
    codegen = (
        rep.take("fillrand", 2, lambda i: (14 + 6 * i,))
        + rep.take("qsort", 2, lambda i: (14 + 6 * i,))
        + rep.take("matmul", 2, lambda i: (5 + i,))
        + rep.take("hashtab", 2, lambda i: (5 + 2 * i,))
        + rep.take("interp", 4, lambda i: (24, 22 + 8 * i))
    )
    emit = (
        rep.take("rle", 4, lambda i: (35 + 12 * i,))
        + rep.take("crc", 4, lambda i: (12 + 5 * i,))
        + rep.take("fsm", 3, lambda i: (20 + 8 * i,))
        + rep.take("strsearch", 3, lambda i: (14 + 6 * i,))
    )
    return WorkloadSpec(
        name="gcc",
        description="replicated compiler-pass kernels (largest static "
        "branch population)",
        phases=(
            PhaseSpec(tuple(lex), iterations=_iters(55, scale)),
            PhaseSpec(tuple(parse), iterations=_iters(55, scale)),
            PhaseSpec(tuple(optimize), iterations=_iters(50, scale)),
            PhaseSpec(tuple(codegen), iterations=_iters(50, scale)),
            PhaseSpec(tuple(emit), iterations=_iters(55, scale)),
        ),
        rounds=2,
        input=InputSpec(kind="text", size=4096, seed=202),
        random_seed=2002,
        fuel=_n(9_000_000 * scale, 500_000),
    )


def _ijpeg(scale: float) -> WorkloadSpec:
    rep = _Replicator()
    transform = (
        rep.take("matmul", 8, lambda i: (5 + i,))
        + rep.take("crc", 4, lambda i: (15 + 8 * i,))
    )
    scan = (
        rep.take("life", 4, lambda i: (1,))
        + rep.take("rle", 6, lambda i: (60 + 25 * i,))
    )
    return WorkloadSpec(
        name="ijpeg",
        description="regular numeric kernels: matmul blocks + grid passes",
        phases=(
            PhaseSpec(tuple(transform), iterations=_iters(60, scale)),
            PhaseSpec(tuple(scan), iterations=_iters(40, scale)),
        ),
        rounds=2,
        input=InputSpec(kind="mixed", size=4096, seed=303),
        random_seed=3003,
        fuel=_n(6_000_000 * scale, 300_000),
    )


def _li(scale: float) -> WorkloadSpec:
    rep = _Replicator()
    eval_phase = (
        rep.take("interp", 10, lambda i: (32, 35 + 12 * i))
        + rep.take("bintree", 6, lambda i: (7 + 3 * i,))
        + rep.take("hashtab", 4, lambda i: (5 + 3 * i,))
    )
    gc_phase = (
        rep.take("bintree", 6, lambda i: (10 + 4 * i,))
        + rep.take("strsearch", 4, lambda i: (20 + 10 * i,))
    )
    return WorkloadSpec(
        name="li",
        description="interpreter dispatch + pointer-chasing cons trees",
        phases=(
            PhaseSpec(tuple(eval_phase), iterations=_iters(60, scale)),
            PhaseSpec(tuple(gc_phase), iterations=_iters(50, scale)),
        ),
        rounds=2,
        input=InputSpec(kind="text", size=2048, seed=404),
        random_seed=4004,
        fuel=_n(6_000_000 * scale, 300_000),
    )


def _m88ksim(scale: float) -> WorkloadSpec:
    rep = _Replicator()
    decode = (
        rep.take("fsm", 10, lambda i: (30 + 10 * i,))
        + rep.take("interp", 8, lambda i: (32, 28 + 10 * i))
    )
    commit = (
        rep.take("fillrand", 4, lambda i: (18 + 8 * i,))
        + rep.take("checksum", 4, lambda i: (18 + 8 * i,))
        + rep.take("crc", 4, lambda i: (18 + 8 * i,))
        + rep.take("sieve", 2, lambda i: (140,))
    )
    return WorkloadSpec(
        name="m88ksim",
        description="decode FSM + execute interpreter (simulator loop)",
        phases=(
            PhaseSpec(tuple(decode), iterations=_iters(60, scale)),
            PhaseSpec(tuple(commit), iterations=_iters(50, scale)),
        ),
        rounds=2,
        input=InputSpec(kind="text", size=3072, seed=505),
        random_seed=5005,
        fuel=_n(6_000_000 * scale, 300_000),
    )


def _perl(variant: str, scale: float) -> WorkloadSpec:
    # the two input sets weight the phases differently, like the paper's
    # scrabbl vs. primes inputs
    rep = _Replicator()
    text_phase = (
        rep.take("hashtab", 6, lambda i: (7 + 3 * i,))
        + rep.take("strsearch", 6, lambda i: (25 + 10 * i,))
        + rep.take("fsm", 4, lambda i: (30 + 12 * i,))
    )
    data_phase = (
        rep.take("rle", 6, lambda i: (45 + 15 * i,))
        + rep.take("bintree", 6, lambda i: (6 + 3 * i,))
        + rep.take("hashtab", 4, lambda i: (5 + 2 * i,))
    )
    if variant == "a":
        input_spec = InputSpec(kind="text", size=4096, seed=611)
        text_iters, data_iters = _iters(65, scale), _iters(35, scale)
        random_seed = 6011
    else:
        input_spec = InputSpec(kind="mixed", size=4096, seed=622)
        text_iters, data_iters = _iters(35, scale), _iters(65, scale)
        random_seed = 6022
    return WorkloadSpec(
        name=f"perl_{variant}",
        description="hash tables + string scanning + text transform",
        phases=(
            PhaseSpec(tuple(text_phase), iterations=text_iters),
            PhaseSpec(tuple(data_phase), iterations=data_iters),
        ),
        rounds=2,
        input=input_spec,
        random_seed=random_seed,
        fuel=_n(5_000_000 * scale, 300_000),
    )


def _chess(scale: float) -> WorkloadSpec:
    rep = _Replicator()
    search = (
        rep.take("queens", 10, lambda i: (4 + (i % 3),))
        + rep.take("bintree", 6, lambda i: (6 + 3 * i,))
        + rep.take("hashtab", 4, lambda i: (5 + 3 * i,))
    )
    movegen = (
        rep.take("fillrand", 6, lambda i: (12 + 5 * i,))
        + rep.take("qsort", 6, lambda i: (12 + 5 * i,))
        + rep.take("queens", 6, lambda i: (4 + (i % 2),))
        + rep.take("interp", 4, lambda i: (24, 20 + 10 * i))
    )
    return WorkloadSpec(
        name="chess",
        description="replicated backtracking search + move-list sorting",
        phases=(
            PhaseSpec(tuple(search), iterations=_iters(55, scale)),
            PhaseSpec(tuple(movegen), iterations=_iters(55, scale)),
        ),
        rounds=2,
        input=InputSpec(kind="text", size=1024, seed=707),
        random_seed=7007,
        fuel=_n(7_000_000 * scale, 300_000),
    )


def _gs(scale: float) -> WorkloadSpec:
    rep = _Replicator()
    raster = (
        rep.take("life", 4, lambda i: (1,))
        + rep.take("matmul", 6, lambda i: (5 + i,))
        + rep.take("sieve", 4, lambda i: (80 + 40 * i,))
    )
    interpret = (
        rep.take("fsm", 6, lambda i: (28 + 10 * i,))
        + rep.take("strsearch", 6, lambda i: (18 + 8 * i,))
        + rep.take("rle", 4, lambda i: (40 + 15 * i,))
        + rep.take("interp", 4, lambda i: (28, 22 + 10 * i))
    )
    fill = (
        rep.take("matmul", 4, lambda i: (5 + i,))
        + rep.take("fillrand", 4, lambda i: (12 + 6 * i,))
        + rep.take("qsort", 4, lambda i: (12 + 6 * i,))
        # raster's first transform kernel is shared with this phase
        + [KernelCall("matmul", 0, (5,))]
    )
    return WorkloadSpec(
        name="gs",
        description="rasteriser-like grid evolution + numeric phases",
        phases=(
            PhaseSpec(tuple(raster), iterations=_iters(45, scale)),
            PhaseSpec(tuple(interpret), iterations=_iters(55, scale)),
            PhaseSpec(tuple(fill), iterations=_iters(50, scale)),
        ),
        rounds=2,
        input=InputSpec(kind="mixed", size=4096, seed=808),
        random_seed=8008,
        fuel=_n(7_000_000 * scale, 300_000),
    )


def _pgp(scale: float) -> WorkloadSpec:
    rep = _Replicator()
    crypt = (
        rep.take("crc", 10, lambda i: (15 + 8 * i,))
        + rep.take("rle", 6, lambda i: (45 + 18 * i,))
    )
    keyring = (
        rep.take("hashtab", 4, lambda i: (6 + 3 * i,))
        + rep.take("fillrand", 4, lambda i: (14 + 6 * i,))
        + rep.take("checksum", 4, lambda i: (14 + 6 * i,))
        + rep.take("interp", 2, lambda i: (24, 30))
    )
    return WorkloadSpec(
        name="pgp",
        description="CRC + coding loops over binary data",
        phases=(
            PhaseSpec(tuple(crypt), iterations=_iters(65, scale)),
            PhaseSpec(tuple(keyring), iterations=_iters(50, scale)),
        ),
        rounds=2,
        input=InputSpec(kind="binary", size=4096, seed=909),
        random_seed=9009,
        fuel=_n(5_000_000 * scale, 300_000),
    )


def _plot(scale: float) -> WorkloadSpec:
    rep = _Replicator()
    evaluate = (
        rep.take("sieve", 8, lambda i: (80 + 40 * i,))
        + rep.take("matmul", 6, lambda i: (5 + i,))
    )
    render = (
        rep.take("fillrand", 6, lambda i: (12 + 6 * i,))
        + rep.take("qsort", 6, lambda i: (12 + 6 * i,))
        + rep.take("checksum", 4, lambda i: (12 + 6 * i,))
        + rep.take("crc", 2, lambda i: (25,))
    )
    return WorkloadSpec(
        name="plot",
        description="function evaluation (sieve, matmul) + sorting",
        phases=(
            PhaseSpec(tuple(evaluate), iterations=_iters(55, scale)),
            PhaseSpec(tuple(render), iterations=_iters(55, scale)),
        ),
        rounds=2,
        input=InputSpec(kind="text", size=1024, seed=1010),
        random_seed=10010,
        fuel=_n(5_000_000 * scale, 300_000),
    )


def _python(scale: float) -> WorkloadSpec:
    rep = _Replicator()
    bytecode = (
        rep.take("interp", 10, lambda i: (32, 28 + 10 * i))
        + rep.take("hashtab", 4, lambda i: (6 + 3 * i,))
    )
    objects = (
        rep.take("hashtab", 6, lambda i: (6 + 2 * i,))
        + rep.take("bintree", 6, lambda i: (7 + 3 * i,))
        + rep.take("interp", 6, lambda i: (32, 20 + 8 * i))
    )
    text = (
        rep.take("strsearch", 4, lambda i: (22 + 10 * i,))
        + rep.take("fsm", 4, lambda i: (28 + 12 * i,))
        + rep.take("rle", 4, lambda i: (35 + 15 * i,))
        + rep.take("crc", 2, lambda i: (20,))
    )
    return WorkloadSpec(
        name="python",
        description="many interpreter instances + dict/object kernels",
        phases=(
            PhaseSpec(tuple(bytecode), iterations=_iters(55, scale)),
            PhaseSpec(tuple(objects), iterations=_iters(50, scale)),
            PhaseSpec(tuple(text), iterations=_iters(55, scale)),
        ),
        rounds=2,
        input=InputSpec(kind="text", size=3072, seed=1111),
        random_seed=11011,
        fuel=_n(7_000_000 * scale, 300_000),
    )


def _ss(variant: str, scale: float) -> WorkloadSpec:
    # the paper found ss_a and ss_b exercise visibly different code; the
    # b-variant weights the timing/sort phase instead of the decode phase
    rep = _Replicator()
    decode = (
        rep.take("fsm", 8, lambda i: (28 + 10 * i,))
        + rep.take("interp", 8, lambda i: (36, 26 + 10 * i))
    )
    timing = (
        rep.take("life", 4, lambda i: (1,))
        + rep.take("fillrand", 4, lambda i: (12 + 6 * i,))
        + rep.take("qsort", 4, lambda i: (12 + 6 * i,))
        + rep.take("crc", 4, lambda i: (15 + 8 * i,))
    )
    if variant == "a":
        decode_iters, timing_iters = _iters(65, scale), _iters(30, scale)
        input_spec = InputSpec(kind="text", size=3072, seed=1212)
        random_seed = 12012
    else:
        decode_iters, timing_iters = _iters(30, scale), _iters(60, scale)
        input_spec = InputSpec(kind="binary", size=3072, seed=1222)
        random_seed = 12022
    return WorkloadSpec(
        name=f"ss_{variant}",
        description="processor-simulator loop: decode FSM + interpreter "
        "+ grid",
        phases=(
            PhaseSpec(tuple(decode), iterations=decode_iters),
            PhaseSpec(tuple(timing), iterations=timing_iters),
        ),
        rounds=2,
        input=input_spec,
        random_seed=random_seed,
        fuel=_n(6_000_000 * scale, 300_000),
    )


def _tex(scale: float) -> WorkloadSpec:
    rep = _Replicator()
    scan = (
        rep.take("strsearch", 8, lambda i: (25 + 10 * i,))
        + rep.take("fsm", 8, lambda i: (25 + 10 * i,))
    )
    output = (
        rep.take("rle", 6, lambda i: (40 + 15 * i,))
        + rep.take("crc", 4, lambda i: (18 + 8 * i,))
        + rep.take("hashtab", 4, lambda i: (6 + 3 * i,))
        # the scan-phase tokenizer is reused here, like a shared library
        # routine: its branches belong to BOTH phases' working sets
        + [KernelCall("fsm", 0, (20,))]
    )
    return WorkloadSpec(
        name="tex",
        description="text scanning/tokenisation + output encoding",
        phases=(
            PhaseSpec(tuple(scan), iterations=_iters(60, scale)),
            PhaseSpec(tuple(output), iterations=_iters(50, scale)),
        ),
        rounds=2,
        input=InputSpec(kind="text", size=5120, seed=1313),
        random_seed=13013,
        fuel=_n(6_000_000 * scale, 300_000),
    )


def benchmark_suite(scale: float = 1.0) -> Dict[str, WorkloadSpec]:
    """Build all benchmark analogs at the given *scale*.

    Args:
        scale: iteration multiplier.  1.0 is the full analog (used by the
            benchmark harness); ~0.15 runs the suite in seconds for
            integration tests (with proportionally lower interleave counts
            — tests use scaled-down thresholds).

    Raises:
        ValueError: if scale is not positive.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return {
        "compress": _compress(scale),
        "gcc": _gcc(scale),
        "ijpeg": _ijpeg(scale),
        "li": _li(scale),
        "m88ksim": _m88ksim(scale),
        "perl_a": _perl("a", scale),
        "perl_b": _perl("b", scale),
        "chess": _chess(scale),
        "gs": _gs(scale),
        "pgp": _pgp(scale),
        "plot": _plot(scale),
        "python": _python(scale),
        "ss_a": _ss("a", scale),
        "ss_b": _ss("b", scale),
        "tex": _tex(scale),
    }


def benchmark_names(include_variants: bool = True) -> List[str]:
    """All benchmark names (optionally without the _a/_b variants)."""
    names = list(benchmark_suite(1.0))
    if include_variants:
        return names
    return [n for n in names if not (n.endswith("_a") or n.endswith("_b"))] + [
        "perl",
        "ss",
    ]


def get_benchmark(name: str, scale: float = 1.0) -> WorkloadSpec:
    """Look up one analog by name (aliases ``perl``/``ss`` resolve to _a).

    Raises:
        KeyError: for unknown benchmark names.
    """
    resolved = _ALIASES.get(name, name)
    suite = benchmark_suite(scale)
    if resolved not in suite:
        raise KeyError(
            f"unknown benchmark {name!r}; known: "
            f"{sorted(suite) + sorted(_ALIASES)}"
        )
    return suite[resolved]
