"""Trace capture: a branch hook that accumulates a :class:`BranchTrace`."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .events import BranchTrace


class TraceCapture:
    """Simulator branch hook that records every event in memory.

    Attach to a :class:`~repro.sim.machine.Simulator` and call
    :meth:`finish` after the run::

        capture = TraceCapture()
        Simulator(program, branch_hook=capture).run()
        trace = capture.finish("compress/default")

    An optional *limit* stops recording after that many events (downsampled
    profiling of long runs); the simulator keeps executing, the capture just
    goes quiet.
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        self._pcs: List[int] = []
        self._targets: List[int] = []
        self._taken: List[bool] = []
        self._timestamps: List[int] = []
        self._limit = limit

    def on_branch(
        self, pc: int, target: int, taken: bool, instruction_count: int
    ) -> None:
        if self._limit is not None and len(self._pcs) >= self._limit:
            return
        self._pcs.append(pc)
        self._targets.append(target)
        self._taken.append(taken)
        self._timestamps.append(instruction_count)

    def __len__(self) -> int:
        return len(self._pcs)

    @property
    def saturated(self) -> bool:
        """True once the event limit has been reached."""
        return self._limit is not None and len(self._pcs) >= self._limit

    def finish(self, name: str = "<capture>") -> BranchTrace:
        """Freeze the accumulated events into an immutable trace."""
        return BranchTrace(
            np.array(self._pcs, dtype=np.uint64),
            np.array(self._targets, dtype=np.uint64),
            np.array(self._taken, dtype=bool),
            np.array(self._timestamps, dtype=np.uint64),
            name=name,
        )
