"""Trace capture: a branch hook that accumulates a :class:`BranchTrace`.

``TraceCapture`` is now a thin shim over the streaming pipeline: events
are staged into fixed-size columnar numpy blocks by a
:class:`~repro.pipeline.bus.BranchEventBus` carrying a single
:class:`~repro.pipeline.consumers.TraceBuilder`, and ``finish()``
concatenates the blocks.  The classic API (``on_branch`` / ``finish`` /
``saturated`` / ``len``) is unchanged; new code that wants more than the
raw trace out of a simulation should attach additional consumers to a
bus instead of capturing and replaying (see ``docs/PIPELINE.md``).
"""

from __future__ import annotations

from typing import Optional

from .events import BranchTrace


class TraceCapture:
    """Simulator branch hook that records every event in memory.

    Attach to a :class:`~repro.sim.machine.Simulator` and call
    :meth:`finish` after the run::

        capture = TraceCapture()
        Simulator(program, branch_hook=capture).run()
        trace = capture.finish("compress/default")

    An optional *limit* stops recording after that many events (downsampled
    profiling of long runs); the simulator keeps executing, the capture just
    goes quiet.  The limit truncates exactly even when it is not a multiple
    of the chunk size, and ``finish()`` on an empty capture returns a
    well-formed zero-length trace.
    """

    def __init__(
        self,
        limit: Optional[int] = None,
        chunk_events: Optional[int] = None,
    ) -> None:
        # Imported here, not at module top: repro.trace initializes before
        # repro.pipeline's consumers (which pull in the predictor stack).
        from ..pipeline.bus import DEFAULT_CHUNK_EVENTS, BranchEventBus
        from ..pipeline.consumers import TraceBuilder

        self._builder = TraceBuilder()
        self._bus = BranchEventBus(
            [self._builder],
            chunk_events=chunk_events or DEFAULT_CHUNK_EVENTS,
            limit=limit,
        )
        self.on_branch = self._bus.on_branch  # hot path: no extra frame

    def __len__(self) -> int:
        return len(self._bus)

    @property
    def saturated(self) -> bool:
        """True once the event limit has been reached."""
        return self._bus.saturated

    def finish(self, name: str = "<capture>") -> BranchTrace:
        """Freeze the accumulated events into an immutable trace."""
        self._builder.label = name
        self._bus.finish()
        if self._builder.result is None or self._builder.result.name != name:
            return self._builder.finish(name)
        return self._builder.result
