"""Branch trace representation.

A :class:`BranchTrace` is the interchange format between the substrate
(simulator or synthetic generator) and the analysis layers: a columnar,
append-frozen record of every dynamic conditional branch — static PC, taken
target, outcome, and the retired-instruction time stamp the paper's
interleave analysis keys on.

Columns are numpy arrays so million-event traces stay compact and the
predictor simulators can iterate them cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class BranchEvent:
    """One dynamic conditional branch instance."""

    pc: int
    target: int
    taken: bool
    timestamp: int  # instructions retired before this branch


class BranchTrace:
    """An immutable columnar trace of dynamic conditional branches.

    Attributes:
        pcs: static branch addresses, one per dynamic instance.
        targets: taken-path destinations.
        taken: outcome flags.
        timestamps: retired-instruction counts before each instance
            (strictly increasing).
        name: provenance label (benchmark + input set).
    """

    __slots__ = ("pcs", "targets", "taken", "timestamps", "name")

    def __init__(
        self,
        pcs: np.ndarray,
        targets: np.ndarray,
        taken: np.ndarray,
        timestamps: np.ndarray,
        name: str = "<trace>",
    ) -> None:
        n = len(pcs)
        if not (len(targets) == len(taken) == len(timestamps) == n):
            raise ValueError("trace columns must have equal length")
        self.pcs = np.ascontiguousarray(pcs, dtype=np.uint64)
        self.targets = np.ascontiguousarray(targets, dtype=np.uint64)
        self.taken = np.ascontiguousarray(taken, dtype=bool)
        self.timestamps = np.ascontiguousarray(timestamps, dtype=np.uint64)
        self.name = name

    def __len__(self) -> int:
        return len(self.pcs)

    def __iter__(self) -> Iterator[BranchEvent]:
        for pc, target, taken, ts in zip(
            self.pcs.tolist(),
            self.targets.tolist(),
            self.taken.tolist(),
            self.timestamps.tolist(),
        ):
            yield BranchEvent(pc, target, bool(taken), ts)

    def __getitem__(self, index: int) -> BranchEvent:
        return BranchEvent(
            int(self.pcs[index]),
            int(self.targets[index]),
            bool(self.taken[index]),
            int(self.timestamps[index]),
        )

    # -- derived views ------------------------------------------------------

    def static_branches(self) -> List[int]:
        """Distinct static branch PCs, ascending."""
        return [int(pc) for pc in np.unique(self.pcs)]

    def execution_counts(self) -> Dict[int, int]:
        """Dynamic execution count per static branch."""
        pcs, counts = np.unique(self.pcs, return_counts=True)
        return {int(pc): int(c) for pc, c in zip(pcs, counts)}

    def taken_counts(self) -> Dict[int, Tuple[int, int]]:
        """Per static branch: (executions, times taken)."""
        result: Dict[int, Tuple[int, int]] = {}
        pcs = np.unique(self.pcs)
        for pc in pcs:
            mask = self.pcs == pc
            result[int(pc)] = (int(mask.sum()), int(self.taken[mask].sum()))
        return result

    def slice(self, start: int, stop: int) -> "BranchTrace":
        """A sub-trace of events [start, stop)."""
        return BranchTrace(
            self.pcs[start:stop],
            self.targets[start:stop],
            self.taken[start:stop],
            self.timestamps[start:stop],
            name=f"{self.name}[{start}:{stop}]",
        )

    def filter_pcs(self, keep: Sequence[int]) -> "BranchTrace":
        """A sub-trace containing only instances of the given static PCs.

        Used to mimic the paper's Table 1 reduction ("we have reduced the
        number of static conditional branches ... based on the frequency of
        occurrences") while preserving time stamps.
        """
        keep_arr = np.asarray(sorted(keep), dtype=np.uint64)
        mask = np.isin(self.pcs, keep_arr)
        return BranchTrace(
            self.pcs[mask],
            self.targets[mask],
            self.taken[mask],
            self.timestamps[mask],
            name=f"{self.name}(filtered)",
        )

    @classmethod
    def from_events(
        cls, events: Sequence[BranchEvent], name: str = "<trace>"
    ) -> "BranchTrace":
        """Build a trace from discrete event objects (mostly for tests)."""
        return cls(
            np.array([e.pc for e in events], dtype=np.uint64),
            np.array([e.target for e in events], dtype=np.uint64),
            np.array([e.taken for e in events], dtype=bool),
            np.array([e.timestamp for e in events], dtype=np.uint64),
            name=name,
        )

    def __repr__(self) -> str:
        return (
            f"BranchTrace(name={self.name!r}, events={len(self)}, "
            f"static={len(np.unique(self.pcs))})"
        )
