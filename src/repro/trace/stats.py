"""Trace summary statistics (the Table 1 quantities).

The paper reduces each benchmark's static branch population "based on the
frequency of occurrences" so the analysis stays tractable, then reports how
many dynamic branches the retained statics cover (99.8%+ everywhere except
gcc).  :func:`frequency_cutoff` reproduces that reduction and
:func:`summarize_trace` reports the resulting Table 1 row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .events import BranchTrace


@dataclass(frozen=True)
class TraceSummary:
    """One Table 1 row: dynamic branch coverage after the static cutoff.

    Attributes:
        name: benchmark/input label.
        total_dynamic: dynamic conditional branches in the full trace.
        analyzed_dynamic: dynamic branches covered by the retained statics.
        total_static: static conditional branches seen in the trace.
        analyzed_static: static branches retained by the frequency cutoff.
        taken_fraction: overall fraction of taken branches (context metric).
    """

    name: str
    total_dynamic: int
    analyzed_dynamic: int
    total_static: int
    analyzed_static: int
    taken_fraction: float

    @property
    def percent_analyzed(self) -> float:
        """Percentage of dynamic branches analyzed (Table 1's last column)."""
        if self.total_dynamic == 0:
            return 0.0
        return 100.0 * self.analyzed_dynamic / self.total_dynamic


def frequency_cutoff(
    trace: BranchTrace, coverage: float = 0.999, max_static: int = 0
) -> Tuple[List[int], int]:
    """Pick the most frequent static branches covering *coverage* of events.

    Args:
        trace: the full branch trace.
        coverage: fraction of dynamic branches the retained statics must
            cover (the paper achieves >= 0.9374 even on gcc).
        max_static: optional hard cap on retained statics (0 = no cap);
            applied after the coverage goal, whichever retains fewer.

    Returns:
        (retained static PCs sorted by address, dynamic events covered).
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError(f"coverage must be in (0, 1], got {coverage}")
    pcs, counts = np.unique(trace.pcs, return_counts=True)
    order = np.argsort(counts)[::-1]
    total = int(counts.sum())
    goal = coverage * total
    kept: List[int] = []
    covered = 0
    for idx in order:
        if covered >= goal:
            break
        if max_static and len(kept) >= max_static:
            break
        kept.append(int(pcs[idx]))
        covered += int(counts[idx])
    return sorted(kept), covered


def summarize_trace(
    trace: BranchTrace, coverage: float = 0.999, max_static: int = 0
) -> TraceSummary:
    """Compute the Table 1 row for *trace* under the frequency cutoff."""
    kept, covered = frequency_cutoff(
        trace, coverage=coverage, max_static=max_static
    )
    total_static = len(np.unique(trace.pcs))
    taken_fraction = (
        float(trace.taken.mean()) if len(trace) else 0.0
    )
    return TraceSummary(
        name=trace.name,
        total_dynamic=len(trace),
        analyzed_dynamic=covered,
        total_static=total_static,
        analyzed_static=len(kept),
        taken_fraction=taken_fraction,
    )
