"""Trace downsampling.

The paper profiles up to 500M instructions; the repro band calls for
downsampling on a Python substrate.  Two reductions are provided:

* :func:`truncate` — keep the first N events (what the paper's "first 500
  million instructions" cap does);
* :func:`systematic_sample` — keep every k-th *window* of events, which
  preserves intra-window interleaving (so conflict-graph edges stay
  meaningful) while cutting volume.  Plain per-event sampling would destroy
  the interleave structure, so it is deliberately not offered.
"""

from __future__ import annotations

import numpy as np

from .events import BranchTrace


def truncate(trace: BranchTrace, max_events: int) -> BranchTrace:
    """Keep the first *max_events* events."""
    if max_events < 0:
        raise ValueError("max_events must be non-negative")
    if len(trace) <= max_events:
        return trace
    return trace.slice(0, max_events)


def systematic_sample(
    trace: BranchTrace, window: int, keep_every: int
) -> BranchTrace:
    """Keep one window of *window* events out of every *keep_every* windows.

    Args:
        trace: source trace.
        window: events per window; must be large relative to working-set
            sizes for the interleave structure to survive (thousands).
        keep_every: sampling period in windows (1 keeps everything).

    Returns:
        The sampled trace (timestamps are preserved, so interleave gaps
        across discarded windows are visible to the analysis as large
        time-stamp jumps — which is correct: those branches genuinely did
        not interleave in the kept windows).
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    if keep_every < 1:
        raise ValueError("keep_every must be >= 1")
    if keep_every == 1 or len(trace) <= window:
        return trace
    n = len(trace)
    keep = np.zeros(n, dtype=bool)
    stride = window * keep_every
    for start in range(0, n, stride):
        keep[start : start + window] = True
    return BranchTrace(
        trace.pcs[keep],
        trace.targets[keep],
        trace.taken[keep],
        trace.timestamps[keep],
        name=f"{trace.name}(sampled 1/{keep_every})",
    )
