"""Trace persistence.

Two formats:

* **binary** (``.npz``) — the columnar arrays, compact and fast; the format
  used by the experiment harness's trace cache.
* **ndjson** (``.ndjson``) — one JSON object per event, self-describing and
  diff-able; used for small fixture traces and interoperability.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from .events import BranchTrace

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_trace(
    trace: BranchTrace,
    path: PathLike,
    meta: Optional[Dict[str, object]] = None,
) -> None:
    """Write *trace* to an ``.npz`` file.

    Args:
        trace: the trace to persist.
        path: destination path.
        meta: optional JSON-serialisable provenance metadata (the artifact
            store stamps the content digest here); readable without
            decompressing the event columns via :func:`read_trace_meta`.
    """
    extras = {}
    if meta is not None:
        extras["meta"] = np.array([json.dumps(meta)])
    np.savez_compressed(
        Path(path),
        version=np.array([_FORMAT_VERSION]),
        name=np.array([trace.name]),
        pcs=trace.pcs,
        targets=trace.targets,
        taken=trace.taken,
        timestamps=trace.timestamps,
        **extras,
    )


def read_trace_meta(path: PathLike) -> Dict[str, object]:
    """Provenance metadata stored with :func:`save_trace` (may be empty).

    Raises:
        ValueError: on a format-version mismatch.
    """
    with np.load(Path(path), allow_pickle=False) as archive:
        version = int(archive["version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version}")
        if "meta" not in archive.files:
            return {}
        return json.loads(str(archive["meta"][0]))


def load_trace(path: PathLike) -> BranchTrace:
    """Read a trace previously written by :func:`save_trace`.

    Raises:
        ValueError: on a format-version mismatch.
    """
    with np.load(Path(path), allow_pickle=False) as archive:
        version = int(archive["version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version}")
        return BranchTrace(
            archive["pcs"],
            archive["targets"],
            archive["taken"],
            archive["timestamps"],
            name=str(archive["name"][0]),
        )


def save_trace_ndjson(trace: BranchTrace, path: PathLike) -> None:
    """Write *trace* as newline-delimited JSON events."""
    with open(Path(path), "w", encoding="utf-8") as fh:
        header = {"format": "branch-trace", "version": _FORMAT_VERSION,
                  "name": trace.name, "events": len(trace)}
        fh.write(json.dumps(header) + "\n")
        for event in trace:
            fh.write(
                json.dumps(
                    {
                        "pc": event.pc,
                        "target": event.target,
                        "taken": event.taken,
                        "ts": event.timestamp,
                    }
                )
                + "\n"
            )


def load_trace_ndjson(path: PathLike) -> BranchTrace:
    """Read a trace written by :func:`save_trace_ndjson`.

    Raises:
        ValueError: if the header is missing or malformed.
    """
    pcs, targets, taken, timestamps = [], [], [], []
    name = "<ndjson>"
    with open(Path(path), encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise ValueError("empty trace file")
        header = json.loads(header_line)
        if header.get("format") != "branch-trace":
            raise ValueError("not a branch-trace ndjson file")
        name = header.get("name", name)
        for line in fh:
            if not line.strip():
                continue
            obj = json.loads(line)
            pcs.append(obj["pc"])
            targets.append(obj["target"])
            taken.append(obj["taken"])
            timestamps.append(obj["ts"])
    return BranchTrace(
        np.array(pcs, dtype=np.uint64),
        np.array(targets, dtype=np.uint64),
        np.array(taken, dtype=bool),
        np.array(timestamps, dtype=np.uint64),
        name=name,
    )
