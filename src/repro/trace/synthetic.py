"""Stochastic synthetic branch-trace generator.

The assembly workloads in :mod:`repro.workloads` are the primary substrate,
but scale studies and property tests need traces whose ground-truth working
set structure is *known by construction*.  This module generates such traces
from an explicit phase model:

* a workload is a sequence of **phases**;
* each phase owns a set of static branches (its intended working set) that
  execute round-robin for a number of loop iterations;
* each branch has a behaviour model — biased coin, periodic pattern, or
  correlation with the previous branch outcome — so different predictor
  families are separable on the same trace.

Because branches in different phases never interleave (beyond adjacent-phase
boundary effects), the conflict-graph working sets recovered by the analysis
should match the phase populations — which is exactly what the property
tests assert.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .events import BranchTrace


class Behavior(enum.Enum):
    """Outcome models for synthetic branches."""

    BIASED = "biased"       # independent coin with P(taken) = bias
    PATTERN = "pattern"     # deterministic periodic pattern, e.g. "TTNT"
    CORRELATED = "correlated"  # copies the previous dynamic branch outcome
    LOOP = "loop"           # taken (iterations-1) times then not taken


@dataclass(frozen=True)
class SyntheticBranch:
    """One static branch in the synthetic model.

    Attributes:
        pc: the branch's static address (must be unique in the workload).
        behavior: outcome model.
        bias: P(taken) for BIASED; ignored otherwise.
        pattern: taken/not-taken cycle for PATTERN, as a string of 'T'/'N'.
        trip_count: loop body count for LOOP behaviour.
    """

    pc: int
    behavior: Behavior = Behavior.BIASED
    bias: float = 0.5
    pattern: str = "TN"
    trip_count: int = 4

    def __post_init__(self) -> None:
        if self.behavior is Behavior.BIASED and not 0.0 <= self.bias <= 1.0:
            raise ValueError(f"bias must be a probability, got {self.bias}")
        if self.behavior is Behavior.PATTERN:
            if not self.pattern or set(self.pattern) - {"T", "N"}:
                raise ValueError(f"bad pattern {self.pattern!r}")
        if self.behavior is Behavior.LOOP and self.trip_count < 1:
            raise ValueError("trip_count must be >= 1")


@dataclass(frozen=True)
class Phase:
    """A program phase: its branch working set and how long it runs.

    Attributes:
        branches: static branches live in this phase.
        iterations: loop iterations per visit (each iteration executes every
            branch in the phase once).
        mean_gap: mean instructions between consecutive branches.
    """

    branches: Sequence[SyntheticBranch]
    iterations: int = 200
    mean_gap: int = 5

    def __post_init__(self) -> None:
        if not self.branches:
            raise ValueError("phase must contain at least one branch")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.mean_gap < 1:
            raise ValueError("mean_gap must be >= 1")


@dataclass
class SyntheticWorkload:
    """A phased synthetic workload.

    Attributes:
        phases: the phase list.
        schedule: order of phase visits (indices into *phases*); defaults to
            one visit per phase, in order.
        name: trace label.
    """

    phases: List[Phase]
    schedule: Optional[List[int]] = None
    name: str = "synthetic"
    _loop_positions: dict = field(default_factory=dict, repr=False)

    def ground_truth_working_sets(self) -> List[List[int]]:
        """The intended working sets (per-phase branch PC lists)."""
        return [[b.pc for b in phase.branches] for phase in self.phases]

    def generate(self, seed: int = 0) -> BranchTrace:
        """Produce the branch trace for one run of the workload."""
        rng = np.random.default_rng(seed)
        schedule = (
            self.schedule
            if self.schedule is not None
            else list(range(len(self.phases)))
        )
        pcs: List[int] = []
        taken_flags: List[bool] = []
        timestamps: List[int] = []
        clock = 0
        last_outcome = False
        pattern_pos: dict = {}
        loop_pos: dict = {}
        for phase_index in schedule:
            phase = self.phases[phase_index]
            for _ in range(phase.iterations):
                for branch in phase.branches:
                    clock += int(rng.integers(1, 2 * phase.mean_gap))
                    outcome = self._resolve(
                        branch, rng, last_outcome, pattern_pos, loop_pos
                    )
                    pcs.append(branch.pc)
                    taken_flags.append(outcome)
                    timestamps.append(clock)
                    last_outcome = outcome
                    clock += 1  # the branch instruction itself
        targets = [pc + 16 for pc in pcs]  # arbitrary forward target
        return BranchTrace(
            np.array(pcs, dtype=np.uint64),
            np.array(targets, dtype=np.uint64),
            np.array(taken_flags, dtype=bool),
            np.array(timestamps, dtype=np.uint64),
            name=self.name,
        )

    @staticmethod
    def _resolve(
        branch: SyntheticBranch,
        rng: np.random.Generator,
        last_outcome: bool,
        pattern_pos: dict,
        loop_pos: dict,
    ) -> bool:
        if branch.behavior is Behavior.BIASED:
            return bool(rng.random() < branch.bias)
        if branch.behavior is Behavior.PATTERN:
            pos = pattern_pos.get(branch.pc, 0)
            pattern_pos[branch.pc] = (pos + 1) % len(branch.pattern)
            return branch.pattern[pos] == "T"
        if branch.behavior is Behavior.CORRELATED:
            return last_outcome
        # LOOP: taken trip_count-1 times, then fall through once
        pos = loop_pos.get(branch.pc, 0)
        loop_pos[branch.pc] = (pos + 1) % branch.trip_count
        return pos != branch.trip_count - 1


def make_phased_workload(
    n_phases: int,
    branches_per_phase: int,
    iterations: int = 200,
    biased_fraction: float = 0.3,
    seed: int = 0,
    name: str = "synthetic",
    pc_base: int = 0x1000,
    pc_stride: int = 4,
    text_span: int = 0,
) -> SyntheticWorkload:
    """Build a workload with *n_phases* disjoint working sets.

    A *biased_fraction* of each phase's branches are highly biased (>99%
    or <1% taken, mirroring the paper's classification bounds); the rest
    mix LOOP, PATTERN and moderately biased behaviours.

    Args:
        text_span: when positive, branch PCs are scattered uniformly over
            ``[pc_base, pc_base + text_span)`` (word aligned, unique) the
            way real programs spread branches across a large text segment —
            which is what makes PC-modulo BHT indexing alias.  When 0,
            PCs are consecutive (``pc_stride`` apart), which never aliases
            in tables larger than the branch count; useful for isolating
            working-set effects from indexing effects.
    """
    if n_phases < 1 or branches_per_phase < 1:
        raise ValueError("need at least one phase and one branch per phase")
    rng = np.random.default_rng(seed)
    total_branches = n_phases * branches_per_phase
    if text_span:
        slots = text_span // 4
        if slots < total_branches:
            raise ValueError(
                f"text_span {text_span} too small for {total_branches} branches"
            )
        chosen = rng.choice(slots, size=total_branches, replace=False)
        pc_pool = [pc_base + 4 * int(slot) for slot in sorted(chosen)]
    else:
        pc_pool = [
            pc_base + pc_stride * i for i in range(total_branches)
        ]
    pool_iter = iter(pc_pool)
    phases: List[Phase] = []
    patterns = ["TTN", "TTTN", "TN", "TTTTTTN", "TTNN"]
    for _ in range(n_phases):
        branches: List[SyntheticBranch] = []
        for b in range(branches_per_phase):
            pc = next(pool_iter)
            roll = rng.random()
            if roll < biased_fraction:
                bias = 0.995 if rng.random() < 0.5 else 0.005
                branches.append(
                    SyntheticBranch(pc, Behavior.BIASED, bias=bias)
                )
            elif roll < biased_fraction + 0.25:
                branches.append(
                    SyntheticBranch(
                        pc,
                        Behavior.PATTERN,
                        pattern=patterns[b % len(patterns)],
                    )
                )
            elif roll < biased_fraction + 0.45:
                branches.append(
                    SyntheticBranch(
                        pc,
                        Behavior.LOOP,
                        trip_count=int(rng.integers(2, 12)),
                    )
                )
            else:
                branches.append(
                    SyntheticBranch(
                        pc,
                        Behavior.BIASED,
                        bias=float(rng.uniform(0.2, 0.8)),
                    )
                )
        phases.append(Phase(tuple(branches), iterations=iterations))
    return SyntheticWorkload(phases=phases, name=name)
