"""Branch trace capture, storage, statistics and synthesis."""

from .capture import TraceCapture
from .events import BranchEvent, BranchTrace
from .io import (
    load_trace,
    load_trace_ndjson,
    read_trace_meta,
    save_trace,
    save_trace_ndjson,
)
from .sampling import systematic_sample, truncate
from .stats import TraceSummary, frequency_cutoff, summarize_trace
from .synthetic import (
    Behavior,
    Phase,
    SyntheticBranch,
    SyntheticWorkload,
    make_phased_workload,
)

__all__ = [
    "Behavior",
    "BranchEvent",
    "BranchTrace",
    "Phase",
    "SyntheticBranch",
    "SyntheticWorkload",
    "TraceCapture",
    "TraceSummary",
    "frequency_cutoff",
    "load_trace",
    "load_trace_ndjson",
    "make_phased_workload",
    "read_trace_meta",
    "save_trace",
    "save_trace_ndjson",
    "summarize_trace",
    "systematic_sample",
    "truncate",
]
