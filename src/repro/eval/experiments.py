"""Experiment registry: one entry per paper table/figure plus ablations.

Gives the examples and the CLI a uniform way to enumerate and run
everything DESIGN.md's per-experiment index lists.  Every entry declares
the benchmarks it consumes, so :func:`run_experiment` can warm an
engine-backed runner with one parallel :meth:`prefetch` pass before the
(cheap, sequential) analysis code touches individual artifacts.

Entry points accept any artifact source uniformly — a
:class:`~repro.eval.runner.BenchmarkRunner` facade or a bare
:class:`~repro.eval.engine.ExecutionEngine`; nothing here constructs
runners of its own.

Failure semantics: a benchmark whose job kept failing (see the engine's
retry/timeout policy) is dropped from the experiment rather than aborting
it — the output is computed over the surviving set and annotated with a
per-benchmark failure report.  Only when *every* benchmark an experiment
needs has failed does :func:`run_experiment` raise
:class:`~repro.errors.SuiteDegraded` (the CLI turns that into a nonzero
exit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ReproError, SuiteDegraded
from ..workloads.registry import members
from . import ablations, figures, tables
from .engine import prefetch_artifacts, shard_subset, surviving_benchmarks
from .runner import BenchmarkRunner

#: Curated experiment-specific benchmark lists (not registry sets: each
#: is a hand-picked subset sized for one ablation's runtime budget).
_THRESHOLD_BENCHMARKS = ("compress", "gcc", "python")
_PREDICTOR_BENCHMARKS = ("compress", "gcc", "li", "chess")
_HASH_BENCHMARKS = ("gcc", "python", "chess", "gs")
_GROUP_BENCHMARKS = ("compress", "gcc", "tex")
_PAIR_BENCHMARKS = ("perl_a", "perl_b", "ss_a", "ss_b")
_ALIGNMENT_BENCHMARKS = ("gcc", "tex")
_CLIQUE_BENCHMARKS = ("compress", "pgp", "plot", "chess")


@dataclass(frozen=True)
class Experiment:
    """A runnable experiment: produces printable text from a runner.

    Attributes:
        id: registry key (the CLI's ``experiment <id>`` argument).
        paper_artifact: which paper table/figure/section this regenerates.
        description: one-line summary.
        run: the entry point; takes any artifact source (runner or
            engine) plus the benchmark subset to cover (the surviving
            set after failures are dropped) and returns rendered text.
        benchmarks: every benchmark the experiment consumes — prefetched
            in one parallel pass before ``run`` is called.
    """

    id: str
    paper_artifact: str
    description: str
    run: Callable[[BenchmarkRunner, Sequence[str]], str]
    benchmarks: Tuple[str, ...] = ()


def _table1(runner: BenchmarkRunner, benchmarks: Sequence[str]) -> str:
    return tables.format_table1(tables.run_table1(runner, benchmarks))


def _table2(runner: BenchmarkRunner, benchmarks: Sequence[str]) -> str:
    return tables.format_table2(tables.run_table2(runner, benchmarks))


def _table3(runner: BenchmarkRunner, benchmarks: Sequence[str]) -> str:
    rows = tables.run_table3(runner, benchmarks)
    return tables.format_sizing_table(
        rows, "Table 3", "(working sets only)"
    )


def _table4(runner: BenchmarkRunner, benchmarks: Sequence[str]) -> str:
    rows = tables.run_table4(runner, benchmarks)
    return tables.format_sizing_table(
        rows, "Table 4", "with branch classification"
    )


def _figure3(runner: BenchmarkRunner, benchmarks: Sequence[str]) -> str:
    rows = figures.run_figure3(runner, benchmarks)
    return figures.format_figure(
        rows, "Figure 3", "allocation without classification"
    )


def _figure4(runner: BenchmarkRunner, benchmarks: Sequence[str]) -> str:
    rows = figures.run_figure4(runner, benchmarks)
    return figures.format_figure(
        rows, "Figure 4", "allocation with classification"
    )


def _ablation_threshold(
    runner: BenchmarkRunner, benchmarks: Sequence[str]
) -> str:
    rows = ablations.run_threshold_ablation(runner, list(benchmarks))
    return ablations.format_threshold_ablation(rows)


def _ablation_inputs(
    runner: BenchmarkRunner, benchmarks: Sequence[str]
) -> str:
    # pairs survive only whole: both the _a and _b variant must have run
    survivors = set(benchmarks)
    pairs = [
        base
        for base in dict.fromkeys(
            name.rsplit("_", 1)[0] for name in _PAIR_BENCHMARKS
        )
        if f"{base}_a" in survivors and f"{base}_b" in survivors
    ]
    if not pairs:
        raise SuiteDegraded(
            "no complete benchmark input pair survived",
            experiment="ablation_inputs",
        )
    rows = ablations.run_input_sensitivity(runner, pairs=pairs)
    return ablations.format_input_sensitivity(rows)


def _ablation_predictors(
    runner: BenchmarkRunner, benchmarks: Sequence[str]
) -> str:
    results = ablations.run_predictor_family(runner, list(benchmarks))
    return ablations.format_predictor_family(results)


def _ablation_hash(
    runner: BenchmarkRunner, benchmarks: Sequence[str]
) -> str:
    rows = ablations.run_hash_baseline(runner, list(benchmarks))
    return ablations.format_hash_baseline(rows)


def _ablation_groups(
    runner: BenchmarkRunner, benchmarks: Sequence[str]
) -> str:
    from .group_allocation import format_group_ablation, run_group_ablation

    rows = run_group_ablation(runner, list(benchmarks))
    return format_group_ablation(rows)


def _ablation_alignment(
    runner: BenchmarkRunner, benchmarks: Sequence[str]
) -> str:
    rows = ablations.run_alignment_ablation(runner, list(benchmarks))
    return ablations.format_alignment_ablation(rows)


def _ablation_history(
    runner: BenchmarkRunner, benchmarks: Sequence[str]
) -> str:
    rows = ablations.run_history_sweep(runner, list(benchmarks))
    return ablations.format_history_sweep(rows)


def _static_compare(
    runner: BenchmarkRunner, benchmarks: Sequence[str]
) -> str:
    from .static_compare import format_static_compare, run_static_compare

    return format_static_compare(run_static_compare(runner, benchmarks))


def _ablation_cliques(
    runner: BenchmarkRunner, benchmarks: Sequence[str]
) -> str:
    rows = ablations.run_clique_definition_ablation(
        runner, list(benchmarks)
    )
    return ablations.format_clique_definition(rows)


def _verify_static(
    runner: BenchmarkRunner, benchmarks: Sequence[str]
) -> str:
    from .static_compare import format_verify_static, run_verify_static

    return format_verify_static(run_verify_static(runner, benchmarks))


def _static_compare_benchmarks() -> Tuple[str, ...]:
    from .static_compare import DEFAULT_BENCHMARKS

    return tuple(DEFAULT_BENCHMARKS)


EXPERIMENTS: Dict[str, Experiment] = {
    exp.id: exp
    for exp in [
        Experiment("table1", "Table 1",
                   "benchmarks, input sets, % dynamic branches analyzed",
                   _table1, members("table2")),
        Experiment("table2", "Table 2",
                   "working-set counts and sizes", _table2,
                   members("table2")),
        Experiment("table3", "Table 3",
                   "BHT size required by branch allocation", _table3,
                   members("table34")),
        Experiment("table4", "Table 4",
                   "BHT size required with branch classification", _table4,
                   members("table34")),
        Experiment("figure3", "Figure 3",
                   "misprediction: allocation without classification",
                   _figure3, members("figures")),
        Experiment("figure4", "Figure 4",
                   "misprediction: allocation with classification",
                   _figure4, members("figures")),
        Experiment("ablation_threshold", "§4.2",
                   "edge-threshold sensitivity", _ablation_threshold,
                   _THRESHOLD_BENCHMARKS),
        Experiment("ablation_inputs", "§5.2",
                   "profile input sensitivity + cumulative merge",
                   _ablation_inputs, _PAIR_BENCHMARKS),
        Experiment("ablation_predictors", "context",
                   "predictor family comparison", _ablation_predictors,
                   _PREDICTOR_BENCHMARKS),
        Experiment("ablation_hash", "context",
                   "indexing-scheme conflict cost", _ablation_hash,
                   _HASH_BENCHMARKS),
        Experiment("ablation_groups", "§6 extension",
                   "group-level allocation (bias / history-pattern groups)",
                   _ablation_groups, _GROUP_BENCHMARKS),
        Experiment("ablation_alignment", "§5 alternative",
                   "branch alignment (no ISA change) vs branch allocation",
                   _ablation_alignment, _ALIGNMENT_BENCHMARKS),
        Experiment("ablation_cliques", "§4.1 note",
                   "working-set definition: partition vs maximal cliques",
                   _ablation_cliques, _CLIQUE_BENCHMARKS),
        Experiment("ablation_history", "context",
                   "PAg history-length sweep with/without allocation",
                   _ablation_history, _ALIGNMENT_BENCHMARKS),
        Experiment("static_compare", "§5 extension",
                   "static-estimated vs profiled allocation quality",
                   _static_compare, _static_compare_benchmarks()),
        Experiment("verify_static", "§4/§5 verification",
                   "static heuristics and graph estimates vs profiles",
                   _verify_static, members("all")),
    ]
}


def format_failure_report(failures: Mapping[str, ReproError]) -> str:
    """Render the per-benchmark failure annotation appended to outputs."""
    lines = [f"-- degraded: {len(failures)} benchmark(s) failed --"]
    for name in sorted(failures):
        error = failures[name]
        code = getattr(error, "code", type(error).__name__)
        lines.append(f"  {name}: {code} — {error}")
    return "\n".join(lines)


def _relevant_failures(
    runner: BenchmarkRunner, benchmarks: Sequence[str]
) -> Dict[str, ReproError]:
    failures = getattr(runner, "failures", None) or {}
    return {name: failures[name] for name in benchmarks if name in failures}


def run_experiment(
    experiment_id: str,
    runner: BenchmarkRunner,
    benchmarks: Optional[Sequence[str]] = None,
) -> str:
    """Run one experiment by id (prefetching its benchmarks in parallel).

    Benchmarks whose jobs keep failing are dropped: the experiment runs
    on the surviving set and its output gains a failure report.  A
    sharded runner covers only its deterministic slice of the
    experiment's list; shards that own none of it return a short note
    instead of failing (their neighbours have it covered).

    Args:
        experiment_id: registry key (``repro list`` enumerates them).
        runner: any artifact source (runner facade or bare engine).
        benchmarks: override the experiment's declared benchmark list
            (the CLI's ``--set`` resolves a selector expression to this).

    Raises:
        KeyError: for unknown experiment ids.
        SuiteDegraded: when every benchmark the experiment needs failed.
    """
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{sorted(EXPERIMENTS)}"
        )
    experiment = EXPERIMENTS[experiment_id]
    wanted = list(
        benchmarks if benchmarks is not None else experiment.benchmarks
    )
    local = shard_subset(runner, wanted)
    if wanted and not local:
        shard = getattr(runner, "shard", None)
        return (
            f"(shard {shard} owns no benchmarks of {experiment_id}; "
            "nothing to do on this host)"
        )
    prefetch_artifacts(runner, local)
    survivors = surviving_benchmarks(runner, local)
    failed = _relevant_failures(runner, local)
    if local and not survivors:
        raise SuiteDegraded(
            f"every benchmark of {experiment_id} failed "
            f"({', '.join(sorted(failed))})",
            experiment=experiment_id,
            failures=[
                {"benchmark": name, **error.to_dict()}
                for name, error in sorted(failed.items())
            ],
        )
    output = experiment.run(runner, survivors)
    if failed:
        output = f"{output}\n\n{format_failure_report(failed)}"
    return output


def run_all_experiments(runner: BenchmarkRunner) -> List[str]:
    """Run every registered experiment, returning rendered blocks.

    The union of every experiment's benchmark list is prefetched first,
    so an engine-backed runner simulates the whole suite in one parallel
    pass and each experiment then runs against warm artifacts.  An
    experiment whose entire benchmark set failed renders as a failure
    block; only when *no* benchmark in the union survived does the sweep
    raise :class:`~repro.errors.SuiteDegraded`.
    """
    # union of each experiment's local slice, so a sharded sweep warms
    # exactly the benchmarks the per-experiment runs will consume
    every = [
        name
        for exp in EXPERIMENTS.values()
        for name in shard_subset(runner, exp.benchmarks)
    ]
    prefetch_artifacts(runner, every)
    if not surviving_benchmarks(runner, every):
        raise SuiteDegraded(
            "every benchmark in the suite failed",
            failures=[
                {"benchmark": name, **error.to_dict()}
                for name, error in sorted(
                    _relevant_failures(runner, every).items()
                )
            ],
        )
    blocks = []
    for exp in EXPERIMENTS.values():
        try:
            body = run_experiment(exp.id, runner)
        except SuiteDegraded:
            body = format_failure_report(
                _relevant_failures(runner, exp.benchmarks)
            )
        blocks.append(f"== {exp.paper_artifact} ({exp.id}) ==\n{body}")
    return blocks
