"""Experiment registry: one entry per paper table/figure plus ablations.

Gives the examples and the CLI-style scripts a uniform way to enumerate and
run everything DESIGN.md's per-experiment index lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from . import ablations, figures, tables
from .runner import BenchmarkRunner


@dataclass(frozen=True)
class Experiment:
    """A runnable experiment: produces printable text from a runner."""

    id: str
    paper_artifact: str
    description: str
    run: Callable[[BenchmarkRunner], str]


def _table1(runner: BenchmarkRunner) -> str:
    return tables.format_table1(tables.run_table1(runner))


def _table2(runner: BenchmarkRunner) -> str:
    return tables.format_table2(tables.run_table2(runner))


def _table3(runner: BenchmarkRunner) -> str:
    rows = tables.run_table3(runner)
    return tables.format_sizing_table(
        rows, "Table 3", "(working sets only)"
    )


def _table4(runner: BenchmarkRunner) -> str:
    rows = tables.run_table4(runner)
    return tables.format_sizing_table(
        rows, "Table 4", "with branch classification"
    )


def _figure3(runner: BenchmarkRunner) -> str:
    rows = figures.run_figure3(runner)
    return figures.format_figure(
        rows, "Figure 3", "allocation without classification"
    )


def _figure4(runner: BenchmarkRunner) -> str:
    rows = figures.run_figure4(runner)
    return figures.format_figure(
        rows, "Figure 4", "allocation with classification"
    )


def _ablation_threshold(runner: BenchmarkRunner) -> str:
    rows = ablations.run_threshold_ablation(
        runner, ["compress", "gcc", "python"]
    )
    return ablations.format_threshold_ablation(rows)


def _ablation_inputs(runner: BenchmarkRunner) -> str:
    rows = ablations.run_input_sensitivity(runner)
    return ablations.format_input_sensitivity(rows)


def _ablation_predictors(runner: BenchmarkRunner) -> str:
    results = ablations.run_predictor_family(
        runner, ["compress", "gcc", "li", "chess"]
    )
    return ablations.format_predictor_family(results)


def _ablation_hash(runner: BenchmarkRunner) -> str:
    rows = ablations.run_hash_baseline(
        runner, ["gcc", "python", "chess", "gs"]
    )
    return ablations.format_hash_baseline(rows)


def _ablation_groups(runner: BenchmarkRunner) -> str:
    from .group_allocation import format_group_ablation, run_group_ablation

    rows = run_group_ablation(runner, ["compress", "gcc", "tex"])
    return format_group_ablation(rows)


def _ablation_alignment(runner: BenchmarkRunner) -> str:
    rows = ablations.run_alignment_ablation(runner, ["gcc", "tex"])
    return ablations.format_alignment_ablation(rows)


def _ablation_history(runner: BenchmarkRunner) -> str:
    rows = ablations.run_history_sweep(runner, ["gcc", "tex"])
    return ablations.format_history_sweep(rows)


def _static_compare(runner: BenchmarkRunner) -> str:
    from .static_compare import format_static_compare, run_static_compare

    return format_static_compare(run_static_compare(runner))


def _ablation_cliques(runner: BenchmarkRunner) -> str:
    rows = ablations.run_clique_definition_ablation(
        runner, ["compress", "pgp", "plot", "chess"]
    )
    return ablations.format_clique_definition(rows)


EXPERIMENTS: Dict[str, Experiment] = {
    exp.id: exp
    for exp in [
        Experiment("table1", "Table 1",
                   "benchmarks, input sets, % dynamic branches analyzed",
                   _table1),
        Experiment("table2", "Table 2",
                   "working-set counts and sizes", _table2),
        Experiment("table3", "Table 3",
                   "BHT size required by branch allocation", _table3),
        Experiment("table4", "Table 4",
                   "BHT size required with branch classification", _table4),
        Experiment("figure3", "Figure 3",
                   "misprediction: allocation without classification",
                   _figure3),
        Experiment("figure4", "Figure 4",
                   "misprediction: allocation with classification",
                   _figure4),
        Experiment("ablation_threshold", "§4.2",
                   "edge-threshold sensitivity", _ablation_threshold),
        Experiment("ablation_inputs", "§5.2",
                   "profile input sensitivity + cumulative merge",
                   _ablation_inputs),
        Experiment("ablation_predictors", "context",
                   "predictor family comparison", _ablation_predictors),
        Experiment("ablation_hash", "context",
                   "indexing-scheme conflict cost", _ablation_hash),
        Experiment("ablation_groups", "§6 extension",
                   "group-level allocation (bias / history-pattern groups)",
                   _ablation_groups),
        Experiment("ablation_alignment", "§5 alternative",
                   "branch alignment (no ISA change) vs branch allocation",
                   _ablation_alignment),
        Experiment("ablation_cliques", "§4.1 note",
                   "working-set definition: partition vs maximal cliques",
                   _ablation_cliques),
        Experiment("ablation_history", "context",
                   "PAg history-length sweep with/without allocation",
                   _ablation_history),
        Experiment("static_compare", "§5 extension",
                   "static-estimated vs profiled allocation quality",
                   _static_compare),
    ]
}


def run_experiment(experiment_id: str, runner: BenchmarkRunner) -> str:
    """Run one experiment by id.

    Raises:
        KeyError: for unknown experiment ids.
    """
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id].run(runner)


def run_all(runner: BenchmarkRunner) -> List[str]:
    """Run every registered experiment, returning rendered blocks."""
    return [
        f"== {exp.paper_artifact} ({exp.id}) ==\n{exp.run(runner)}"
        for exp in EXPERIMENTS.values()
    ]
