"""Parallel evaluation engine with a content-addressed artifact store.

Every table and figure in the paper is a per-benchmark sweep, so the
dominant wall-clock cost is simulating the analog suite.  The
:class:`ExecutionEngine` removes that cost twice over:

* **Parallelism** — benchmark x scale x trace-limit jobs fan out across a
  ``multiprocessing`` pool (``jobs=N``; ``N=1`` is a plain sequential
  loop in-process).
* **Content-addressed caching** — artifacts are keyed on a digest of the
  assembled program image, its input bytes and the capture parameters,
  so editing a kernel (or the assembler, via the emitted image)
  invalidates stale traces automatically and warm runs skip simulation
  entirely.

:class:`~repro.eval.runner.BenchmarkRunner` is a thin facade over this
module; experiment code that only needs ``artifacts/trace/profile`` can
accept either interchangeably.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..profiling.interleave import profile_trace
from ..profiling.profile import InterleaveProfile
from ..trace.capture import TraceCapture
from ..trace.events import BranchTrace
from ..trace.io import load_trace, save_trace
from ..workloads.build import BuiltWorkload, build_workload, run_workload
from ..workloads.suite import get_benchmark

#: Bump to invalidate every stored artifact (digest input change).
DIGEST_VERSION = 1


@dataclass(frozen=True)
class RunArtifacts:
    """Everything the experiments need for one benchmark run."""

    name: str
    trace: BranchTrace
    profile: InterleaveProfile
    instructions: int
    static_branches: int


@dataclass(frozen=True)
class JobSpec:
    """One unit of engine work: a benchmark at a scale and capture limit."""

    name: str
    scale: float = 1.0
    trace_limit: Optional[int] = None

    def tag(self) -> str:
        """Human-readable artifact prefix (the legacy cache tag)."""
        tag = f"{self.name}-s{self.scale:g}"
        if self.trace_limit:
            tag += f"-l{self.trace_limit}"
        return tag


def artifact_digest(
    built: BuiltWorkload, trace_limit: Optional[int] = None
) -> str:
    """Content digest for one job's artifacts.

    Hashes the assembled program image (text + data + entry point), the
    input bytes, and every parameter that changes what a capture run
    records (random seed, fuel budget, trace limit).  Anything that
    alters the simulated instruction stream alters the digest.
    """
    text, data = built.program.to_image()
    hasher = hashlib.sha256()
    for part in (
        f"v{DIGEST_VERSION}",
        f"entry:{built.program.entry_point}",
        f"seed:{built.spec.random_seed}",
        f"fuel:{built.spec.fuel}",
        f"limit:{trace_limit or 0}",
    ):
        hasher.update(part.encode("ascii"))
        hasher.update(b"\x00")
    hasher.update(text)
    hasher.update(b"\x00")
    hasher.update(data)
    hasher.update(b"\x00")
    hasher.update(built.input_data)
    return hasher.hexdigest()


def compute_job_digest(spec: JobSpec) -> str:
    """Build the workload for *spec* and digest it (no simulation)."""
    built = build_workload(get_benchmark(spec.name, scale=spec.scale))
    return artifact_digest(built, trace_limit=spec.trace_limit)


@dataclass(frozen=True)
class JobResult:
    """Outcome of one executed job.

    ``artifacts`` is ``None`` when they were written to (or found in) the
    artifact store — the parent process loads them from there instead of
    shipping arrays through the pool's pickle pipe.
    """

    spec: JobSpec
    digest: str
    source: str  # "store" | "simulated"
    seconds: float
    artifacts: Optional[RunArtifacts] = None


class ArtifactStore:
    """Content-addressed trace/profile store.

    Layout is flat and human-readable: the legacy ``name-sSCALE[-lLIMIT]``
    tag with the content digest folded in::

        <root>/compress-s1-3f9a2c41d06b17e8.trace.npz
        <root>/compress-s1-3f9a2c41d06b17e8.profile.json
        <root>/compress-s1-3f9a2c41d06b17e8.meta.json

    The digest alone decides validity: a kernel edit changes the program
    image, hence the digest, hence the filename — stale artifacts simply
    stop being found.
    """

    #: hex digits of the digest folded into filenames.
    DIGEST_CHARS = 16

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    def stem(self, spec: JobSpec, digest: str) -> str:
        return f"{spec.tag()}-{digest[: self.DIGEST_CHARS]}"

    def paths(self, spec: JobSpec, digest: str) -> Tuple[Path, Path, Path]:
        """(trace, profile, meta) paths for one job."""
        stem = self.stem(spec, digest)
        return (
            self.root / f"{stem}.trace.npz",
            self.root / f"{stem}.profile.json",
            self.root / f"{stem}.meta.json",
        )

    def contains(self, spec: JobSpec, digest: str) -> bool:
        trace_path, profile_path, meta_path = self.paths(spec, digest)
        return (
            trace_path.exists()
            and profile_path.exists()
            and meta_path.exists()
        )

    def load(self, spec: JobSpec, digest: str) -> Optional[RunArtifacts]:
        """Artifacts for *spec* if stored, else None."""
        if not self.contains(spec, digest):
            return None
        trace_path, profile_path, meta_path = self.paths(spec, digest)
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        trace = load_trace(trace_path)
        profile = InterleaveProfile.load(profile_path)
        return RunArtifacts(
            name=spec.name,
            trace=trace,
            profile=profile,
            instructions=int(meta["instructions"]),
            static_branches=int(meta["static_branches"]),
        )

    def put(
        self, spec: JobSpec, digest: str, artifacts: RunArtifacts
    ) -> None:
        """Persist one job's artifacts under their content address."""
        self.root.mkdir(parents=True, exist_ok=True)
        trace_path, profile_path, meta_path = self.paths(spec, digest)
        save_trace(
            artifacts.trace, trace_path,
            meta={"digest": digest, "benchmark": spec.name},
        )
        artifacts.profile.save(profile_path)
        meta_path.write_text(
            json.dumps(
                {
                    "digest": digest,
                    "digest_version": DIGEST_VERSION,
                    "benchmark": spec.name,
                    "scale": spec.scale,
                    "trace_limit": spec.trace_limit,
                    "instructions": artifacts.instructions,
                    "static_branches": artifacts.static_branches,
                }
            ),
            encoding="utf-8",
        )


def _execute_job(payload: Tuple[JobSpec, Optional[str]]) -> JobResult:
    """Run one job end to end (pool worker; must stay module-level).

    Builds, digests, then either loads from the store or simulates and
    stores.  With a store the result carries no arrays — the parent
    reloads them by digest — so the pickle pipe stays small.
    """
    spec, cache_root = payload
    started = time.perf_counter()
    built = build_workload(get_benchmark(spec.name, scale=spec.scale))
    digest = artifact_digest(built, trace_limit=spec.trace_limit)
    store = ArtifactStore(Path(cache_root)) if cache_root else None
    if store is not None and store.contains(spec, digest):
        return JobResult(
            spec=spec,
            digest=digest,
            source="store",
            seconds=time.perf_counter() - started,
        )
    capture = TraceCapture(limit=spec.trace_limit)
    result = run_workload(built, branch_hook=capture)
    trace = capture.finish(spec.name)
    profile = profile_trace(trace, name=spec.name)
    profile.instructions = result.instructions
    artifacts = RunArtifacts(
        name=spec.name,
        trace=trace,
        profile=profile,
        instructions=result.instructions,
        static_branches=built.static_conditional_branches,
    )
    if store is not None:
        store.put(spec, digest, artifacts)
        artifacts = None  # parent reloads from the store
    return JobResult(
        spec=spec,
        digest=digest,
        source="simulated",
        seconds=time.perf_counter() - started,
        artifacts=artifacts,
    )


@dataclass
class EngineStats:
    """Cache and timing counters for one engine's lifetime."""

    store_hits: int = 0
    simulated: int = 0
    memo_hits: int = 0
    job_seconds: Dict[str, float] = field(default_factory=dict)
    job_source: Dict[str, str] = field(default_factory=dict)

    def record(self, result: JobResult) -> None:
        if result.source == "store":
            self.store_hits += 1
        else:
            self.simulated += 1
        self.job_seconds[result.spec.name] = result.seconds
        self.job_source[result.spec.name] = result.source

    @property
    def total_seconds(self) -> float:
        return sum(self.job_seconds.values())

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view (the CLI's --json envelope embeds this)."""
        return {
            "store_hits": self.store_hits,
            "simulated": self.simulated,
            "memo_hits": self.memo_hits,
            "jobs": [
                {
                    "benchmark": name,
                    "seconds": round(seconds, 4),
                    "source": self.job_source[name],
                }
                for name, seconds in sorted(self.job_seconds.items())
            ],
        }

    def render(self) -> str:
        """Human-readable per-job timing + hit/miss summary."""
        lines = ["-- engine --"]
        for name in sorted(self.job_seconds):
            lines.append(
                f"  {name:12s} {self.job_seconds[name]:8.2f}s  "
                f"{self.job_source[name]}"
            )
        lines.append(
            f"  cache: {self.store_hits} hit(s), "
            f"{self.simulated} simulated, {self.memo_hits} memoised"
        )
        return "\n".join(lines)


class ExecutionEngine:
    """Builds, simulates and profiles benchmark jobs, in parallel.

    Example::

        engine = ExecutionEngine(scale=1.0, cache_dir=".cache", jobs=4)
        results = engine.prefetch(["compress", "gcc", "li"])  # one pool pass
        engine.artifacts("gcc")  # memoised, free

    Args:
        scale: workload scale forwarded to the suite.
        cache_dir: optional root of the content-addressed artifact store.
        trace_limit: optional cap on captured events per run.
        jobs: worker processes for :meth:`prefetch`; 1 = sequential,
            in-process.
    """

    def __init__(
        self,
        scale: float = 1.0,
        cache_dir: Optional[Path] = None,
        trace_limit: Optional[int] = None,
        jobs: int = 1,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.scale = scale
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.trace_limit = trace_limit
        self.jobs = jobs
        self.store = (
            ArtifactStore(self.cache_dir)
            if self.cache_dir is not None
            else None
        )
        self.stats = EngineStats()
        self._memo: Dict[str, RunArtifacts] = {}
        self._digests: Dict[str, str] = {}

    # -- job bookkeeping ----------------------------------------------------

    def job(self, name: str) -> JobSpec:
        """The job spec this engine would run for *name*."""
        return JobSpec(
            name=name, scale=self.scale, trace_limit=self.trace_limit
        )

    def digest(self, name: str) -> str:
        """Content digest of *name*'s artifacts (builds, never simulates)."""
        cached = self._digests.get(name)
        if cached is None:
            cached = compute_job_digest(self.job(name))
            self._digests[name] = cached
        return cached

    def cache_paths(self, name: str) -> Optional[Tuple[Path, Path]]:
        """(trace, profile) store paths for *name*; None without a store."""
        if self.store is None:
            return None
        trace_path, profile_path, _ = self.store.paths(
            self.job(name), self.digest(name)
        )
        return trace_path, profile_path

    # -- public artifact API ------------------------------------------------

    def artifacts(self, name: str) -> RunArtifacts:
        """Trace + profile for benchmark *name* (memoised)."""
        cached = self._memo.get(name)
        if cached is not None:
            self.stats.memo_hits += 1
            return cached
        cache_root = str(self.cache_dir) if self.cache_dir else None
        return self._absorb(_execute_job((self.job(name), cache_root)))

    def trace(self, name: str) -> BranchTrace:
        """The benchmark's branch trace."""
        return self.artifacts(name).trace

    def profile(self, name: str) -> InterleaveProfile:
        """The benchmark's interleave profile."""
        return self.artifacts(name).profile

    def prefetch(
        self, names: Sequence[str]
    ) -> Dict[str, RunArtifacts]:
        """Materialise artifacts for *names*, fanning out across the pool.

        Unmemoised jobs run concurrently when ``jobs > 1``; results are
        collected order-independently, so parallel and sequential runs
        observe identical artifacts (same digests, same contents).
        """
        wanted = list(dict.fromkeys(names))
        missing = [n for n in wanted if n not in self._memo]
        if self.jobs > 1 and len(missing) > 1:
            import multiprocessing

            cache_root = str(self.cache_dir) if self.cache_dir else None
            payloads = [(self.job(n), cache_root) for n in missing]
            with multiprocessing.Pool(
                processes=min(self.jobs, len(missing))
            ) as pool:
                for result in pool.imap_unordered(_execute_job, payloads):
                    self._absorb(result)
        else:
            for name in missing:
                self.artifacts(name)
        for name in wanted:
            if name in self._memo and name not in missing:
                self.stats.memo_hits += 1
        return {name: self._memo[name] for name in wanted}

    def invalidate(self, name: Optional[str] = None) -> None:
        """Drop memoised artifacts (all of them when *name* is None)."""
        if name is None:
            self._memo.clear()
            self._digests.clear()
        else:
            self._memo.pop(name, None)
            self._digests.pop(name, None)

    # -- internals ----------------------------------------------------------

    def _absorb(self, result: JobResult) -> RunArtifacts:
        artifacts = result.artifacts
        if artifacts is None:
            if self.store is None:  # pragma: no cover - defensive
                raise RuntimeError(
                    "job result carried no artifacts and no store is "
                    "configured"
                )
            artifacts = self.store.load(result.spec, result.digest)
            if artifacts is None:  # pragma: no cover - defensive
                raise RuntimeError(
                    f"store lost artifacts for {result.spec.name} "
                    f"({result.digest[:16]})"
                )
        self._memo[result.spec.name] = artifacts
        self._digests[result.spec.name] = result.digest
        self.stats.record(result)
        return artifacts


def prefetch_artifacts(runner, names: Iterable[str]) -> None:
    """Warm *runner* for *names* if it supports batched prefetching.

    The experiment entry points call this first so that an engine-backed
    runner materialises every benchmark in one parallel pass; runners
    without :meth:`prefetch` (e.g. test doubles) fall through to their
    lazy per-benchmark path.
    """
    prefetch = getattr(runner, "prefetch", None)
    if prefetch is not None:
        prefetch(list(names))


__all__ = [
    "ArtifactStore",
    "DIGEST_VERSION",
    "EngineStats",
    "ExecutionEngine",
    "JobResult",
    "JobSpec",
    "RunArtifacts",
    "artifact_digest",
    "compute_job_digest",
    "prefetch_artifacts",
]
