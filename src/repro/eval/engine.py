"""Parallel evaluation engine with a fault-tolerant artifact store.

Every table and figure in the paper is a per-benchmark sweep, so the
dominant wall-clock cost is simulating the analog suite.  The
:class:`ExecutionEngine` removes that cost twice over:

* **Parallelism** — benchmark x scale x trace-limit jobs fan out across
  worker processes (``jobs=N``; ``N=1`` is a plain sequential loop
  in-process).
* **Content-addressed caching** — artifacts are keyed on a digest of the
  assembled program image, its input bytes and the capture parameters,
  so editing a kernel (or the assembler, via the emitted image)
  invalidates stale traces automatically and warm runs skip simulation
  entirely.

And, because the paper's sweeps are long multi-benchmark runs where one
bad job must not discard hours of completed work, the engine is built to
*degrade* rather than abort:

* store writes are atomic (tmp + ``os.replace``) and loads are verified —
  a corrupt entry is quarantined under ``<root>/quarantine/`` and costs a
  resimulation, never a crash;
* a worker that raises, dies or hangs yields a structured
  :class:`JobResult` carrying a typed :class:`~repro.errors.ReproError`
  instead of killing the pool pass;
* failures are retried with exponential backoff (``retries``/
  ``retry_backoff``) and bounded per-attempt wall-clock time
  (``timeout``, parallel runs only);
* whatever still fails lands in :attr:`ExecutionEngine.failures` so the
  experiment layer can run on the surviving benchmark set.

:class:`~repro.eval.runner.BenchmarkRunner` is a thin facade over this
module; experiment code that only needs ``artifacts/trace/profile`` can
accept either interchangeably.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..checkpoint import (
    CheckpointConfig,
    CheckpointStore,
    RunJournal,
    prune_directory,
    run_simulation,
)
from ..errors import (
    ArtifactCorrupt,
    JobFailed,
    JobInterrupted,
    JobTimeout,
    ReproError,
    SuiteInterrupted,
    error_to_dict,
)
from ..pipeline.bus import BranchEventBus, PipelineStats
from ..pipeline.consumers import (
    InterleaveConsumer,
    PredictorConsumer,
    TraceBuilder,
)
from ..predictors.base import BranchPredictor
from ..predictors.simulator import PredictionStats
from ..profiling.profile import InterleaveProfile
from ..sim.api import get_backend
from ..trace.events import BranchTrace
from ..trace.io import load_trace, read_trace_meta, save_trace
from ..workloads.build import BuiltWorkload, build_workload, run_workload
from ..workloads.suite import get_benchmark
from . import faults, interrupt
from .shards import ShardSpec, shard_names

#: Bump to invalidate every stored artifact (digest input change).
#: v2: the simulation backend became a digest component.
DIGEST_VERSION = 2

#: Scheduler poll interval while parallel jobs are in flight (seconds).
_POLL_SECONDS = 0.02


@dataclass(frozen=True)
class RunArtifacts:
    """Everything the experiments need for one benchmark run."""

    name: str
    trace: BranchTrace
    profile: InterleaveProfile
    instructions: int
    static_branches: int


@dataclass(frozen=True)
class FusedRunResult:
    """Outcome of one :meth:`ExecutionEngine.profile_and_predict` call.

    ``fused`` is True when the profile and every predictor ran inside
    the simulation pass itself; False when a cached trace was replayed.
    ``archived`` is True when a full trace exists for the benchmark
    (materialised this run or already cached).
    """

    name: str
    profile: InterleaveProfile
    predictions: Dict[str, PredictionStats]
    instructions: int
    static_branches: int
    fused: bool
    archived: bool
    pipeline: PipelineStats


@dataclass(frozen=True)
class JobSpec:
    """One unit of engine work: a benchmark at a scale and capture limit."""

    name: str
    scale: float = 1.0
    trace_limit: Optional[int] = None
    backend: str = "interp"

    def tag(self) -> str:
        """Human-readable artifact prefix (the legacy cache tag)."""
        tag = f"{self.name}-s{self.scale:g}"
        if self.trace_limit:
            tag += f"-l{self.trace_limit}"
        if self.backend != "interp":
            tag += f"-b{self.backend}"
        return tag


def artifact_digest(
    built: BuiltWorkload,
    trace_limit: Optional[int] = None,
    backend: str = "interp",
) -> str:
    """Content digest for one job's artifacts.

    Hashes the assembled program image (text + data + entry point), the
    input bytes, and every parameter that changes what a capture run
    records (random seed, fuel budget, trace limit).  Anything that
    alters the simulated instruction stream alters the digest.  The
    simulation backend is also a component: backends are verified
    byte-compatible, but artifacts must record exactly how they were
    produced, so different backends never alias in the store.
    """
    text, data = built.program.to_image()
    hasher = hashlib.sha256()
    for part in (
        f"v{DIGEST_VERSION}",
        f"entry:{built.program.entry_point}",
        f"seed:{built.spec.random_seed}",
        f"fuel:{built.spec.fuel}",
        f"limit:{trace_limit or 0}",
        f"backend:{backend}",
    ):
        hasher.update(part.encode("ascii"))
        hasher.update(b"\x00")
    hasher.update(text)
    hasher.update(b"\x00")
    hasher.update(data)
    hasher.update(b"\x00")
    hasher.update(built.input_data)
    return hasher.hexdigest()


def compute_job_digest(spec: JobSpec) -> str:
    """Build the workload for *spec* and digest it (no simulation)."""
    built = build_workload(get_benchmark(spec.name, scale=spec.scale))
    return artifact_digest(
        built, trace_limit=spec.trace_limit, backend=spec.backend
    )


@dataclass(frozen=True)
class JobResult:
    """Outcome of one executed job.

    ``artifacts`` is ``None`` when they were written to (or found in) the
    artifact store — the parent process loads them from there instead of
    shipping arrays through the pool's pickle pipe — *and* when the job
    failed, in which case ``error`` carries the typed failure and
    ``source`` is ``"failed"``.
    """

    spec: JobSpec
    digest: str
    source: str  # "store" | "simulated" | "resimulated" | "journal" | "failed"
    seconds: float
    artifacts: Optional[RunArtifacts] = None
    error: Optional[ReproError] = None
    attempts: int = 1
    quarantined: int = 0
    #: per-consumer observability counters when the job simulated
    #: through the event bus (None on store hits and failures).
    pipeline: Optional[PipelineStats] = None
    #: checkpoint files written during this job's simulation.
    checkpoints_written: int = 0
    #: True when the simulation restored from a checkpoint instead of
    #: starting from instruction zero.
    resumed: bool = False
    #: quarantine files age-pruned by the artifact store during the job.
    quarantine_pruned: int = 0


class ArtifactStore:
    """Content-addressed trace/profile store with verified, atomic entries.

    Layout is flat and human-readable: the legacy ``name-sSCALE[-lLIMIT]``
    tag with the content digest folded in::

        <root>/compress-s1-3f9a2c41d06b17e8.trace.npz
        <root>/compress-s1-3f9a2c41d06b17e8.profile.json
        <root>/compress-s1-3f9a2c41d06b17e8.meta.json

    The digest alone decides validity: a kernel edit changes the program
    image, hence the digest, hence the filename — stale artifacts simply
    stop being found.

    Robustness guarantees:

    * :meth:`put` stages all three files in a temp directory and commits
      each with ``os.replace`` (meta last), so a crashed or killed writer
      can never leave a torn entry that looks complete;
    * :meth:`load` and :meth:`verify` treat *any* defect — truncated
      JSON, a bad zip member, a missing key, a digest mismatch — as an
      :class:`~repro.errors.ArtifactCorrupt` cache miss: the bad files
      are moved to ``<root>/quarantine/`` (for post-mortem) and the
      caller resimulates;
    * :meth:`try_claim` takes an advisory per-digest claim file
      (``O_CREAT|O_EXCL``) before simulating, so two engines (or daemon
      workers) sharing one store never both miss and duplicate the same
      simulation: exactly one claims and simulates, the other
      :meth:`wait_for_writer`\\ s for the atomic publish — or proceeds
      on its own if the claim goes stale (the holder died) or the wait
      budget runs out.  Claims are *advisory*: correctness never
      depends on them (``put`` is atomic and idempotent), they only
      save duplicated work.
    """

    #: hex digits of the digest folded into filenames.
    DIGEST_CHARS = 16

    #: subdirectory corrupt entries are moved to.
    QUARANTINE_DIR = "quarantine"

    #: bound on quarantined files kept for post-mortem; older ones are
    #: pruned whenever a new entry is quarantined, so the directory can
    #: never grow without limit across long suite runs.
    QUARANTINE_KEEP = 24

    #: suffix of the advisory in-flight claim files.
    CLAIM_SUFFIX = ".claim"

    #: a claim whose holder cannot be liveness-probed counts as stale
    #: after this many seconds (holder-death is detected much sooner via
    #: the pid probe; this is the cross-host / unreadable-claim backstop).
    CLAIM_STALE_SECONDS = 600.0

    #: how long a second writer waits on a live claim before giving up
    #: and simulating anyway (duplicated work, never wrong results).
    CLAIM_WAIT_SECONDS = 600.0

    #: poll interval while waiting on another writer's claim.
    CLAIM_POLL_SECONDS = 0.05

    #: minimum interval between claim-mtime refreshes from a running
    #: job's progress path.  A healthy holder simulating one long job
    #: never rewrites its claim, so without refreshes the mtime backstop
    #: would eventually break a *live* claim; the checkpointed slice
    #: loop touches it at this cadence instead.
    CLAIM_REFRESH_SECONDS = 15.0

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        #: corruption events observed by this store instance.
        self.corrupt_events: List[ArtifactCorrupt] = []
        #: quarantined files pruned (age-bound) by this store instance.
        self.pruned_entries: int = 0
        #: misses served by waiting on another writer's claim.
        self.claim_waits: int = 0

    def stem(self, spec: JobSpec, digest: str) -> str:
        return f"{spec.tag()}-{digest[: self.DIGEST_CHARS]}"

    def paths(self, spec: JobSpec, digest: str) -> Tuple[Path, Path, Path]:
        """(trace, profile, meta) paths for one job."""
        stem = self.stem(spec, digest)
        return (
            self.root / f"{stem}.trace.npz",
            self.root / f"{stem}.profile.json",
            self.root / f"{stem}.meta.json",
        )

    def contains(self, spec: JobSpec, digest: str) -> bool:
        trace_path, profile_path, meta_path = self.paths(spec, digest)
        return (
            trace_path.exists()
            and profile_path.exists()
            and meta_path.exists()
        )

    # -- in-flight claims ---------------------------------------------------

    def claim_path(self, spec: JobSpec, digest: str) -> Path:
        """The advisory claim file for one job's digest."""
        return self.root / f"{self.stem(spec, digest)}{self.CLAIM_SUFFIX}"

    def try_claim(self, spec: JobSpec, digest: str) -> bool:
        """Atomically claim the right to simulate this digest.

        Creates the claim file with ``O_CREAT|O_EXCL`` — the one
        filesystem primitive that is atomic across processes — so under
        any interleaving of two writers exactly one call returns True.
        A pre-existing claim whose holder is provably dead (pid probe)
        or ancient (mtime backstop) is broken and re-taken.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.claim_path(spec, digest)
        payload = json.dumps(
            {"pid": os.getpid(), "ts": round(time.time(), 3)}
        ).encode("ascii")
        for _ in range(2):  # second pass: after breaking a stale claim
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if not self._claim_is_stale(path):
                    return False
                try:  # break the dead writer's claim and retry once
                    path.unlink()
                except OSError:
                    return False
                continue
            try:
                os.write(fd, payload)
            finally:
                os.close(fd)
            return True
        return False

    def release_claim(self, spec: JobSpec, digest: str) -> None:
        """Drop this job's claim (the artifacts are published, or we lost)."""
        try:
            self.claim_path(spec, digest).unlink()
        except OSError:
            pass

    def _claim_is_stale(self, path: Path) -> bool:
        """True when the claim's holder is dead or the claim is ancient.

        The pid probe is authoritative when it gives an answer: a holder
        that is provably *alive* keeps its claim no matter how old the
        file is (a healthy process deep in one long simulation may not
        touch the claim for ages — see :data:`CLAIM_REFRESH_SECONDS`),
        and a provably dead one loses it immediately.  The mtime age
        backstop applies only to claims that cannot be probed at all
        (cross-host stores, unreadable/foreign content, permissions).
        """
        try:
            raw = path.read_bytes()
        except OSError:
            return False  # claim vanished or unreadable: treat as live
        pid = None
        try:
            pid = int(json.loads(raw)["pid"])
        except Exception:
            pass  # mid-write or foreign content; fall through to mtime
        if pid is not None:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return True  # holder is gone (same-host pid probe)
            except OSError:
                pass  # exists but unprobeable (permissions): fall through
            else:
                return False  # holder provably alive: never break on age
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:
            return False
        return age > self.CLAIM_STALE_SECONDS

    def wait_for_writer(
        self, spec: JobSpec, digest: str, timeout: Optional[float] = None
    ) -> bool:
        """Wait for the claim holder to publish this digest's artifacts.

        Polls until the entry verifies (True), the claim disappears or
        goes stale without artifacts (False — the caller should claim
        and simulate), or the wait budget runs out (False — simulate
        anyway; duplicate work beats a deadlock on a wedged writer).
        """
        budget = self.CLAIM_WAIT_SECONDS if timeout is None else timeout
        deadline = time.monotonic() + budget
        path = self.claim_path(spec, digest)
        while True:
            if self.verify(spec, digest):
                self.claim_waits += 1
                return True
            if not path.exists() or self._claim_is_stale(path):
                if self.verify(spec, digest):
                    self.claim_waits += 1
                    return True
                return False
            if time.monotonic() >= deadline:
                return False
            time.sleep(self.CLAIM_POLL_SECONDS)

    # -- corruption handling ------------------------------------------------

    def quarantine(
        self, spec: JobSpec, digest: str, reason: str
    ) -> ArtifactCorrupt:
        """Move the entry's files aside and record the corruption event."""
        quarantine_root = self.root / self.QUARANTINE_DIR
        moved = []
        for path in self.paths(spec, digest):
            if not path.exists():
                continue
            quarantine_root.mkdir(parents=True, exist_ok=True)
            target = quarantine_root / path.name
            os.replace(path, target)
            moved.append(str(target))
        if moved:
            self.pruned_entries += prune_directory(
                quarantine_root, self.QUARANTINE_KEEP
            )
        error = ArtifactCorrupt(
            f"corrupt cache entry for {spec.name}: {reason}",
            benchmark=spec.name,
            digest=digest[: self.DIGEST_CHARS],
            quarantined=moved,
        )
        self.corrupt_events.append(error)
        return error

    def _read_verified_meta(self, spec: JobSpec, digest: str) -> Dict:
        """Parse + schema/digest-check the sidecars; raises on any defect."""
        trace_path, profile_path, meta_path = self.paths(spec, digest)
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        if int(meta["digest_version"]) != DIGEST_VERSION:
            raise ValueError(
                f"digest version {meta['digest_version']} != {DIGEST_VERSION}"
            )
        if meta["digest"] != digest:
            raise ValueError("meta digest does not match content digest")
        int(meta["instructions"])
        int(meta["static_branches"])
        if read_trace_meta(trace_path).get("digest") != digest:
            raise ValueError("trace digest does not match content digest")
        profile_payload = json.loads(
            profile_path.read_text(encoding="utf-8")
        )
        for key in ("branches", "pairs"):
            if key not in profile_payload:
                raise KeyError(key)
        return meta

    def verify(self, spec: JobSpec, digest: str) -> bool:
        """True when the stored entry exists and passes verification.

        Cheap relative to :meth:`load` (no event-column decompression);
        pool workers use it to decide hit vs resimulate.  Corrupt entries
        are quarantined as a side effect, so a False return means the
        caller can simulate-and-put without racing the bad files.
        """
        if not self.contains(spec, digest):
            return False
        try:
            self._read_verified_meta(spec, digest)
        except Exception as exc:
            self.quarantine(spec, digest, f"{type(exc).__name__}: {exc}")
            return False
        return True

    def load(self, spec: JobSpec, digest: str) -> Optional[RunArtifacts]:
        """Artifacts for *spec* if stored and intact, else None.

        Any corruption — unparseable JSON, missing keys, a damaged
        ``.npz``, digest mismatches — quarantines the entry and reads as
        a cache miss; corruption is *reported* via
        :attr:`corrupt_events`, never raised.
        """
        if not self.contains(spec, digest):
            return None
        trace_path, profile_path, _ = self.paths(spec, digest)
        try:
            meta = self._read_verified_meta(spec, digest)
            trace = load_trace(trace_path)
            profile = InterleaveProfile.load(profile_path)
            return RunArtifacts(
                name=spec.name,
                trace=trace,
                profile=profile,
                instructions=int(meta["instructions"]),
                static_branches=int(meta["static_branches"]),
            )
        except Exception as exc:
            self.quarantine(spec, digest, f"{type(exc).__name__}: {exc}")
            return None

    def put(
        self, spec: JobSpec, digest: str, artifacts: RunArtifacts
    ) -> None:
        """Persist one job's artifacts under their content address.

        All three files are staged in a private temp directory and moved
        into place with ``os.replace`` — meta last, acting as the commit
        record — so readers never observe a torn entry.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        trace_path, profile_path, meta_path = self.paths(spec, digest)
        stage = self.root / f".stage-{os.getpid()}-{self.stem(spec, digest)}"
        stage.mkdir(parents=True, exist_ok=True)
        try:
            save_trace(
                artifacts.trace, stage / trace_path.name,
                meta={"digest": digest, "benchmark": spec.name},
            )
            artifacts.profile.save(stage / profile_path.name)
            (stage / meta_path.name).write_text(
                json.dumps(
                    {
                        "digest": digest,
                        "digest_version": DIGEST_VERSION,
                        "benchmark": spec.name,
                        "scale": spec.scale,
                        "trace_limit": spec.trace_limit,
                        "instructions": artifacts.instructions,
                        "static_branches": artifacts.static_branches,
                    }
                ),
                encoding="utf-8",
            )
            for final in (trace_path, profile_path, meta_path):
                os.replace(stage / final.name, final)
        finally:
            for leftover in stage.glob("*"):
                leftover.unlink()
            stage.rmdir()


#: subdirectory of the cache root holding simulation checkpoints.
CHECKPOINT_SUBDIR = "checkpoints"


def _execute_job(
    payload: Tuple[JobSpec, Optional[str], bool, Optional[int]],
    progress: Optional[Callable[[str, int], None]] = None,
    speculative: bool = False,
) -> JobResult:
    """Run one job end to end (pool worker; must stay module-level).

    Builds, digests, then either loads from the store or simulates and
    stores.  With a store the result carries no arrays — the parent
    reloads them by digest — so the pickle pipe stays small.

    With a checkpoint cadence (``checkpoint_every`` events) and a store,
    the simulation runs through the sliced checkpoint runner: it resumes
    from the latest valid checkpoint for this job's stem, writes new
    ones as it goes, and clears them once the artifacts are safely in
    the store.  A retried/killed job therefore continues where the
    previous attempt stopped instead of restarting from instruction
    zero.

    ``progress`` (in-process callers only; it cannot cross the pool's
    pickle pipe) is invoked with ``(benchmark, events)`` at job start and
    after every checkpoint slice — supervised shard workers refresh their
    heartbeat lease from it.  Independently of the caller's hook, a held
    store claim has its mtime refreshed on the same path (throttled by
    :data:`ArtifactStore.CLAIM_REFRESH_SECONDS`), so a slow-but-alive
    holder is never mistaken for a dead one by the mtime backstop.

    ``speculative`` marks a straggler re-execution: the job never waits
    on another writer's live claim, it simulates concurrently and relies
    on the store's idempotent atomic put — first writer wins, and the
    content address guarantees both writers carry identical bytes.

    An installed :class:`~repro.eval.faults.FaultPlan` is honoured here:
    crash/hang/flaky faults fire before the build, ``worker_kill`` fires
    from the checkpointed runner's slice loop, corruption faults right
    after the artifacts are stored.
    """
    spec, cache_root, in_worker, checkpoint_every = payload
    started = time.perf_counter()
    plan = faults.active_plan()
    if plan is not None:
        plan.on_job_start(spec.name, in_worker)
    if progress is not None:
        progress(spec.name, 0)
    built = build_workload(get_benchmark(spec.name, scale=spec.scale))
    digest = artifact_digest(
        built, trace_limit=spec.trace_limit, backend=spec.backend
    )
    store = ArtifactStore(Path(cache_root)) if cache_root else None
    ckpt_store = None
    stem = ""
    if checkpoint_every is not None and store is not None:
        stem = store.stem(spec, digest)
        ckpt_store = CheckpointStore(Path(cache_root) / CHECKPOINT_SUBDIR)

    def store_hit() -> JobResult:
        if ckpt_store is not None:
            ckpt_store.clear(stem)  # artifacts exist; drop stale state
        return JobResult(
            spec=spec,
            digest=digest,
            source="store",
            seconds=time.perf_counter() - started,
            quarantined=len(store.corrupt_events),
            quarantine_pruned=store.pruned_entries,
        )

    if store is not None and store.verify(spec, digest):
        return store_hit()
    claimed = store.try_claim(spec, digest) if store is not None else False
    if store is not None and not claimed and not speculative:
        # Another engine (or daemon worker) is simulating this exact
        # digest right now: wait for its atomic publish instead of
        # duplicating the simulation.  A stale claim (the writer died)
        # or an exhausted wait budget falls through to simulating here.
        # Speculative re-executions skip the wait on purpose — racing
        # the (possibly wedged) claim holder is their entire job.
        if store.wait_for_writer(spec, digest):
            return store_hit()
        claimed = store.try_claim(spec, digest)

    last_refresh = [time.monotonic()]

    def _slice_progress(events: int) -> None:
        if claimed:
            now = time.monotonic()
            if now - last_refresh[0] >= store.CLAIM_REFRESH_SECONDS:
                last_refresh[0] = now
                try:
                    os.utime(store.claim_path(spec, digest))
                except OSError:
                    pass  # claim broken/raced away; put stays idempotent
        if progress is not None:
            progress(spec.name, events)

    try:
        # one pass: the bus fans each branch event to the profiler and
        # the chunked trace builder together (no capture-then-replay)
        profiler = InterleaveConsumer(label=spec.name)
        builder = TraceBuilder(label=spec.name)
        bus = BranchEventBus([profiler, builder], limit=spec.trace_limit)
        checkpoints_written = 0
        resumed = False
        checkpoint_quarantined = 0
        if ckpt_store is not None:
            outcome = run_simulation(
                built,
                bus,
                config=CheckpointConfig(
                    store=ckpt_store,
                    stem=stem,
                    every_events=checkpoint_every,
                ),
                fault_plan=plan,
                benchmark=spec.name,
                in_worker=in_worker,
                backend=spec.backend,
                stop_check=interrupt.drain_requested,
                progress=_slice_progress,
            )
            result = outcome.result
            checkpoints_written = outcome.checkpoints_written
            resumed = outcome.resumed_from_checkpoint
            checkpoint_quarantined = len(ckpt_store.corrupt_events)
            if outcome.interrupted:
                raise JobInterrupted(
                    f"{spec.name} drained on SIGTERM after "
                    f"{bus.stats.events} events "
                    f"({checkpoints_written} checkpoint(s) written; "
                    "resumable)",
                    benchmark=spec.name,
                    events=bus.stats.events,
                    checkpoints_written=checkpoints_written,
                )
        else:
            result = run_workload(
                built, branch_hook=bus, backend=spec.backend
            )
        pipeline = bus.finish()
        trace = builder.result
        profile = profiler.result
        profile.instructions = result.instructions
        artifacts = RunArtifacts(
            name=spec.name,
            trace=trace,
            profile=profile,
            instructions=result.instructions,
            static_branches=built.static_conditional_branches,
        )
        if store is not None:
            store.put(spec, digest, artifacts)
            if ckpt_store is not None:
                ckpt_store.clear(stem)  # artifacts are the durable state
            if plan is not None:
                trace_path, _, meta_path = store.paths(spec, digest)
                plan.on_artifacts_stored(spec.name, trace_path, meta_path)
            artifacts = None  # parent reloads from the store
    finally:
        if claimed:
            store.release_claim(spec, digest)
    return JobResult(
        spec=spec,
        digest=digest,
        source="simulated",
        seconds=time.perf_counter() - started,
        artifacts=artifacts,
        quarantined=(
            len(store.corrupt_events) if store is not None else 0
        )
        + checkpoint_quarantined,
        pipeline=pipeline,
        checkpoints_written=checkpoints_written,
        resumed=resumed,
        quarantine_pruned=store.pruned_entries if store is not None else 0,
    )


def _worker_entry(conn, payload) -> None:
    """Process entry point: ship the result (or a failure) to the parent.

    Every exception is serialised and sent back, so a *raising* job can
    never take down the pass; a job that kills its process (``os._exit``)
    or hangs is detected parent-side by liveness/deadline monitoring.

    SIGTERM is routed to the drain flag, so a terminated worker (drain,
    deadline cancellation) checkpoints at the next slice boundary and
    reports a typed ``job_interrupted`` outcome instead of dying with
    work in flight; a worker that ignores it (a hang fault) is escalated
    to SIGKILL by the parent's reaper.
    """
    interrupt.install_worker_handler()
    interrupt.set_pdeathsig()
    try:
        try:
            result = _execute_job(payload)
        except Exception as exc:  # crash isolation: report, don't die
            conn.send(("error", error_to_dict(exc)))
        else:
            conn.send(("ok", result))
    finally:
        conn.close()


#: seconds a draining scheduler waits for terminated workers to report
#: their checkpointed ``job_interrupted`` outcome before escalating to
#: SIGKILL (progress is already durable in the checkpoint either way).
DRAIN_KILL_GRACE = 10.0


class WorkerHandle:
    """One in-flight attempt of one engine job in a sacrificial process.

    The spawn/poll/terminate lifecycle, extracted from the parallel
    scheduler so that the analysis daemon (:mod:`repro.service.app`) can
    drive the very same workers from an asyncio loop: ``poll`` is
    non-blocking, so the caller decides how to wait (a sleep loop here,
    ``await asyncio.sleep`` there).

    ``poll`` outcomes (None while still running):

    * ``("ok", JobResult)`` — the job finished; artifacts are in the
      store (or inline for storeless runs);
    * ``("error", payload)`` — the job raised; *payload* is the typed
      error dict (``payload["code"] == "job_interrupted"`` marks a
      drained worker that checkpointed on the way down);
    * ``("crash", exitcode)`` — the process died without reporting;
    * ``("timeout", None)`` — the deadline passed; the worker has been
      sent SIGTERM (it checkpoints if a cadence is configured) and the
      caller should :meth:`reap` it.
    """

    def __init__(
        self,
        spec: JobSpec,
        cache_root: Optional[str],
        checkpoint_every: Optional[int] = None,
        timeout: Optional[float] = None,
        ctx: Optional[object] = None,
    ) -> None:
        if ctx is None:
            import multiprocessing

            ctx = multiprocessing.get_context()
        self.spec = spec
        self.started = time.monotonic()
        self.deadline = (
            self.started + timeout if timeout is not None else None
        )
        self.receiver, sender = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=_worker_entry,
            args=(sender, (spec, cache_root, True, checkpoint_every)),
            daemon=True,
        )
        self.process.start()
        sender.close()

    def poll(self) -> Optional[Tuple[str, object]]:
        """The worker's outcome if it has one, else None (non-blocking)."""
        if self.receiver.poll():
            try:
                return self.receiver.recv()
            except EOFError:
                return ("crash", self.process.exitcode)
        if not self.process.is_alive():
            return ("crash", self.process.exitcode)
        if self.deadline is not None and time.monotonic() > self.deadline:
            self.terminate()
            return ("timeout", None)
        return None

    def terminate(self) -> None:
        """SIGTERM the worker: it checkpoints and reports interrupted."""
        self.process.terminate()

    def kill(self) -> None:
        """SIGKILL the worker: no cleanup, no report (crash outcome)."""
        self.process.kill()

    def reap(self, grace: float = 5.0) -> None:
        """Close the pipe and join, escalating to SIGKILL on a hang."""
        self.receiver.close()
        self.process.join(timeout=grace)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=grace)


@dataclass
class EngineStats:
    """Cache, timing and failure counters for one engine's lifetime."""

    store_hits: int = 0
    simulated: int = 0
    memo_hits: int = 0
    failed: int = 0
    retried: int = 0
    timeouts: int = 0
    quarantined: int = 0
    #: checkpoint/resume counters (schema v4).
    checkpoints_written: int = 0
    resumed_from_checkpoint: int = 0
    #: benchmarks loaded straight from the run journal (--resume).
    journal_skips: int = 0
    #: quarantine files age-pruned to keep the directory bounded.
    quarantine_pruned: int = 0
    #: fused one-pass profile+predict runs vs replays of a cached trace.
    fused_runs: int = 0
    replayed_runs: int = 0
    #: distributed-run identity (schema v8): the ``K/N`` shard this
    #: engine owns and the selector expression that produced its names,
    #: both None for plain unsharded runs.
    shard: Optional[str] = None
    selection: Optional[str] = None
    #: which shard cost model partitioned this engine's names (schema
    #: v9): ``"measured"`` when journal wall-clock medians drove the LPT
    #: partition, ``"fuel"`` for the static estimate, None when no
    #: partitioning happened.
    cost_model: Optional[str] = None
    #: aggregated per-consumer bus counters across every bus this engine
    #: ran (simulation jobs, fused runs and bank replays alike).
    pipeline: PipelineStats = field(default_factory=PipelineStats)
    job_seconds: Dict[str, float] = field(default_factory=dict)
    job_source: Dict[str, str] = field(default_factory=dict)
    failures: List[Dict[str, object]] = field(default_factory=list)

    def record(self, result: JobResult) -> None:
        self.quarantined += result.quarantined
        self.quarantine_pruned += result.quarantine_pruned
        self.checkpoints_written += result.checkpoints_written
        if result.resumed:
            self.resumed_from_checkpoint += 1
        self.retried += max(0, result.attempts - 1)
        if result.pipeline is not None:
            self.pipeline.merge(result.pipeline)
        if result.error is not None:
            self.failed += 1
            if isinstance(result.error, JobTimeout):
                self.timeouts += 1
            self.failures.append(
                {"benchmark": result.spec.name, **result.error.to_dict()}
            )
        elif result.source == "store":
            self.store_hits += 1
        elif result.source == "journal":
            self.journal_skips += 1
        else:
            self.simulated += 1
        self.job_seconds[result.spec.name] = result.seconds
        self.job_source[result.spec.name] = (
            "failed" if result.error is not None else result.source
        )

    @property
    def total_seconds(self) -> float:
        return sum(self.job_seconds.values())

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view (the CLI's --json envelope embeds this)."""
        return {
            "store_hits": self.store_hits,
            "simulated": self.simulated,
            "memo_hits": self.memo_hits,
            "failed": self.failed,
            "retried": self.retried,
            "timeouts": self.timeouts,
            "quarantined": self.quarantined,
            "checkpoints_written": self.checkpoints_written,
            "resumed_from_checkpoint": self.resumed_from_checkpoint,
            "journal_skips": self.journal_skips,
            "quarantine_pruned": self.quarantine_pruned,
            "fused_runs": self.fused_runs,
            "replayed_runs": self.replayed_runs,
            "shard": self.shard,
            "selection": self.selection,
            "cost_model": self.cost_model,
            "pipeline": self.pipeline.as_dict(),
            "jobs": [
                {
                    "benchmark": name,
                    "seconds": round(seconds, 4),
                    "source": self.job_source[name],
                }
                for name, seconds in sorted(self.job_seconds.items())
            ],
            "failures": list(self.failures),
        }

    def render(self) -> str:
        """Human-readable per-job timing + hit/miss/failure summary."""
        lines = ["-- engine --"]
        if self.shard is not None:
            selection = f" of {self.selection!r}" if self.selection else ""
            lines.append(f"  shard: {self.shard}{selection}")
        if self.cost_model is not None:
            lines.append(f"  cost model: {self.cost_model}")
        for name in sorted(self.job_seconds):
            lines.append(
                f"  {name:12s} {self.job_seconds[name]:8.2f}s  "
                f"{self.job_source[name]}"
            )
        lines.append(
            f"  cache: {self.store_hits} hit(s), "
            f"{self.simulated} simulated, {self.memo_hits} memoised"
        )
        lines.append(
            f"  faults: {self.failed} failed, {self.retried} retried, "
            f"{self.timeouts} timed out, {self.quarantined} quarantined"
        )
        lines.append(
            f"  resume: {self.checkpoints_written} checkpoint(s) written, "
            f"{self.resumed_from_checkpoint} resumed, "
            f"{self.journal_skips} journal skip(s), "
            f"{self.quarantine_pruned} quarantine file(s) pruned"
        )
        for failure in self.failures:
            lines.append(
                f"    {failure.get('benchmark', '?')}: "
                f"{failure.get('code', '?')} — {failure.get('message', '')}"
            )
        return "\n".join(lines)


class ExecutionEngine:
    """Builds, simulates and profiles benchmark jobs, in parallel.

    Example::

        engine = ExecutionEngine(scale=1.0, cache_dir=".cache", jobs=4)
        results = engine.prefetch(["compress", "gcc", "li"])  # one pool pass
        engine.artifacts("gcc")  # memoised, free
        engine.failures          # {} unless something kept failing

    Args:
        scale: workload scale forwarded to the suite.
        cache_dir: optional root of the content-addressed artifact store.
        trace_limit: optional cap on captured events per run.
        jobs: worker processes for :meth:`prefetch`; 1 = sequential,
            in-process.
        timeout: per-attempt wall-clock budget in seconds for parallel
            jobs (None disables; sequential in-process runs cannot be
            pre-empted and ignore it).
        retries: extra attempts per failed job before it is recorded as
            a failure.
        retry_backoff: base delay between attempts, doubled per retry.
        checkpoint_every_events: write a simulation checkpoint whenever
            this many new branch events have accumulated, so retried,
            timed-out or killed jobs resume mid-run instead of
            restarting (requires ``cache_dir``; None disables).
        resume: consult the cache's run journal first and skip
            benchmarks whose completion it records (requires
            ``cache_dir``).
        backend: simulation backend name or instance
            (:mod:`repro.sim.api`); folded into every job spec, digest
            and journal record this engine produces.
        shard: this engine's slice of a distributed run — a
            :class:`~repro.eval.shards.ShardSpec` or its ``K/N`` string
            form.  :meth:`prefetch` then simulates only the benchmarks
            the deterministic cost-balanced partition assigns this
            shard; the shard tag lands in journal records and
            :attr:`stats`, but never in job digests, so shard stores
            merge byte-identically into an unsharded run.
        selection: the selector expression the run's names came from
            (observability only: journal records, stats, envelope).
        progress: liveness callback invoked with ``(benchmark, events)``
            at each job start and after every checkpoint slice — the
            supervised shard worker's heartbeat hook.  In-process
            execution only (``jobs`` must be 1): a callable cannot
            cross the pool's pickle pipe.
        speculative: mark every job as a speculative straggler
            re-execution — never wait on another writer's live store
            claim, race it and rely on the idempotent atomic put
            (first writer wins, byte-identical by construction).
        cost_model: which shard cost model partitioned this engine's
            names (``"measured"``/``"fuel"``; observability only —
            partitioning happens at the selection/supervisor layer).
        journal_strict: how ``resume`` treats a damaged run journal.
            True (the default) validates structurally and raises
            :class:`~repro.errors.JournalInvalid` on mid-file garbage.
            Supervised shard workers pass False: N siblings share one
            journal and any of them can be SIGKILLed mid-append, so a
            restarted worker must tolerate a sibling's torn line (it is
            skipped with a warning) instead of dying on it — which
            would turn one injected kill into an unrecoverable restart
            loop.
    """

    def __init__(
        self,
        scale: float = 1.0,
        cache_dir: Optional[Path] = None,
        trace_limit: Optional[int] = None,
        jobs: int = 1,
        timeout: Optional[float] = None,
        retries: int = 1,
        retry_backoff: float = 0.05,
        checkpoint_every_events: Optional[int] = None,
        resume: bool = False,
        backend: Optional[object] = None,
        shard: Optional[object] = None,
        selection: Optional[str] = None,
        progress: Optional[Callable[[str, int], None]] = None,
        speculative: bool = False,
        cost_model: Optional[str] = None,
        journal_strict: bool = True,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if checkpoint_every_events is not None:
            if checkpoint_every_events < 1:
                raise ValueError(
                    "checkpoint_every_events must be >= 1, got "
                    f"{checkpoint_every_events}"
                )
            if cache_dir is None:
                raise ValueError(
                    "checkpoint_every_events requires a cache_dir "
                    "(checkpoints live under the cache root)"
                )
        if resume and cache_dir is None:
            raise ValueError(
                "resume requires a cache_dir (the run journal lives "
                "under the cache root)"
            )
        if progress is not None and jobs > 1:
            raise ValueError(
                "progress callbacks need in-process execution (jobs=1); "
                "they cannot cross the worker pool's pickle pipe"
            )
        self.scale = scale
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.trace_limit = trace_limit
        self.backend = get_backend(backend).name
        self.shard = (
            ShardSpec.parse(shard) if isinstance(shard, str) else shard
        )
        self.selection = selection
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.checkpoint_every_events = checkpoint_every_events
        self.resume = resume
        self.progress = progress
        self.speculative = speculative
        self.store = (
            ArtifactStore(self.cache_dir)
            if self.cache_dir is not None
            else None
        )
        self.journal = (
            RunJournal(self.cache_dir)
            if self.cache_dir is not None
            else None
        )
        self.stats = EngineStats(
            shard=self.shard.tag if self.shard is not None else None,
            selection=selection,
            cost_model=cost_model,
        )
        #: benchmarks that exhausted their retries, name -> typed error.
        self.failures: Dict[str, ReproError] = {}
        self._memo: Dict[str, RunArtifacts] = {}
        self._digests: Dict[str, str] = {}
        #: set when a SIGTERM drain cut a prefetch pass short.
        self.interrupted = False
        #: tolerated journal damage found at resume time (torn tail);
        #: structural damage raises JournalInvalid here instead, naming
        #: the journal path and the offending record.
        self.journal_warnings: List[str] = []
        if self.resume and self.journal is not None:
            if journal_strict:
                self.journal_warnings = self.journal.validate()
            else:
                _, self.journal_warnings = self.journal.read_tolerant()

    # -- job bookkeeping ----------------------------------------------------

    def job(self, name: str) -> JobSpec:
        """The job spec this engine would run for *name*."""
        return JobSpec(
            name=name,
            scale=self.scale,
            trace_limit=self.trace_limit,
            backend=self.backend,
        )

    def digest(self, name: str) -> str:
        """Content digest of *name*'s artifacts (builds, never simulates)."""
        cached = self._digests.get(name)
        if cached is None:
            cached = compute_job_digest(self.job(name))
            self._digests[name] = cached
        return cached

    def cache_paths(self, name: str) -> Optional[Tuple[Path, Path]]:
        """(trace, profile) store paths for *name*; None without a store."""
        if self.store is None:
            return None
        trace_path, profile_path, _ = self.store.paths(
            self.job(name), self.digest(name)
        )
        return trace_path, profile_path

    def _cache_root(self) -> Optional[str]:
        return str(self.cache_dir) if self.cache_dir else None

    # -- public artifact API ------------------------------------------------

    def artifacts(self, name: str) -> RunArtifacts:
        """Trace + profile for benchmark *name* (memoised).

        Raises:
            JobFailed: when the job keeps failing after its retries (the
                recorded failure is re-raised on repeated access).
        """
        cached = self._memo.get(name)
        if cached is not None:
            self.stats.memo_hits += 1
            return cached
        known_failure = self.failures.get(name)
        if known_failure is not None:
            raise known_failure
        result = self._run_sequential_job(name)
        if result.error is not None:
            raise result.error
        return self._memo[name]

    def trace(self, name: str) -> BranchTrace:
        """The benchmark's branch trace."""
        return self.artifacts(name).trace

    def profile(self, name: str) -> InterleaveProfile:
        """The benchmark's interleave profile."""
        return self.artifacts(name).profile

    def profile_and_predict(
        self,
        name: str,
        predictors: Sequence[BranchPredictor],
        warmup: int = 0,
        track_per_branch: bool = False,
        archive: Optional[bool] = None,
    ) -> FusedRunResult:
        """Profile *name* and run a predictor bank over it in one pass.

        Warm path — artifacts already memoised or verifiably in the
        store — replays the cached trace through the bank in one chunked
        pass (the profile comes from the cache).  Cold path fuses
        everything into the simulation itself: the event bus fans each
        branch event to the interleave analyzer and every predictor
        concurrently, so the trace need never be materialised when only
        aggregates are wanted.

        Args:
            name: benchmark name.
            predictors: the bank (consumed statefully; reset first when
                reusing predictor instances).
            warmup: leading events that train but are not scored.
            track_per_branch: keep per-static-branch counters.
            archive: materialise (and, with a store, persist) the trace
                on a cold run.  None archives exactly when a store is
                configured — so the next run goes warm — False skips the
                trace entirely, True forces materialisation (memo-only
                without a store).

        Raises:
            ValueError: if two predictors share a name.
            JobFailed: when the benchmark keeps failing.
        """
        seen = set()
        for predictor in predictors:
            if predictor.name in seen:
                raise ValueError(
                    f"duplicate predictor name {predictor.name!r}"
                )
            seen.add(predictor.name)
        known_failure = self.failures.get(name)
        if known_failure is not None:
            raise known_failure
        warm = name in self._memo or (
            self.store is not None
            and self.store.verify(self.job(name), self.digest(name))
        )
        bank = [
            PredictorConsumer(
                predictor,
                label=name,
                track_per_branch=track_per_branch,
                warmup=warmup,
            )
            for predictor in predictors
        ]
        if warm:
            artifacts = self.artifacts(name)
            stats = BranchEventBus.replay(artifacts.trace, bank)
            self.stats.replayed_runs += 1
            self.stats.pipeline.merge(stats)
            return FusedRunResult(
                name=name,
                profile=artifacts.profile,
                predictions={c.predictor.name: c.result for c in bank},
                instructions=artifacts.instructions,
                static_branches=artifacts.static_branches,
                fused=False,
                archived=True,
                pipeline=stats,
            )
        started = time.perf_counter()
        built = build_workload(get_benchmark(name, scale=self.scale))
        digest = artifact_digest(
            built, trace_limit=self.trace_limit, backend=self.backend
        )
        profiler = InterleaveConsumer(label=name)
        do_archive = archive if archive is not None else (
            self.store is not None
        )
        builder = TraceBuilder(label=name) if do_archive else None
        consumers: List[object] = [profiler, *bank]
        if builder is not None:
            consumers.append(builder)
        bus = BranchEventBus(consumers, limit=self.trace_limit)
        run = run_workload(built, branch_hook=bus, backend=self.backend)
        stats = bus.finish()
        profile = profiler.result
        profile.instructions = run.instructions
        if builder is not None:
            artifacts = RunArtifacts(
                name=name,
                trace=builder.result,
                profile=profile,
                instructions=run.instructions,
                static_branches=built.static_conditional_branches,
            )
            if self.store is not None:
                self.store.put(self.job(name), digest, artifacts)
            self._memo[name] = artifacts
        self._digests[name] = digest
        self.stats.fused_runs += 1
        self.stats.pipeline.merge(stats)
        self.stats.job_seconds[name] = time.perf_counter() - started
        self.stats.job_source[name] = "fused"
        return FusedRunResult(
            name=name,
            profile=profile,
            predictions={c.predictor.name: c.result for c in bank},
            instructions=run.instructions,
            static_branches=built.static_conditional_branches,
            fused=True,
            archived=builder is not None,
            pipeline=stats,
        )

    def prefetch(
        self, names: Sequence[str]
    ) -> Dict[str, RunArtifacts]:
        """Materialise artifacts for *names*, fanning out across the pool.

        Unmemoised jobs run concurrently when ``jobs > 1``; results are
        collected order-independently, so parallel and sequential runs
        observe identical artifacts (same digests, same contents).

        Jobs that fail — a raising benchmark, a crashed or hung worker, a
        corrupt store entry that will not resimulate — never abort the
        pass: they are retried up to ``retries`` times and then recorded
        in :attr:`failures`.  The returned mapping contains only the
        benchmarks that produced artifacts.

        Raises:
            SuiteInterrupted: when a SIGTERM drain stopped the pass
                (see :mod:`repro.eval.interrupt`); completed work is
                journaled, in-flight jobs checkpointed, and a
                ``--resume`` rerun continues from here.
        """
        # Sharding is applied by the selection layer (shard_subset at
        # the experiment/CLI call sites), exactly once — re-partitioning
        # an already-filtered subset here would silently shrink it.
        wanted = list(dict.fromkeys(names))
        missing = [
            n for n in wanted
            if n not in self._memo and n not in self.failures
        ]
        if self.resume and self.journal is not None and missing:
            # Replay the run journal first: benchmarks it records as
            # completed load straight from the store (in-process — no
            # worker spawn) and drop out of the pool pass.  A journaled
            # entry whose artifacts turn out damaged falls back to a
            # resimulation inside _absorb.
            completed = self.journal.completed(
                self.scale, self.trace_limit, backend=self.backend
            )
            remaining = []
            for name in missing:
                digest = completed.get(name)
                if digest is None:
                    remaining.append(name)
                    continue
                self._absorb(
                    JobResult(
                        spec=self.job(name),
                        digest=digest,
                        source="journal",
                        seconds=0.0,
                    )
                )
            missing = remaining
        if self.jobs > 1 and len(missing) > 1:
            self._run_parallel(missing)
        else:
            for name in missing:
                if interrupt.drain_requested():
                    self.interrupted = True
                    break
                result = self._run_sequential_job(name)
                if isinstance(result.error, JobInterrupted):
                    self.interrupted = True
                    break
        if self.interrupted:
            completed = [n for n in wanted if n in self._memo]
            remaining = [n for n in wanted if n not in self._memo]
            raise SuiteInterrupted(
                f"suite drained on SIGTERM: {len(completed)}/"
                f"{len(wanted)} benchmark(s) completed; in-flight "
                "progress is checkpointed — rerun with --resume to "
                "continue",
                completed=completed,
                remaining=remaining,
            )
        for name in wanted:
            if name in self._memo and name not in missing:
                self.stats.memo_hits += 1
        return {
            name: self._memo[name]
            for name in wanted
            if name in self._memo
        }

    def invalidate(self, name: Optional[str] = None) -> None:
        """Drop memoised artifacts and recorded failures.

        (All of them when *name* is None.)  Clearing a failure makes the
        next access retry the benchmark from scratch.
        """
        if name is None:
            self._memo.clear()
            self._digests.clear()
            self.failures.clear()
        else:
            self._memo.pop(name, None)
            self._digests.pop(name, None)
            self.failures.pop(name, None)

    # -- internals ----------------------------------------------------------

    def _backoff_seconds(self, attempt: int) -> float:
        """Exponential backoff before retry *attempt* (attempts are 1-based,
        so the first retry — attempt 2 — waits one base interval)."""
        return self.retry_backoff * (2 ** (attempt - 2))

    def _journal_digest(self, name: str) -> Optional[str]:
        """The journal-recorded artifact digest for *name*, if resuming."""
        if not self.resume or self.journal is None:
            return None
        return self.journal.completed(self.scale, self.trace_limit).get(
            name
        )

    def _run_sequential_job(self, name: str) -> JobResult:
        """Run one job in-process with the retry policy, then absorb it."""
        spec = self.job(name)
        journal_digest = self._journal_digest(name)
        if journal_digest is not None:
            # Recorded as completed: load straight from the store by the
            # journaled digest.  _absorb's load path falls back to a
            # resimulation if the artifacts turn out to be damaged.
            return self._absorb(
                JobResult(
                    spec=spec,
                    digest=journal_digest,
                    source="journal",
                    seconds=0.0,
                )
            )
        payload = (spec, self._cache_root(), False, self.checkpoint_every_events)
        started = time.perf_counter()
        attempt = 0
        while True:
            attempt += 1
            try:
                result = _execute_job(
                    payload,
                    progress=self.progress,
                    speculative=self.speculative,
                )
            except KeyError:
                raise  # unknown benchmark/kernel: caller error, not a fault
            except JobInterrupted as exc:
                # A drain is resumable progress, not a fault: no retry.
                result = JobResult(
                    spec=spec,
                    digest="",
                    source="failed",
                    seconds=time.perf_counter() - started,
                    error=exc,
                    attempts=attempt,
                )
            except Exception as exc:
                if attempt <= self.retries and not interrupt.drain_requested():
                    time.sleep(self._backoff_seconds(attempt + 1))
                    continue
                failure = exc if isinstance(exc, JobFailed) else JobFailed(
                    f"{name} failed after {attempt} attempt(s): {exc}",
                    benchmark=name,
                    attempts=attempt,
                    cause=error_to_dict(exc),
                )
                result = JobResult(
                    spec=spec,
                    digest="",
                    source="failed",
                    seconds=time.perf_counter() - started,
                    error=failure,
                    attempts=attempt,
                )
            else:
                result = dataclasses.replace(result, attempts=attempt)
            return self._absorb(result)

    def _run_parallel(self, missing: Sequence[str]) -> None:
        """Fan *missing* out over worker processes with fault handling.

        One daemon process (a :class:`WorkerHandle`) per attempt, at
        most ``jobs`` in flight; the scheduler polls for three
        completion modes — a result on the pipe, a dead process
        (crash), a blown deadline (hang) — and requeues failed attempts
        with backoff until retries run out.  Terminated/hung workers
        are killed, never joined indefinitely.

        A SIGTERM drain (:mod:`repro.eval.interrupt`) stops launches,
        clears the pending queue (those jobs were never journaled, so a
        ``--resume`` rerun picks them up), forwards SIGTERM to every
        running worker — which writes a final checkpoint and reports
        ``job_interrupted`` — and records those outcomes without
        retrying.  A worker that has not wound down within
        :data:`DRAIN_KILL_GRACE` seconds is SIGKILLed; its progress is
        already durable in the checkpoint.
        """
        cache_root = self._cache_root()
        # (spec, attempt, not_before) — not_before implements backoff
        # without stalling the scheduler.
        pending: List[Tuple[JobSpec, int, float]] = [
            (self.job(n), 1, 0.0) for n in missing
        ]
        running: Dict[WorkerHandle, int] = {}
        first_launch: Dict[str, float] = {}
        drain_started: Optional[float] = None

        def finish(spec: JobSpec, attempt: int, error: ReproError) -> None:
            interrupted = (
                getattr(error, "code", None) == JobInterrupted.code
            )
            if (
                attempt <= self.retries
                and not interrupted
                and drain_started is None
            ):
                pending.append(
                    (
                        spec,
                        attempt + 1,
                        time.monotonic()
                        + self._backoff_seconds(attempt + 1),
                    )
                )
                return
            self._absorb(
                JobResult(
                    spec=spec,
                    digest="",
                    source="failed",
                    seconds=time.monotonic() - first_launch[spec.name],
                    error=error,
                    attempts=attempt,
                )
            )

        while pending or running:
            now = time.monotonic()
            if drain_started is None and interrupt.drain_requested():
                drain_started = now
                self.interrupted = True
                pending.clear()
                for handle in running:
                    handle.terminate()
            if (
                drain_started is not None
                and now - drain_started > DRAIN_KILL_GRACE
            ):
                for handle in running:
                    handle.kill()
            while drain_started is None and len(running) < self.jobs:
                index = next(
                    (
                        i
                        for i, (_, _, not_before) in enumerate(pending)
                        if not_before <= now
                    ),
                    None,
                )
                if index is None:
                    break
                spec, attempt, _ = pending.pop(index)
                first_launch.setdefault(spec.name, now)
                handle = WorkerHandle(
                    spec,
                    cache_root,
                    checkpoint_every=self.checkpoint_every_events,
                    timeout=self.timeout,
                )
                running[handle] = attempt

            progressed = False
            for handle in list(running):
                outcome = handle.poll()
                if outcome is None:
                    continue
                progressed = True
                attempt = running.pop(handle)
                spec = handle.spec
                handle.reap()
                kind, payload = outcome
                if kind == "ok":
                    self._absorb(
                        dataclasses.replace(payload, attempts=attempt)
                    )
                elif kind == "timeout":
                    finish(
                        spec,
                        attempt,
                        JobTimeout(
                            f"{spec.name} exceeded the {self.timeout:g}s "
                            f"wall-clock budget (attempt {attempt})",
                            benchmark=spec.name,
                            timeout_seconds=self.timeout,
                            attempts=attempt,
                        ),
                    )
                elif kind == "crash":
                    finish(
                        spec,
                        attempt,
                        JobFailed(
                            f"worker for {spec.name} died "
                            f"(exit code {payload}, attempt {attempt})",
                            benchmark=spec.name,
                            exit_code=payload,
                            attempts=attempt,
                        ),
                    )
                elif (
                    isinstance(payload, dict)
                    and payload.get("code") == JobInterrupted.code
                ):
                    # A drained worker checkpointed and wound down; this
                    # is resumable progress, not a fault — never retried.
                    finish(
                        spec,
                        attempt,
                        JobInterrupted(
                            payload.get(
                                "message",
                                f"{spec.name} drained on SIGTERM",
                            ),
                            benchmark=spec.name,
                            attempts=attempt,
                            events=payload.get("events"),
                            checkpoints_written=payload.get(
                                "checkpoints_written"
                            ),
                        ),
                    )
                else:  # kind == "error": the job raised inside the worker
                    finish(
                        spec,
                        attempt,
                        JobFailed(
                            f"{spec.name} failed: "
                            f"{payload.get('message', 'unknown error')}",
                            benchmark=spec.name,
                            attempts=attempt,
                            cause=payload,
                        ),
                    )
            if not progressed:
                time.sleep(_POLL_SECONDS)

    def _absorb(self, result: JobResult) -> JobResult:
        """Fold one job outcome into memo/failures, stats and the journal."""
        if result.error is not None:
            self.failures[result.spec.name] = result.error
            self.stats.record(result)
            self._journal_outcome(result)
            return result
        artifacts = result.artifacts
        if artifacts is None:
            if self.store is None:
                raise ReproError(
                    "job result carried no artifacts and no store is "
                    "configured",
                    benchmark=result.spec.name,
                )
            before = len(self.store.corrupt_events)
            before_pruned = self.store.pruned_entries
            try:
                artifacts, result = self._load_or_resimulate(result)
            except ArtifactCorrupt as exc:
                # persistent corruption (the resimulated entry would not
                # load back either) fails this benchmark, not the pass
                result = dataclasses.replace(
                    result,
                    source="failed",
                    error=exc,
                    quarantined=result.quarantined
                    + len(self.store.corrupt_events) - before,
                    quarantine_pruned=result.quarantine_pruned
                    + self.store.pruned_entries - before_pruned,
                )
                self.failures[result.spec.name] = exc
                self.stats.record(result)
                self._journal_outcome(result)
                return result
        self._memo[result.spec.name] = artifacts
        self._digests[result.spec.name] = result.digest
        self.stats.record(result)
        self._journal_outcome(result)
        return result

    def _journal_outcome(self, result: JobResult) -> None:
        """Append one finished job to the run journal (durable record).

        Journal hits are not re-journaled (the completion is already on
        record); journal writes never fail the job they describe.
        """
        if self.journal is None or result.source == "journal":
            return
        # Shard identity is a journal/stats annotation only — folding it
        # into job digests would make shard stores diverge from an
        # unsharded run and break merge-shards byte-identity.
        extra: Dict[str, object] = {}
        if self.shard is not None:
            extra["shard"] = self.shard.tag
        if self.selection is not None:
            extra["selection"] = self.selection
        try:
            if result.error is not None:
                self.journal.record_failed(
                    result.spec.name,
                    self.scale,
                    self.trace_limit,
                    error_to_dict(result.error),
                    backend=self.backend,
                    **extra,
                )
            else:
                # seconds feeds the learned shard cost model
                # (shards.measured_costs): only full simulations measure
                # the benchmark's real wall-clock, so store hits record
                # their (near-zero) load time under the same key but are
                # filtered out by source when costs are learned.
                self.journal.record_completed(
                    result.spec.name,
                    result.digest,
                    self.scale,
                    self.trace_limit,
                    source=result.source,
                    resumed=result.resumed,
                    backend=self.backend,
                    seconds=round(result.seconds, 4),
                    **extra,
                )
        except OSError:
            pass  # a full/readonly disk must not fail a finished job

    def _load_or_resimulate(
        self, result: JobResult
    ) -> Tuple[RunArtifacts, JobResult]:
        """Load a store-backed result, resimulating if the entry is bad.

        The worker verified (or just wrote) the entry, but the parent's
        full load can still discover damage in the event columns — or
        lose a race with an external writer.  One in-process rerun
        repairs it; only if the store drops the artifacts *again* is the
        situation hopeless enough for a typed error.

        Raises:
            ArtifactCorrupt: when the rerun's artifacts cannot be loaded
                back either.
        """
        store = self.store
        before = len(store.corrupt_events)
        before_pruned = store.pruned_entries
        artifacts = store.load(result.spec, result.digest)
        quarantined = len(store.corrupt_events) - before
        pruned = store.pruned_entries - before_pruned
        if artifacts is not None:
            return artifacts, dataclasses.replace(
                result,
                quarantined=result.quarantined + quarantined,
                quarantine_pruned=result.quarantine_pruned + pruned,
            )
        rerun = _execute_job(
            (
                result.spec,
                self._cache_root(),
                False,
                self.checkpoint_every_events,
            ),
            progress=self.progress,
            speculative=self.speculative,
        )
        artifacts = rerun.artifacts
        if artifacts is None:
            artifacts = store.load(rerun.spec, rerun.digest)
        if artifacts is None:
            raise ArtifactCorrupt(
                f"store lost artifacts for {result.spec.name} "
                f"({result.digest[:16]})",
                benchmark=result.spec.name,
                digest=result.digest[:16],
            )
        return artifacts, dataclasses.replace(
            result,
            source="resimulated",
            digest=rerun.digest,
            seconds=result.seconds + rerun.seconds,
            quarantined=result.quarantined + quarantined + rerun.quarantined,
            quarantine_pruned=result.quarantine_pruned
            + pruned
            + rerun.quarantine_pruned,
            checkpoints_written=result.checkpoints_written
            + rerun.checkpoints_written,
            resumed=result.resumed or rerun.resumed,
        )


def prefetch_artifacts(runner, names: Iterable[str]) -> None:
    """Warm *runner* for *names* if it supports batched prefetching.

    The experiment entry points call this first so that an engine-backed
    runner materialises every benchmark in one parallel pass; runners
    without :meth:`prefetch` (e.g. test doubles) fall through to their
    lazy per-benchmark path.
    """
    prefetch = getattr(runner, "prefetch", None)
    if prefetch is not None:
        prefetch(list(names))


def shard_subset(runner, names: Iterable[str]) -> List[str]:
    """Restrict *names* to the slice *runner*'s shard owns.

    Unsharded runners (or test doubles without a ``shard`` attribute)
    keep every name.  Experiment code calls this alongside
    :func:`surviving_benchmarks` so a sharded host analyses only the
    benchmarks it actually simulated, instead of lazily materialising
    its neighbours' slices in-process.
    """
    wanted = list(dict.fromkeys(names))
    shard = getattr(runner, "shard", None)
    if shard is None or shard.total == 1:
        return wanted
    return list(shard_names(wanted, shard, getattr(runner, "scale", 1.0)))


def surviving_benchmarks(runner, names: Iterable[str]) -> List[str]:
    """*names* minus the benchmarks the runner has recorded as failed.

    Runners without failure tracking (test doubles) survive everything.
    Experiment code calls this after :func:`prefetch_artifacts` so tables
    and figures degrade to the benchmarks that produced artifacts instead
    of crashing on the first failed one.
    """
    failures = getattr(runner, "failures", None) or {}
    return [name for name in names if name not in failures]


__all__ = [
    "ArtifactStore",
    "CHECKPOINT_SUBDIR",
    "DIGEST_VERSION",
    "EngineStats",
    "ExecutionEngine",
    "FusedRunResult",
    "JobResult",
    "JobSpec",
    "RunArtifacts",
    "artifact_digest",
    "compute_job_digest",
    "prefetch_artifacts",
    "shard_subset",
    "surviving_benchmarks",
]
