"""Ablation experiments backing the paper's side claims.

* **Threshold sweep** — §4.2: "Other threshold values such as 500 or 1000
  show no significant difference on the results."
* **Input sensitivity** — §5.2: different profile inputs (perl_a/b,
  ss_a/b) change the required BHT size; merging profiles (the cumulative
  approach) covers both runs without blowing the table up.
* **Predictor family** — context: how the paper's PAg compares with GAg,
  gshare, bimodal, hybrid and agree on the same traces.
* **Index-hash baseline** — is compiler allocation better than just a
  stronger hash (xor-fold)?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..allocation.allocator import BranchAllocator
from ..allocation.conflict_cost import conflict_cost, conventional_cost
from ..allocation.sizing import required_bht_size
from ..analysis.metrics import working_set_metrics
from ..predictors.agree import AgreePredictor
from ..predictors.bimodal import BimodalPredictor
from ..predictors.filtered import BiasFilteredPredictor
from ..predictors.gshare import GSharePredictor
from ..predictors.hybrid import HybridPredictor
from ..predictors.indexing import XorFoldIndex
from ..predictors.simulator import simulate_predictor
from ..predictors.twolevel import GAgPredictor, PAgPredictor
from ..profiling.merge import merge_profiles
from .engine import prefetch_artifacts
from .figures import HISTORY_BITS
from .report import render_table
from .runner import BenchmarkRunner

DEFAULT_THRESHOLDS = (50, 100, 500, 1000)


# --------------------------------------------------------------------------- #
# Threshold sensitivity
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ThresholdRow:
    benchmark: str
    threshold: int
    total_sets: int
    average_static_size: float
    average_dynamic_size: float


def run_threshold_ablation(
    runner: BenchmarkRunner,
    benchmarks: Sequence[str],
    thresholds: Sequence[int] = DEFAULT_THRESHOLDS,
) -> List[ThresholdRow]:
    """Working-set metrics across edge-pruning thresholds."""
    prefetch_artifacts(runner, benchmarks)
    rows: List[ThresholdRow] = []
    for name in benchmarks:
        profile = runner.profile(name)
        for threshold in thresholds:
            metrics = working_set_metrics(profile, threshold=threshold)
            rows.append(
                ThresholdRow(
                    benchmark=name,
                    threshold=threshold,
                    total_sets=metrics.total_sets,
                    average_static_size=metrics.average_static_size,
                    average_dynamic_size=metrics.average_dynamic_size,
                )
            )
    return rows


def format_threshold_ablation(rows: Sequence[ThresholdRow]) -> str:
    return render_table(
        ["benchmark", "threshold", "sets", "avg static", "avg dynamic"],
        [
            (
                r.benchmark,
                r.threshold,
                r.total_sets,
                f"{r.average_static_size:.1f}",
                f"{r.average_dynamic_size:.1f}",
            )
            for r in rows
        ],
        title="Ablation: conflict-edge threshold sensitivity (paper §4.2)",
    )


# --------------------------------------------------------------------------- #
# Input sensitivity and cumulative profiles
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class InputSensitivityRow:
    benchmark: str        # base name, e.g. "ss"
    size_a: int           # required BHT from profile A
    size_b: int           # required BHT from profile B
    size_merged: int      # required BHT from the merged (cumulative) profile
    cross_cost_a_on_b: int  # allocation from A evaluated on B's graph


def run_input_sensitivity(
    runner: BenchmarkRunner,
    pairs: Sequence[str] = ("perl", "ss"),
    baseline_bht: int = 1024,
) -> List[InputSensitivityRow]:
    """The §5.2 experiment: per-input required size + cumulative merge."""
    prefetch_artifacts(
        runner, [f"{base}_{v}" for base in pairs for v in ("a", "b")]
    )
    rows: List[InputSensitivityRow] = []
    for base in pairs:
        profile_a = runner.profile(f"{base}_a")
        profile_b = runner.profile(f"{base}_b")
        merged = merge_profiles([profile_a, profile_b], name=f"{base}_merged")

        alloc_a = BranchAllocator(profile_a)
        alloc_b = BranchAllocator(profile_b)
        alloc_m = BranchAllocator(merged)
        size_a = required_bht_size(
            alloc_a, conventional_cost(alloc_a.graph, baseline_bht)
        ).required_size
        size_b = required_bht_size(
            alloc_b, conventional_cost(alloc_b.graph, baseline_bht)
        ).required_size
        size_m = required_bht_size(
            alloc_m, conventional_cost(alloc_m.graph, baseline_bht)
        ).required_size

        # profile-mismatch cost: allocate from A at its own required size,
        # then measure the conflicts that mapping leaves on B's graph
        assignment = alloc_a.allocate(size_a).assignment
        fallback_size = max(size_a, 1)
        cross = conflict_cost(
            alloc_b.graph,
            lambda pc: assignment.get(pc, (pc >> 2) % fallback_size),
        )
        rows.append(
            InputSensitivityRow(
                benchmark=base,
                size_a=size_a,
                size_b=size_b,
                size_merged=size_m,
                cross_cost_a_on_b=cross,
            )
        )
    return rows


def format_input_sensitivity(rows: Sequence[InputSensitivityRow]) -> str:
    return render_table(
        [
            "benchmark",
            "size (input A)",
            "size (input B)",
            "size (merged)",
            "A-alloc cost on B",
        ],
        [
            (r.benchmark, r.size_a, r.size_b, r.size_merged,
             r.cross_cost_a_on_b)
            for r in rows
        ],
        title="Ablation: profile input sensitivity and cumulative profiles "
        "(paper §5.2)",
    )


# --------------------------------------------------------------------------- #
# Predictor family comparison
# --------------------------------------------------------------------------- #


def run_predictor_family(
    runner: BenchmarkRunner,
    benchmarks: Sequence[str],
    history_bits: int = HISTORY_BITS,
) -> Dict[str, Dict[str, float]]:
    """Misprediction rates of the predictor family per benchmark.

    The whole bank — including the profile-free ``static-heur``
    heuristic predictor — replays each trace in one chunked pass via
    :func:`~repro.pipeline.consumers.replay_bank`.
    """
    from ..pipeline.consumers import replay_bank
    from ..predictors.static_pred import StaticHeuristicPredictor
    from ..workloads.build import build_workload
    from ..workloads.suite import get_benchmark

    prefetch_artifacts(runner, benchmarks)
    results: Dict[str, Dict[str, float]] = {}
    for name in benchmarks:
        trace = runner.trace(name)
        profile = runner.profile(name)
        built = build_workload(get_benchmark(name, scale=runner.scale))
        predictors = [
            PAgPredictor.conventional(1024, history_bits),
            GAgPredictor(history_bits),
            GSharePredictor(history_bits),
            BimodalPredictor(2048),
            HybridPredictor(
                GSharePredictor(history_bits), BimodalPredictor(4096)
            ),
            AgreePredictor(history_bits, profile=profile),
            BiasFilteredPredictor(
                PAgPredictor.conventional(1024, history_bits), profile
            ),
            StaticHeuristicPredictor.from_program(built.program),
        ]
        stats = replay_bank(trace, predictors)
        results[name] = {
            predictor_name: s.misprediction_rate
            for predictor_name, s in stats.items()
        }
    return results


def format_predictor_family(results: Dict[str, Dict[str, float]]) -> str:
    if not results:
        return "(no results)"
    predictor_names = list(next(iter(results.values())))
    return render_table(
        ["benchmark"] + predictor_names,
        [
            [name] + [f"{results[name][p]*100:.2f}%" for p in predictor_names]
            for name in results
        ],
        title="Ablation: predictor family misprediction rates",
    )


# --------------------------------------------------------------------------- #
# Stronger-hash baseline
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class HashBaselineRow:
    benchmark: str
    conventional_cost: int
    xorfold_cost: int
    allocated_cost: int


def run_hash_baseline(
    runner: BenchmarkRunner,
    benchmarks: Sequence[str],
    bht_size: int = 1024,
) -> List[HashBaselineRow]:
    """Conflict cost: PC-modulo vs xor-fold hash vs compiler allocation.

    Tests whether the paper's conclusion ("develop better hashing
    algorithms by analyzing ... branches") needs the profile, or whether a
    better blind hash suffices.
    """
    prefetch_artifacts(runner, benchmarks)
    rows: List[HashBaselineRow] = []
    for name in benchmarks:
        profile = runner.profile(name)
        allocator = BranchAllocator(profile)
        graph = allocator.graph
        rows.append(
            HashBaselineRow(
                benchmark=name,
                conventional_cost=conventional_cost(graph, bht_size),
                xorfold_cost=conflict_cost(graph, XorFoldIndex(bht_size)),
                allocated_cost=allocator.allocate(bht_size).cost,
            )
        )
    return rows


# --------------------------------------------------------------------------- #
# History-length sensitivity (the paper fixes a 4096-entry PHT = 12 bits)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class HistorySweepRow:
    benchmark: str
    history_bits: int
    conventional: float      # conventional 1024-entry PAg
    allocated: float         # allocated 1024-entry PAg
    interference_free: float


def run_history_sweep(
    runner: BenchmarkRunner,
    benchmarks: Sequence[str],
    history_bits: Sequence[int] = (4, 6, 8, 10, 12),
    bht_size: int = 1024,
    threshold: Optional[int] = None,
) -> List[HistorySweepRow]:
    """PAg accuracy vs local-history length, with and without allocation.

    Verifies that the allocation gain is not an artifact of the paper's
    chosen 12-bit/4096-entry PHT geometry.
    """
    from ..analysis.conflict_graph import DEFAULT_THRESHOLD
    from ..predictors.twolevel import InterferenceFreePAg

    if threshold is None:
        threshold = DEFAULT_THRESHOLD
    prefetch_artifacts(runner, benchmarks)
    rows: List[HistorySweepRow] = []
    for name in benchmarks:
        artifacts = runner.artifacts(name)
        trace = artifacts.trace
        allocator = BranchAllocator(artifacts.profile, threshold=threshold)
        index_map = allocator.allocate(bht_size).index_map()
        for bits in history_bits:
            def rate(predictor) -> float:
                return simulate_predictor(
                    predictor, trace, track_per_branch=False
                ).misprediction_rate

            rows.append(
                HistorySweepRow(
                    benchmark=name,
                    history_bits=bits,
                    conventional=rate(
                        PAgPredictor.conventional(bht_size, bits)
                    ),
                    allocated=rate(PAgPredictor.allocated(index_map, bits)),
                    interference_free=rate(InterferenceFreePAg(bits)),
                )
            )
    return rows


def format_history_sweep(rows: Sequence[HistorySweepRow]) -> str:
    return render_table(
        ["benchmark", "history bits", "conventional", "allocated",
         "interference-free"],
        [
            (
                r.benchmark,
                r.history_bits,
                f"{r.conventional*100:.2f}%",
                f"{r.allocated*100:.2f}%",
                f"{r.interference_free*100:.2f}%",
            )
            for r in rows
        ],
        title="Ablation: PAg local-history length sweep (1024-entry BHT)",
    )


# --------------------------------------------------------------------------- #
# Working-set definition: partition vs maximal cliques (paper §4.1 note)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class CliqueDefinitionRow:
    benchmark: str
    partition_sets: int
    partition_avg: float
    maximal_cliques: int       # -1 when enumeration exceeded the cap
    maximal_avg: float
    membership_per_branch: float


def run_clique_definition_ablation(
    runner: BenchmarkRunner,
    benchmarks: Sequence[str],
    threshold: Optional[int] = None,
    limit: int = 50_000,
) -> List[CliqueDefinitionRow]:
    """Table 2 under both working-set definitions the paper discusses."""
    from ..analysis.cliques import CliqueLimitExceeded, maximal_clique_stats
    from ..analysis.conflict_graph import DEFAULT_THRESHOLD
    from ..analysis.working_sets import partition_working_sets

    if threshold is None:
        threshold = DEFAULT_THRESHOLD
    prefetch_artifacts(runner, benchmarks)
    rows: List[CliqueDefinitionRow] = []
    for name in benchmarks:
        profile = runner.profile(name)
        graph = BranchAllocator(profile, threshold=threshold).graph
        partition = partition_working_sets(graph)
        try:
            stats = maximal_clique_stats(graph, limit=limit)
            maximal_count = stats.clique_count
            maximal_avg = stats.average_size
            membership = stats.membership_per_branch
        except CliqueLimitExceeded:
            maximal_count, maximal_avg, membership = -1, 0.0, 0.0
        rows.append(
            CliqueDefinitionRow(
                benchmark=name,
                partition_sets=partition.count,
                partition_avg=partition.average_static_size,
                maximal_cliques=maximal_count,
                maximal_avg=maximal_avg,
                membership_per_branch=membership,
            )
        )
    return rows


def format_clique_definition(rows: Sequence[CliqueDefinitionRow]) -> str:
    return render_table(
        [
            "benchmark",
            "partition sets",
            "avg size",
            "maximal cliques",
            "avg size ",
            "cliques/branch",
        ],
        [
            (
                r.benchmark,
                r.partition_sets,
                f"{r.partition_avg:.1f}",
                ("> cap" if r.maximal_cliques < 0 else r.maximal_cliques),
                f"{r.maximal_avg:.1f}",
                f"{r.membership_per_branch:.2f}",
            )
            for r in rows
        ],
        title="Ablation: working-set definition — disjoint partition vs "
        "overlapping maximal cliques",
    )


# --------------------------------------------------------------------------- #
# Branch alignment (the no-ISA-change alternative, paper §5)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class AlignmentRow:
    benchmark: str
    original_cost: int
    aligned_cost: int
    allocated_cost: int
    original_mispredict: float
    aligned_mispredict: float


def run_alignment_ablation(
    runner: BenchmarkRunner,
    benchmarks: Sequence[str],
    bht_size: int = 1024,
    history_bits: int = HISTORY_BITS,
    threshold: Optional[int] = None,
    residue_stride: int = 1,
) -> List[AlignmentRow]:
    """Compare code alignment against true allocation (paper §5's 'for any
    ISA without change ... may not be as effective as our scheme')."""
    from ..allocation.alignment import align_workload
    from ..trace.capture import TraceCapture
    from ..workloads.build import run_workload
    from ..workloads.suite import get_benchmark

    if threshold is None:
        from ..analysis.conflict_graph import DEFAULT_THRESHOLD

        threshold = DEFAULT_THRESHOLD
    prefetch_artifacts(runner, benchmarks)
    rows: List[AlignmentRow] = []
    for name in benchmarks:
        artifacts = runner.artifacts(name)
        profile = artifacts.profile
        spec = get_benchmark(name, scale=runner.scale)
        result = align_workload(
            spec,
            profile,
            bht_size=bht_size,
            threshold=threshold,
            residue_stride=residue_stride,
        )
        capture = TraceCapture(limit=runner.trace_limit)
        run_workload(result.aligned, branch_hook=capture)
        aligned_trace = capture.finish(f"{name}-aligned")

        def mispredict(trace) -> float:
            predictor = PAgPredictor.conventional(bht_size, history_bits)
            return simulate_predictor(
                predictor, trace, track_per_branch=False
            ).misprediction_rate

        allocator = BranchAllocator(profile, threshold=threshold)
        rows.append(
            AlignmentRow(
                benchmark=name,
                original_cost=result.original_cost,
                aligned_cost=result.aligned_cost,
                allocated_cost=allocator.allocate(bht_size).cost,
                original_mispredict=mispredict(artifacts.trace),
                aligned_mispredict=mispredict(aligned_trace),
            )
        )
    return rows


def format_alignment_ablation(rows: Sequence[AlignmentRow]) -> str:
    return render_table(
        [
            "benchmark",
            "cost (scattered)",
            "cost (aligned)",
            "cost (allocated)",
            "mispred scattered",
            "mispred aligned",
        ],
        [
            (
                r.benchmark,
                r.original_cost,
                r.aligned_cost,
                r.allocated_cost,
                f"{r.original_mispredict*100:.2f}%",
                f"{r.aligned_mispredict*100:.2f}%",
            )
            for r in rows
        ],
        title="Ablation: branch alignment vs branch allocation "
        "(conventional PAg hardware)",
    )


def format_hash_baseline(rows: Sequence[HashBaselineRow]) -> str:
    return render_table(
        ["benchmark", "pc-modulo", "xor-fold", "allocated"],
        [
            (r.benchmark, r.conventional_cost, r.xorfold_cost,
             r.allocated_cost)
            for r in rows
        ],
        title="Ablation: conflict cost of indexing schemes at 1024 entries",
    )
