"""Figure experiments (paper Figures 3 and 4).

Both figures compare misprediction rates of PAg predictors on each
benchmark:

* conventional PAg, 1024-entry PC-indexed BHT (the baseline);
* branch-allocated PAg at 16-, 128- and 1024-entry BHTs;
* interference-free PAg (the paper's 2M-entry BHT).

Figure 3 uses the plain allocator; Figure 4 the classification-enhanced
allocator.  All predictors share the 4096-entry PHT geometry (12-bit local
history).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..allocation.allocator import BranchAllocator
from ..allocation.classified import ClassifiedBranchAllocator
from ..analysis.conflict_graph import DEFAULT_THRESHOLD
from ..pipeline.bus import BranchEventBus
from ..pipeline.consumers import PredictorConsumer
from ..predictors.twolevel import InterferenceFreePAg, PAgPredictor
from ..workloads.registry import members
from .engine import prefetch_artifacts, shard_subset, surviving_benchmarks
from .report import render_table
from .runner import BenchmarkRunner

HISTORY_BITS = 12        # 4096-entry PHT
ALLOCATED_SIZES = (16, 128, 1024)
BASELINE_BHT = 1024


@dataclass(frozen=True)
class FigureRow:
    """Misprediction rates for one benchmark (one group of figure bars).

    ``allocated`` maps BHT size -> misprediction rate.
    """

    benchmark: str
    allocated: Dict[int, float]
    conventional: float
    interference_free: float

    @property
    def improvement_at_baseline(self) -> float:
        """Relative misprediction reduction of allocated\\@1024 vs
        conventional\\@1024 (the paper's headline 16%)."""
        if self.conventional == 0:
            return 0.0
        return 1.0 - self.allocated[BASELINE_BHT] / self.conventional


def _figure_rows(
    runner: BenchmarkRunner,
    benchmarks: Sequence[str],
    classified: bool,
    threshold: int,
    sizes: Sequence[int],
) -> List[FigureRow]:
    prefetch_artifacts(runner, benchmarks)
    rows: List[FigureRow] = []
    engine = getattr(runner, "engine", None)  # test doubles may lack it
    for name in surviving_benchmarks(runner, benchmarks):
        artifacts = runner.artifacts(name)
        trace, profile = artifacts.trace, artifacts.profile
        if classified:
            allocator = ClassifiedBranchAllocator(profile, threshold=threshold)
        else:
            allocator = BranchAllocator(profile, threshold=threshold)
        # one chunked pass: the whole predictor bank rides the bus
        # together instead of replaying the trace once per predictor
        # (explicit consumer names — the bank repeats the PAg label)
        bank = [
            PredictorConsumer(
                PAgPredictor.allocated(
                    allocator.allocate(size).index_map(), HISTORY_BITS
                ),
                label=name,
                track_per_branch=False,
                name=f"predict:alloc@{size}",
            )
            for size in sizes
        ]
        conventional = PredictorConsumer(
            PAgPredictor.conventional(BASELINE_BHT, HISTORY_BITS),
            label=name,
            track_per_branch=False,
            name="predict:conventional",
        )
        infinite = PredictorConsumer(
            InterferenceFreePAg(HISTORY_BITS),
            label=name,
            track_per_branch=False,
            name="predict:interference-free",
        )
        stats = BranchEventBus.replay(
            trace, [*bank, conventional, infinite]
        )
        if engine is not None:
            engine.stats.replayed_runs += 1
            engine.stats.pipeline.merge(stats)
        rows.append(
            FigureRow(
                benchmark=name,
                allocated={
                    size: consumer.result.misprediction_rate
                    for size, consumer in zip(sizes, bank)
                },
                conventional=conventional.result.misprediction_rate,
                interference_free=infinite.result.misprediction_rate,
            )
        )
    return rows


def run_figure3(
    runner: BenchmarkRunner,
    benchmarks: Optional[Sequence[str]] = None,
    threshold: int = DEFAULT_THRESHOLD,
    sizes: Sequence[int] = ALLOCATED_SIZES,
) -> List[FigureRow]:
    """Regenerate Figure 3 (allocation without classification)."""
    if benchmarks:
        names = list(benchmarks)
    else:
        # default set: a sharded runner covers only its slice
        names = shard_subset(runner, members("figures"))
    return _figure_rows(
        runner, names, classified=False, threshold=threshold, sizes=sizes
    )


def run_figure4(
    runner: BenchmarkRunner,
    benchmarks: Optional[Sequence[str]] = None,
    threshold: int = DEFAULT_THRESHOLD,
    sizes: Sequence[int] = ALLOCATED_SIZES,
) -> List[FigureRow]:
    """Regenerate Figure 4 (allocation with branch classification)."""
    if benchmarks:
        names = list(benchmarks)
    else:
        # default set: a sharded runner covers only its slice
        names = shard_subset(runner, members("figures"))
    return _figure_rows(
        runner, names, classified=True, threshold=threshold, sizes=sizes
    )


def format_figure(
    rows: Sequence[FigureRow],
    figure_name: str,
    detail: str,
    sizes: Sequence[int] = ALLOCATED_SIZES,
) -> str:
    headers = (
        ["benchmark"]
        + [f"alloc@{size}" for size in sizes]
        + [f"conv@{BASELINE_BHT}", "interference-free", "gain@1024"]
    )
    body = []
    for r in rows:
        body.append(
            [r.benchmark]
            + [f"{r.allocated[size]*100:.2f}%" for size in sizes]
            + [
                f"{r.conventional*100:.2f}%",
                f"{r.interference_free*100:.2f}%",
                f"{r.improvement_at_baseline*100:+.1f}%",
            ]
        )
    return render_table(
        headers,
        body,
        title=f"{figure_name}: PAg misprediction rates, {detail} "
        f"(PHT=4096, history={HISTORY_BITS} bits)",
    )


def average_improvement(rows: Sequence[FigureRow]) -> float:
    """Mean relative misprediction reduction of allocated\\@1024 vs the
    conventional baseline across benchmarks."""
    if not rows:
        return 0.0
    return sum(r.improvement_at_baseline for r in rows) / len(rows)
