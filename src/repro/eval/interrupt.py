"""Cooperative SIGTERM drain shared by drivers, workers and the daemon.

A terminated suite run used to lose the current attempt's progress: the
default SIGTERM disposition killed the process between checkpoints and
threw away everything since the last one.  This module turns SIGTERM
into a *drain request* — a process-local flag that long-running loops
poll at their quiesced points:

* the checkpointed simulation loop
  (:func:`repro.checkpoint.runner.run_simulation`) writes one final
  checkpoint and stops,
* worker processes report a typed ``job_interrupted`` outcome instead of
  dying mid-write,
* the :class:`~repro.eval.engine.ExecutionEngine` scheduler stops
  launching pending jobs, forwards SIGTERM to running workers (which
  checkpoint), and raises
  :class:`~repro.errors.SuiteInterrupted` once drained,
* the analysis daemon (:mod:`repro.service.app`) stops admitting,
  checkpoints in-flight jobs and exits 0.

The flag is per-process (workers install their own handler at entry),
and everything here is best-effort on platforms without POSIX signals.
"""

from __future__ import annotations

import os
import signal
import threading
from contextlib import contextmanager
from typing import Iterator

#: When this env var is "1", worker processes arrange to die with their
#: parent (Linux ``PR_SET_PDEATHSIG``).  The daemon sets it so a
#: SIGKILLed service never leaks orphan simulations that would race the
#: restarted daemon for the artifact store.
PDEATHSIG_ENV = "REPRO_WORKER_PDEATHSIG"

_DRAIN = threading.Event()


def request_drain() -> None:
    """Ask every polling loop in this process to stop at a safe point."""
    _DRAIN.set()


def drain_requested() -> bool:
    """True once a drain has been requested in this process."""
    return _DRAIN.is_set()


def reset_drain() -> None:
    """Clear the drain flag (a new run in the same process starts clean)."""
    _DRAIN.clear()


def _handler(signum: int, frame: object) -> None:
    _DRAIN.set()


def install_worker_handler() -> None:
    """Route SIGTERM to the drain flag (called at worker-process entry).

    With the flag set, the checkpointed simulation loop writes a final
    checkpoint and the worker reports ``job_interrupted`` — instead of
    the default disposition tearing the process down mid-slice.  A no-op
    off the main thread or on platforms without SIGTERM.
    """
    try:
        signal.signal(signal.SIGTERM, _handler)
    except (ValueError, AttributeError, OSError):
        pass


def set_pdeathsig() -> None:
    """Die with the parent (Linux only; gated on :data:`PDEATHSIG_ENV`).

    ``multiprocessing`` daemon processes survive a SIGKILLed parent —
    they are only reaped on *clean* exits.  The service daemon must not
    leak orphan simulation workers across a crash (the restarted daemon
    resumes those jobs itself), so its workers opt in to
    ``PR_SET_PDEATHSIG``.  Best-effort: silently a no-op elsewhere.
    """
    if os.environ.get(PDEATHSIG_ENV) != "1":
        return
    try:
        import ctypes

        libc = ctypes.CDLL(None, use_errno=True)
        PR_SET_PDEATHSIG = 1
        libc.prctl(PR_SET_PDEATHSIG, int(signal.SIGKILL), 0, 0, 0)
    except Exception:
        pass


@contextmanager
def sigterm_drain() -> Iterator[None]:
    """Driver-side: treat SIGTERM as a drain request for this extent.

    Installs the drain handler (main thread only — elsewhere this is a
    transparent no-op), restores the previous disposition on exit, and
    clears the flag so a later run in the same process starts clean.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    try:
        previous = signal.signal(signal.SIGTERM, _handler)
    except (ValueError, AttributeError, OSError):
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)
        reset_drain()


__all__ = [
    "PDEATHSIG_ENV",
    "drain_requested",
    "install_worker_handler",
    "request_drain",
    "reset_drain",
    "set_pdeathsig",
    "sigterm_drain",
]
