"""Distributed suite sharding: partition a selection, merge shard stores.

A suite run scales out by splitting one resolved benchmark selection
(:func:`repro.workloads.registry.resolve_selection`) across N engine
processes — on one host or many — and unioning their stores afterwards:

1. every host runs the *same* selector with ``--shard K/N``; the
   partition is a pure function of (selection, N, scale), so the hosts
   agree on who owns what without coordinating;
2. each host's engine simulates only its shard, journaling results with
   the shard tag, into a shared artifact store or a private one;
3. :func:`merge_shards` (``repro merge-shards``) unions private stores
   into one suite store, byte-verifying any artifact two shards both
   produced (same content-addressed name, differing bytes is a
   :class:`~repro.errors.ShardConflict`, never silently resolved).

Because the store is content-addressed and job tags do **not** include
the shard (sharding decides *where* a job runs, not *what* it computes),
a merged N-shard run is byte-identical to an unsharded run of the same
selection — the acceptance property ``tests/test_shards.py`` pins down.

The partition balances estimated cost, not benchmark count: the suite's
per-benchmark fuel budgets (:func:`repro.workloads.registry.estimated_cost`)
feed an LPT (longest-processing-time) greedy assignment, with a stable
content hash of the benchmark name breaking cost ties so reordering the
input never changes the result.

Fuel is a *static* estimate, and data-dependent work makes it a poor
proxy (the straggler lesson of the branch-avoiding-graph-algorithms
line of work, applied at the systems layer).  When a coordinating
process owns the partition — the :mod:`repro.eval.supervisor` — it
feeds :func:`partition_selection` *measured* per-benchmark wall-clock
medians learned from the run journal (:func:`measured_costs`), falling
back to fuel for never-run benchmarks.  Manual cross-host ``--shard
K/N`` runs stay on pure fuel: independent hosts with divergent local
journals must agree on the partition without coordinating.
"""

from __future__ import annotations

import hashlib
import re
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import SelectionError, ShardConflict
from ..workloads.registry import estimated_cost

__all__ = [
    "MergeReport",
    "ShardSpec",
    "measured_costs",
    "merge_shards",
    "partition_selection",
    "shard_names",
]

#: artifact suffixes a store entry is made of; ``.meta.json`` commits the
#: entry, so merges copy it last (same ordering the store's atomic put
#: uses).
_ARTIFACT_SUFFIXES = (".trace.npz", ".profile.json", ".meta.json")

_SHARD_RE = re.compile(r"^(\d+)/(\d+)$")


@dataclass(frozen=True)
class ShardSpec:
    """One shard's identity in an N-way partitioned run.

    Attributes:
        index: 1-based shard number (the K in ``K/N``).
        total: shard count (the N in ``K/N``).
    """

    index: int
    total: int

    def __post_init__(self) -> None:
        if self.total < 1:
            raise SelectionError(
                f"shard count must be >= 1, got {self.total}",
                shard=f"{self.index}/{self.total}",
            )
        if not 1 <= self.index <= self.total:
            raise SelectionError(
                f"shard index must be in 1..{self.total}, got {self.index}",
                shard=f"{self.index}/{self.total}",
            )

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI form ``K/N`` (e.g. ``1/2``).

        Raises:
            SelectionError: malformed text or out-of-range K/N.
        """
        match = _SHARD_RE.match(text.strip())
        if match is None:
            raise SelectionError(
                f"shard must look like K/N (e.g. 1/2), got {text!r}",
                shard=text,
            )
        return cls(index=int(match.group(1)), total=int(match.group(2)))

    @property
    def tag(self) -> str:
        """The canonical ``K/N`` form (journal records, envelopes)."""
        return f"{self.index}/{self.total}"

    def __str__(self) -> str:
        return self.tag


def _stable_rank(name: str) -> str:
    """Order-stable tiebreak: content hash of the benchmark name."""
    return hashlib.sha256(name.encode("utf-8")).hexdigest()


def measured_costs(
    journal,
    scale: float,
    trace_limit: Optional[int] = None,
    backend: str = "interp",
    recent: int = 5,
) -> Dict[str, float]:
    """benchmark -> median measured wall-clock seconds from *journal*.

    The learned half of the shard cost model: each benchmark's cost is
    the median over its most *recent* completed-simulation records at
    exactly these run parameters (scale, trace limit, backend — costs
    at other parameters describe different work).  Store/journal hits
    are excluded: only a full simulation measures the benchmark's real
    wall-clock.  Benchmarks with no usable record are simply absent —
    :func:`partition_selection` falls back to fuel for them.

    *journal* is a :class:`~repro.checkpoint.journal.RunJournal` (any
    object with a ``records()`` method works).
    """
    samples: Dict[str, List[float]] = {}
    for record in journal.records():
        if record.get("status") != "completed":
            continue
        if (
            record.get("scale") != scale
            or record.get("trace_limit") != trace_limit
            or record.get("backend", "interp") != backend
            or record.get("source") not in ("simulated", "resimulated")
        ):
            continue
        benchmark = record.get("benchmark")
        seconds = record.get("seconds")
        if not isinstance(benchmark, str):
            continue
        if not isinstance(seconds, (int, float)) or seconds <= 0:
            continue
        samples.setdefault(benchmark, []).append(float(seconds))
    costs: Dict[str, float] = {}
    for benchmark, values in samples.items():
        window = sorted(values[-recent:])
        mid = len(window) // 2
        if len(window) % 2:
            costs[benchmark] = window[mid]
        else:
            costs[benchmark] = (window[mid - 1] + window[mid]) / 2.0
    return costs


def _blended_costs(
    unique_names: Sequence[str],
    scale: float,
    costs: Optional[Mapping[str, float]],
) -> Dict[str, float]:
    """Per-name LPT weights: measured seconds, fuel-backed fallback.

    Measured wall-clock and fuel are different units, so mixing them
    raw would let one dominate by magnitude alone.  Fuel-only names are
    converted to pseudo-seconds through the median seconds-per-fuel
    ratio of the measured ones, keeping the two populations comparable;
    with nothing measured the weights are pure fuel.
    """
    fuel = {n: float(estimated_cost(n, scale)) for n in unique_names}
    if not costs:
        return fuel
    measured = {
        n: float(costs[n])
        for n in unique_names
        if isinstance(costs.get(n), (int, float)) and costs[n] > 0
    }
    if not measured:
        return fuel
    ratios = sorted(
        measured[n] / fuel[n] for n in measured if fuel[n] > 0
    )
    ratio = ratios[len(ratios) // 2] if ratios else 1.0
    return {
        n: measured.get(n, fuel[n] * ratio) for n in unique_names
    }


def partition_selection(
    names: Sequence[str],
    total: int,
    scale: float = 1.0,
    costs: Optional[Mapping[str, float]] = None,
) -> List[Tuple[str, ...]]:
    """Partition *names* into *total* cost-balanced shards.

    LPT greedy: benchmarks are assigned most-expensive-first to the
    least-loaded shard.  The result is a pure function of the name *set*,
    *total*, *scale* and *costs* — input order never matters, so
    independent hosts resolve the same partition without coordinating
    (which is also why cross-host ``--shard K/N`` runs must all pass the
    same *costs*, i.e. in practice none).  Each shard's names come back
    in the order they appear in *names*.

    Args:
        names: the resolved selection.
        total: shard count.
        scale: workload scale (fuel estimates scale with it).
        costs: optional measured per-benchmark wall-clock
            (:func:`measured_costs`); names it covers are weighted by
            measurement, the rest by a fuel-backed fallback in the same
            unit (see :func:`_blended_costs`).

    Raises:
        SelectionError: non-positive *total*.
        UnknownBenchmark: a name the registry does not know.
    """
    if total < 1:
        raise SelectionError(f"shard count must be >= 1, got {total}")
    order = {name: position for position, name in enumerate(names)}
    unique = list(dict.fromkeys(names))
    weight = _blended_costs(unique, scale, costs)
    by_cost = sorted(
        unique, key=lambda n: (-weight[n], _stable_rank(n))
    )
    loads = [0.0] * total
    bins: List[List[str]] = [[] for _ in range(total)]
    for name in by_cost:
        target = min(range(total), key=lambda i: (loads[i], i))
        loads[target] += weight[name]
        bins[target].append(name)
    return [
        tuple(sorted(bin_names, key=order.__getitem__)) for bin_names in bins
    ]


def shard_names(
    names: Sequence[str],
    shard: Optional[ShardSpec],
    scale: float = 1.0,
) -> Tuple[str, ...]:
    """The subset of *names* that *shard* owns (all of them when None)."""
    if shard is None or shard.total == 1:
        return tuple(names)
    return partition_selection(names, shard.total, scale)[shard.index - 1]


@dataclass
class MergeReport:
    """What one :func:`merge_shards` pass did.

    Attributes:
        destination: the merged store root.
        sources: shard store roots that were merged in.
        artifacts_copied: files newly copied into the destination.
        artifacts_identical: files already present, byte-verified equal.
        journal_records: per-source journal records appended.
        journal_skipped: damaged journal lines skipped across all
            sources (torn tails from shards that died mid-append,
            mid-file garbage) — each one is named in ``warnings``.
        warnings: human-readable ``path:line: ...`` messages for every
            tolerated journal defect.
        benchmarks: union of benchmark names the merged journal completes.
    """

    destination: str
    sources: List[str] = field(default_factory=list)
    artifacts_copied: int = 0
    artifacts_identical: int = 0
    journal_records: Dict[str, int] = field(default_factory=dict)
    journal_skipped: int = 0
    warnings: List[str] = field(default_factory=list)
    benchmarks: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "destination": self.destination,
            "sources": list(self.sources),
            "artifacts_copied": self.artifacts_copied,
            "artifacts_identical": self.artifacts_identical,
            "journal_records": dict(self.journal_records),
            "journal_skipped": self.journal_skipped,
            "warnings": list(self.warnings),
            "benchmarks": list(self.benchmarks),
        }


def _artifact_files(root: Path) -> List[Path]:
    """Store entry files in *root*, metas last within stable name order.

    Only top-level artifact files count: ``quarantine/``, ``checkpoints/``,
    ``service/``, ``.stage-*`` staging droppings and advisory ``*.claim``
    files are shard-local operational state, not suite results.
    """
    files = [
        p
        for p in sorted(root.iterdir())
        if p.is_file() and p.name.endswith(_ARTIFACT_SUFFIXES)
    ]
    return sorted(files, key=lambda p: (p.name.endswith(".meta.json"), p.name))


def merge_shards(
    sources: Sequence[Path],
    destination: Path,
) -> MergeReport:
    """Union shard artifact stores + journals into *destination*.

    Idempotent and conflict-checked: an artifact already present in the
    destination (or produced by several shards — overlap is legal, the
    store is content-addressed) is byte-compared, never overwritten.  A
    source that *is* the destination (shared-store deployment) only
    contributes its journal-completion census.

    Partial shards merge, they do not abort: a source journal with a
    torn tail (the shard died mid-append) or mid-file garbage has the
    damaged lines skipped with a warning naming ``path:line`` — the
    same damage classes :meth:`RunJournal.validate` distinguishes —
    and :attr:`MergeReport.journal_skipped` counts them.  The dead
    shard's *completed* records still merge; only the torn ones are
    lost, and they were never durable to begin with.

    Raises:
        ShardConflict: same artifact filename, differing bytes — one
            shard host ran divergent code or suffered corruption; the
            merge stops without papering over it.
        SelectionError: no sources given.
    """
    from ..checkpoint.journal import RunJournal

    if not sources:
        raise SelectionError("merge-shards needs at least one source store")
    destination = Path(destination)
    destination.mkdir(parents=True, exist_ok=True)
    report = MergeReport(destination=str(destination))
    merged_journal = RunJournal(destination)
    completed: set = set()
    for source in sources:
        source = Path(source)
        report.sources.append(str(source))
        if not source.is_dir():
            raise SelectionError(
                f"shard store {source} does not exist", source=str(source)
            )
        same_store = source.resolve() == destination.resolve()
        if not same_store:
            for path in _artifact_files(source):
                target = destination / path.name
                if target.exists():
                    if (
                        path.read_bytes() != target.read_bytes()
                    ):  # pragma: no branch
                        raise ShardConflict(
                            f"artifact {path.name} differs between "
                            f"{source} and {destination}",
                            artifact=path.name,
                            source=str(source),
                            destination=str(destination),
                        )
                    report.artifacts_identical += 1
                    continue
                stage = destination / f".stage-merge-{path.name}"
                shutil.copyfile(path, stage)
                stage.replace(target)
                report.artifacts_copied += 1
        shard_journal = RunJournal(source)
        records, journal_warnings = shard_journal.read_tolerant()
        report.warnings.extend(journal_warnings)
        report.journal_skipped += len(journal_warnings)
        if not same_store:
            for record in records:
                merged_journal.append(dict(record))
        report.journal_records[str(source)] = len(records)
        for record in records:
            if record.get("status") == "completed":
                completed.add(record.get("benchmark"))
    report.benchmarks = sorted(b for b in completed if b)
    return report
