"""Result rendering: monospace tables and CSV export."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: str = ""
) -> str:
    """Render an aligned monospace table (the harness's printed output)."""
    formatted: List[List[str]] = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def to_csv(
    headers: Sequence[str], rows: Iterable[Sequence[Cell]]
) -> str:
    """Render rows as CSV text (no quoting needed for our cell contents)."""
    lines = [",".join(headers)]
    for row in rows:
        cells = [_format_cell(c) for c in row]
        if any("," in c for c in cells):
            raise ValueError("cell contains a comma; refusing to emit CSV")
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


def write_csv(
    path: Union[str, Path],
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
) -> None:
    """Write rows to *path* as CSV."""
    Path(path).write_text(to_csv(headers, rows), encoding="utf-8")
