"""Deterministic fault injection for the evaluation engine.

The fault-tolerance layer in :mod:`repro.eval.engine` is only trustworthy
if its failure paths are exercised on purpose.  This module injects the
faults the engine must survive:

* ``worker_crash`` — the pool worker process dies hard (``os._exit``)
  while running the named benchmark; in-process (``jobs=1``) runs raise
  instead, since killing the parent would defeat the point.
* ``worker_hang`` — the job sleeps past any reasonable deadline, forcing
  the engine's wall-clock timeout to fire.
* ``flaky`` — the job raises a transient error on its first *n* attempts
  and then succeeds, exercising retry/backoff.
* ``corrupt_trace`` / ``corrupt_meta`` — the job's stored ``.trace.npz``
  / ``.meta.json`` is corrupted on disk right after it is written,
  exercising verification, quarantine and resimulation.
* ``worker_kill`` — the worker SIGKILLs itself mid-simulation once the
  bus has seen a given number of branch events (in-process runs raise
  instead), exercising checkpoint/resume: the retried attempt must
  restore the dead worker's last checkpoint and continue, producing
  artifacts byte-identical to an uninterrupted run.  Fires once per
  benchmark (kill-once markers under ``state_dir``), so the resumed
  attempt is not killed again at the same threshold.
* ``shard_kill`` — a *supervised shard worker* (``repro supervise``)
  SIGKILLs itself once its current job's bus has seen a given number of
  branch events, exercising the supervisor's dead-shard detection,
  journal-diff recovery and bounded restarts.  Keyed by the 1-based
  shard slot, fires once (marker under ``state_dir`` when present — the
  supervisor injects one — else once per process).
* ``shard_hang`` — a supervised shard worker sleeps ``hang_seconds`` at
  entry without ever heartbeating, exercising lease-expiry detection of
  a *live but wedged* worker (pid probe succeeds, lease goes stale).
* ``lease_stall`` — a supervised shard worker runs normally but skips
  every heartbeat lease write, so the supervisor must distinguish a
  stalled lease from a dead pid.
* ``slow_client`` / ``conn_drop`` — *client-side* service faults,
  consumed by ``repro loadgen`` rather than the engine: every Nth
  request trickles its submit frame in two writes with a pause
  (``slow_client``, exercising the daemon's partial-frame reads) or
  disconnects right after its ``accepted`` frame (``conn_drop``; the
  daemon must still complete the job).  Keyed by request index, which
  keeps them deterministic for a fixed job count.

Plans cross the process boundary via the ``REPRO_FAULTS`` environment
variable (JSON, or the compact text form ``mode:arg[,mode:arg...]`` —
e.g. ``REPRO_FAULTS=shard_kill:1@5000`` kills shard 1 at 5000 events;
see :meth:`FaultPlan.from_compact`), so pool workers inherit them
automatically; ``flaky`` attempt counts are kept as marker files under a
state directory so they survive worker restarts.  Everything is
deterministic — no randomness, no time dependence — which keeps the
fault suite reproducible.

Usage::

    plan = FaultPlan(worker_crash=("gcc",), flaky={"plot": 2},
                     state_dir=str(tmp_path))
    with plan.installed():
        engine = ExecutionEngine(jobs=4, retries=2, ...)
        engine.prefetch(names)   # gcc fails, plot succeeds on attempt 3
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from ..errors import ReproError

#: Environment variable carrying the serialised plan to pool workers.
ENV_VAR = "REPRO_FAULTS"

#: How long a hung worker sleeps (bounded so leaked processes die on
#: their own even if never reaped; pool workers are killed much sooner
#: by the engine's timeout handling).
DEFAULT_HANG_SECONDS = 60.0

#: Branch-event threshold for ``worker_kill``/``shard_kill`` items in the
#: compact env syntax when no explicit ``@EVENTS`` is given.
DEFAULT_KILL_EVENTS = 10000

#: In-process fallback for shard_kill fire-once markers when the plan has
#: no ``state_dir`` (the supervisor normally injects one so the marker
#: survives the killed process).
_FIRED_SHARD_KILLS: set = set()


class InjectedFault(ReproError):
    """Raised by injected ``worker_crash`` (in-process) / ``flaky`` faults."""

    code = "injected_fault"


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults to inject, keyed by benchmark name.

    Attributes:
        worker_crash: benchmarks whose job kills its worker process.
        worker_hang: benchmarks whose job sleeps for ``hang_seconds``.
        flaky: benchmark -> number of leading attempts that must fail.
        corrupt_trace: benchmarks whose stored trace is corrupted on put.
        corrupt_meta: benchmarks whose meta sidecar is corrupted on put.
        worker_kill: benchmark -> branch-event count at which the worker
            SIGKILLs itself mid-simulation (once; needs ``state_dir``).
        shard_kill: shard slot (1-based, as a string key — JSON objects
            key on strings) -> branch-event count at which a supervised
            shard worker SIGKILLs itself (once; the supervisor injects a
            ``state_dir`` for the cross-restart marker).
        shard_hang: shard slots whose supervised worker sleeps
            ``hang_seconds`` at entry without heartbeating.
        lease_stall: shard slots whose supervised worker skips every
            heartbeat lease write while otherwise running normally.
        hang_seconds: sleep length for ``worker_hang``/``shard_hang``.
        slow_client: every Nth loadgen request is a slow client
            (0 disables); the pause is ``slow_client_seconds``.
        slow_client_seconds: mid-frame pause for ``slow_client``.
        conn_drop: every Nth loadgen request drops its connection right
            after the ``accepted`` frame (0 disables).
        state_dir: directory for cross-process flaky attempt counters and
            kill-once markers (required when ``flaky`` or ``worker_kill``
            is non-empty).
    """

    worker_crash: Tuple[str, ...] = ()
    worker_hang: Tuple[str, ...] = ()
    flaky: Dict[str, int] = field(default_factory=dict)
    corrupt_trace: Tuple[str, ...] = ()
    corrupt_meta: Tuple[str, ...] = ()
    worker_kill: Dict[str, int] = field(default_factory=dict)
    shard_kill: Dict[str, int] = field(default_factory=dict)
    shard_hang: Tuple[int, ...] = ()
    lease_stall: Tuple[int, ...] = ()
    hang_seconds: float = DEFAULT_HANG_SECONDS
    slow_client: int = 0
    slow_client_seconds: float = 0.25
    conn_drop: int = 0
    state_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.flaky and not self.state_dir:
            raise ValueError("flaky faults need state_dir for counters")
        if self.worker_kill and not self.state_dir:
            raise ValueError(
                "worker_kill faults need state_dir for kill-once markers"
            )

    # -- serialisation ------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "worker_crash": list(self.worker_crash),
                "worker_hang": list(self.worker_hang),
                "flaky": dict(self.flaky),
                "corrupt_trace": list(self.corrupt_trace),
                "corrupt_meta": list(self.corrupt_meta),
                "worker_kill": dict(self.worker_kill),
                "shard_kill": dict(self.shard_kill),
                "shard_hang": list(self.shard_hang),
                "lease_stall": list(self.lease_stall),
                "hang_seconds": self.hang_seconds,
                "slow_client": self.slow_client,
                "slow_client_seconds": self.slow_client_seconds,
                "conn_drop": self.conn_drop,
                "state_dir": self.state_dir,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        return cls(
            worker_crash=tuple(payload.get("worker_crash", ())),
            worker_hang=tuple(payload.get("worker_hang", ())),
            flaky={
                str(k): int(v) for k, v in payload.get("flaky", {}).items()
            },
            corrupt_trace=tuple(payload.get("corrupt_trace", ())),
            corrupt_meta=tuple(payload.get("corrupt_meta", ())),
            worker_kill={
                str(k): int(v)
                for k, v in payload.get("worker_kill", {}).items()
            },
            shard_kill={
                str(k): int(v)
                for k, v in payload.get("shard_kill", {}).items()
            },
            shard_hang=tuple(
                int(s) for s in payload.get("shard_hang", ())
            ),
            lease_stall=tuple(
                int(s) for s in payload.get("lease_stall", ())
            ),
            hang_seconds=float(
                payload.get("hang_seconds", DEFAULT_HANG_SECONDS)
            ),
            slow_client=int(payload.get("slow_client", 0)),
            slow_client_seconds=float(
                payload.get("slow_client_seconds", 0.25)
            ),
            conn_drop=int(payload.get("conn_drop", 0)),
            state_dir=payload.get("state_dir"),
        )

    @classmethod
    def from_compact(cls, text: str) -> "FaultPlan":
        """Parse the compact env syntax ``mode:arg[,mode:arg...]``.

        Shell-friendly counterpart of the JSON form, e.g.::

            REPRO_FAULTS=shard_kill:1@5000          # kill slot 1 @ 5000 ev
            REPRO_FAULTS=shard_hang:2,lease_stall:1
            REPRO_FAULTS=worker_kill:gcc@10000,state_dir:/tmp/faults

        Modes: ``worker_crash:NAME``, ``worker_hang:NAME``,
        ``corrupt_trace:NAME``, ``corrupt_meta:NAME``, ``flaky:NAME@N``,
        ``worker_kill:NAME@EVENTS``, ``shard_kill:K@EVENTS``,
        ``shard_hang:K``, ``lease_stall:K``, ``hang_seconds:S``,
        ``state_dir:PATH``.  Event thresholds default to
        :data:`DEFAULT_KILL_EVENTS` when the ``@EVENTS`` part is omitted.

        Raises:
            ValueError: an unknown mode or a malformed argument — a
                half-applied plan must never be silently installed.
        """
        kwargs: Dict[str, object] = {
            "worker_crash": [], "worker_hang": [], "corrupt_trace": [],
            "corrupt_meta": [], "flaky": {}, "worker_kill": {},
            "shard_kill": {}, "shard_hang": [], "lease_stall": [],
        }
        extras: Dict[str, object] = {}
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            mode, sep, arg = item.partition(":")
            if not sep or not arg:
                raise ValueError(
                    f"fault item {item!r} must look like mode:arg"
                )
            if mode in ("worker_crash", "worker_hang",
                        "corrupt_trace", "corrupt_meta"):
                kwargs[mode].append(arg)
            elif mode in ("flaky", "worker_kill"):
                name, _, count = arg.partition("@")
                default = 1 if mode == "flaky" else DEFAULT_KILL_EVENTS
                kwargs[mode][name] = int(count) if count else default
            elif mode == "shard_kill":
                slot, _, events = arg.partition("@")
                kwargs[mode][str(int(slot))] = (
                    int(events) if events else DEFAULT_KILL_EVENTS
                )
            elif mode in ("shard_hang", "lease_stall"):
                kwargs[mode].append(int(arg))
            elif mode == "hang_seconds":
                extras[mode] = float(arg)
            elif mode == "state_dir":
                extras[mode] = arg
            else:
                raise ValueError(f"unknown fault mode {mode!r} in {item!r}")
        return cls(
            worker_crash=tuple(kwargs["worker_crash"]),
            worker_hang=tuple(kwargs["worker_hang"]),
            flaky=dict(kwargs["flaky"]),
            corrupt_trace=tuple(kwargs["corrupt_trace"]),
            corrupt_meta=tuple(kwargs["corrupt_meta"]),
            worker_kill=dict(kwargs["worker_kill"]),
            shard_kill=dict(kwargs["shard_kill"]),
            shard_hang=tuple(kwargs["shard_hang"]),
            lease_stall=tuple(kwargs["lease_stall"]),
            **extras,
        )

    @contextmanager
    def installed(self) -> Iterator["FaultPlan"]:
        """Install the plan in ``os.environ`` for the dynamic extent."""
        previous = os.environ.get(ENV_VAR)
        os.environ[ENV_VAR] = self.to_json()
        try:
            yield self
        finally:
            if previous is None:
                os.environ.pop(ENV_VAR, None)
            else:
                os.environ[ENV_VAR] = previous

    # -- injection hooks (called by the engine) -----------------------------

    def on_job_start(self, benchmark: str, in_worker: bool) -> None:
        """Fire crash/hang/flaky faults for *benchmark*, if planned.

        Raises:
            InjectedFault: for in-process crashes and flaky attempts.
        """
        if benchmark in self.worker_crash:
            if in_worker:
                os._exit(13)  # hard death: no exception, no cleanup
            raise InjectedFault(
                f"injected worker crash for {benchmark}",
                benchmark=benchmark, fault="worker_crash",
            )
        if benchmark in self.worker_hang:
            time.sleep(self.hang_seconds)
        failures_wanted = self.flaky.get(benchmark, 0)
        if failures_wanted:
            if self._claim_flaky_attempt(benchmark, failures_wanted):
                raise InjectedFault(
                    f"injected transient failure for {benchmark}",
                    benchmark=benchmark, fault="flaky",
                )

    def _claim_flaky_attempt(self, benchmark: str, wanted: int) -> bool:
        """Record one attempt; True while the attempt should still fail."""
        state = Path(self.state_dir)  # validated in __post_init__
        state.mkdir(parents=True, exist_ok=True)
        for attempt in range(wanted):
            marker = state / f"flaky-{benchmark}-{attempt}"
            try:
                marker.touch(exist_ok=False)
            except FileExistsError:
                continue
            return True
        return False

    def on_events(
        self, benchmark: str, events: int, in_worker: bool
    ) -> None:
        """Fire the ``worker_kill`` fault once *events* reach its threshold.

        Called by the checkpointed simulation loop between executor
        slices with the bus's live branch-event count.  The kill is
        deterministic in event time (not wall-clock) and fires at most
        once per benchmark: a marker file under ``state_dir`` is claimed
        atomically before dying, so the retried attempt — which resumes
        past the threshold — is not killed again.

        Raises:
            InjectedFault: in-process runs, where SIGKILLing the current
                process would take down the caller itself.
        """
        threshold = self.worker_kill.get(benchmark)
        if threshold is None or events < threshold:
            return
        if not self._claim_kill(benchmark):
            return
        if in_worker:
            os.kill(os.getpid(), 9)  # SIGKILL: no cleanup, no atexit
        raise InjectedFault(
            f"injected worker kill for {benchmark} at {events} events",
            benchmark=benchmark, fault="worker_kill", events=events,
        )

    def _claim_kill(self, benchmark: str) -> bool:
        """Atomically claim the one allowed kill for *benchmark*."""
        state = Path(self.state_dir)  # validated in __post_init__
        state.mkdir(parents=True, exist_ok=True)
        marker = state / f"kill-{benchmark}"
        try:
            marker.touch(exist_ok=False)
        except FileExistsError:
            return False
        return True

    # -- supervised-shard faults (consumed by repro.eval.supervisor) --------

    def on_shard_start(self, slot: int, in_worker: bool = True) -> None:
        """Fire the ``shard_hang`` fault for shard *slot* at worker entry.

        The worker sleeps ``hang_seconds`` before its first heartbeat
        refresh, so its lease goes stale while its pid stays probe-able —
        the exact live-but-wedged case the supervisor must detect via
        lease expiry rather than a pid probe.
        """
        if slot in self.shard_hang:
            time.sleep(self.hang_seconds)

    def on_shard_events(
        self, slot: int, events: int, in_worker: bool = True
    ) -> None:
        """Fire the ``shard_kill`` fault once *events* reach the threshold.

        Called from the supervised worker's progress callback with the
        current job's live branch-event count.  Deterministic in event
        time and fires at most once per slot: the marker lives under
        ``state_dir`` when present (surviving the killed process, so the
        restarted shard is not killed again), else in-process.

        Raises:
            InjectedFault: when ``in_worker`` is False (killing the
                caller's own process would defeat the test).
        """
        threshold = self.shard_kill.get(str(slot))
        if threshold is None or events < threshold:
            return
        if not self._claim_shard_kill(slot):
            return
        if in_worker:
            os.kill(os.getpid(), 9)  # SIGKILL: no cleanup, no atexit
        raise InjectedFault(
            f"injected shard kill for slot {slot} at {events} events",
            shard=slot, fault="shard_kill", events=events,
        )

    def _claim_shard_kill(self, slot: int) -> bool:
        """Atomically claim the one allowed kill for shard *slot*."""
        if not self.state_dir:
            if slot in _FIRED_SHARD_KILLS:
                return False
            _FIRED_SHARD_KILLS.add(slot)
            return True
        state = Path(self.state_dir)
        state.mkdir(parents=True, exist_ok=True)
        marker = state / f"shard-kill-{slot}"
        try:
            marker.touch(exist_ok=False)
        except FileExistsError:
            return False
        return True

    def lease_stalled(self, slot: int) -> bool:
        """Whether shard *slot* must skip its heartbeat lease writes."""
        return slot in self.lease_stall

    # -- client-side service faults (consumed by repro loadgen) -------------

    def client_delay(self, index: int) -> float:
        """Mid-frame pause for request *index* (0.0 = not a slow client)."""
        if self.slow_client > 0 and (index + 1) % self.slow_client == 0:
            return self.slow_client_seconds
        return 0.0

    def drops_connection(self, index: int) -> bool:
        """Whether request *index* disconnects after its accepted frame."""
        return self.conn_drop > 0 and (index + 1) % self.conn_drop == 0

    def on_artifacts_stored(
        self, benchmark: str, trace_path: Path, meta_path: Path
    ) -> None:
        """Corrupt freshly written artifacts for *benchmark*, if planned."""
        if benchmark in self.corrupt_trace:
            corrupt_file(trace_path)
        if benchmark in self.corrupt_meta:
            corrupt_file(meta_path)


def corrupt_file(path: Path, offset: int = 16, length: int = 64) -> None:
    """Deterministically flip a byte span of *path* in place.

    Used by the injection plan, the ``repro faults`` CLI demo and the
    smoke target to damage cache entries without deleting them (a deleted
    file is a trivial miss; a damaged one must fail *verification*).
    """
    path = Path(path)
    raw = bytearray(path.read_bytes())
    if not raw:
        raw = bytearray(b"\xff" * length)
    end = min(len(raw), offset + length)
    for i in range(min(offset, len(raw) - 1), end):
        raw[i] ^= 0xFF
    path.write_bytes(bytes(raw))


def active_plan() -> Optional[FaultPlan]:
    """The plan installed in the environment, or None.

    Accepts both serialisations: the JSON form engines install via
    :meth:`FaultPlan.installed`, and the shell-friendly compact text form
    (``shard_kill:1@5000,lease_stall:2`` — see
    :meth:`FaultPlan.from_compact`).  A malformed ``REPRO_FAULTS`` value
    raises immediately — a half-applied fault plan would silently
    invalidate whatever the suite was proving.
    """
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    if raw.lstrip().startswith("{"):
        return FaultPlan.from_json(raw)
    return FaultPlan.from_compact(raw)


__all__ = [
    "DEFAULT_HANG_SECONDS",
    "DEFAULT_KILL_EVENTS",
    "ENV_VAR",
    "FaultPlan",
    "InjectedFault",
    "active_plan",
    "corrupt_file",
]
