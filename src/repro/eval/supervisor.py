"""Crash-safe shard supervisor for distributed suite runs.

``repro supervise --workers N`` (and ``repro experiment --workers N``)
runs one *parent orchestrator* that computes the cost-balanced LPT
partition, spawns N engine worker processes over a **shared** artifact
store, and babysits them to a merged, byte-verified result:

* **Heartbeat leases** — every worker fsyncs a small per-slot lease file
  (pid + timestamp + current benchmark/event count) from its engine's
  progress callback, so the supervisor can tell a *dead* worker (pid
  probe fails, or the process exited) from a *wedged* one (pid alive,
  lease expired) from a merely *slow* one (pid alive, lease fresh).
  :func:`classify_worker` pins the ordering: the pid probe is checked
  first, lease age only breaks the tie for live processes.
* **Crash-safe recovery** — a dead shard's incomplete benchmarks are
  recovered by diffing its assignment against the shared
  :class:`~repro.checkpoint.journal.RunJournal` (completed work is
  durable: journal + content-addressed store + checkpoints), then the
  slot is restarted with exponential backoff up to ``max_restarts``
  times; an exhausted slot is retired and its survivors re-partitioned
  across free slots.  Because workers run ``resume=True``, a restarted
  shard skips everything already journaled and resumes the in-flight
  benchmark from its last checkpoint.
* **Speculative re-execution** — once every benchmark is assigned and a
  slot is idle, tail stragglers' remaining benchmarks are re-executed
  speculatively.  Safety rides entirely on the store's ``.claim``
  protocol and idempotent atomic put: speculative jobs skip
  ``wait_for_writer`` and race the original; the first writer wins and
  both produce byte-identical artifacts by construction.
* **Cascading SIGTERM drain** — SIGTERM to the supervisor forwards to
  every worker (which checkpoints via :mod:`repro.eval.interrupt` and
  reports what it finished), stops restarts and speculation, escalates
  to SIGKILL after :data:`~repro.eval.engine.DRAIN_KILL_GRACE` seconds,
  then still runs the merge census and reports completed/remaining
  honestly.

The cost model is learned: :func:`~repro.eval.shards.measured_costs`
feeds per-benchmark wall-clock medians from the shared journal into
:func:`~repro.eval.shards.partition_selection`, falling back to static
fuel estimates for never-run benchmarks.

Fault modes ``shard_kill:K@EVENTS``, ``shard_hang:K`` and
``lease_stall:K`` (:mod:`repro.eval.faults`, via ``REPRO_FAULTS``)
exercise exactly these paths deterministically.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..checkpoint import RunJournal
from ..errors import ShardLost, SuiteInterrupted, error_to_dict
from . import faults, interrupt
from .engine import DRAIN_KILL_GRACE, ExecutionEngine
from .shards import (
    MergeReport,
    ShardSpec,
    measured_costs,
    merge_shards,
    partition_selection,
)

__all__ = [
    "DEFAULT_MAX_RESTARTS",
    "LEASE_INTERVAL_SECONDS",
    "LEASE_TIMEOUT_SECONDS",
    "LeaseWriter",
    "RESTART_DELAY_CAP",
    "ShardSupervisor",
    "SupervisorReport",
    "SupervisorStats",
    "classify_worker",
    "read_lease",
    "restart_delay",
]

#: subdirectory of the shared store holding supervisor state (leases,
#: injected fault-state markers).  Operational, never merged as results.
SUPERVISOR_SUBDIR = "supervisor"

#: a live worker whose lease is older than this many seconds is treated
#: as wedged: killed, counted as a lease expiry, and its work recovered.
LEASE_TIMEOUT_SECONDS = 10.0

#: minimum interval between a worker's lease heartbeats (the progress
#: callback fires per checkpoint slice, far more often than this).
LEASE_INTERVAL_SECONDS = 0.5

#: restart budget per shard slot before it is retired and its remaining
#: benchmarks are re-partitioned across the surviving slots.
DEFAULT_MAX_RESTARTS = 2

#: upper bound on the exponential restart backoff delay.
RESTART_DELAY_CAP = 30.0

#: supervisor scheduler poll interval (seconds).
_POLL_SECONDS = 0.05


def restart_delay(
    backoff: float, restart: int, cap: float = RESTART_DELAY_CAP
) -> float:
    """Seconds to wait before restart number *restart* (1-based).

    Exponential: the first restart waits one base interval, each further
    one doubles, capped at *cap* so a flapping shard cannot push its own
    recovery arbitrarily far into the future.
    """
    if restart < 1:
        return 0.0
    return min(cap, backoff * (2 ** (restart - 1)))


def classify_worker(
    alive: bool, lease_age: float, lease_timeout: float
) -> str:
    """``"dead"`` | ``"straggler"`` | ``"healthy"`` for one worker.

    The pid probe is authoritative and checked **first**: a process that
    is gone is dead no matter how fresh its lease looks (the lease file
    survives its writer), and only a provably *live* process can be a
    straggler.  Lease age then separates wedged (expired) from merely
    slow (fresh) — a slow-but-alive worker is healthy and must never be
    killed on age alone.
    """
    if not alive:
        return "dead"
    if lease_age > lease_timeout:
        return "straggler"
    return "healthy"


class LeaseWriter:
    """One worker's fsynced heartbeat lease file.

    The lease is the worker's liveness side-channel: a small JSON file
    (pid, wall-clock timestamp, current benchmark and event count)
    rewritten atomically — temp file, fsync, ``os.replace`` — so the
    supervisor never reads a torn lease.  The file's mtime is what the
    supervisor ages; the payload is for post-mortems and tests.

    Beats are throttled to *interval* seconds (the progress callback
    fires per checkpoint slice, which can be thousands of times per
    second on small workloads); ``force=True`` bypasses the throttle for
    the initial beat at worker entry.  A ``lease_stall``-faulted worker
    sets *stalled* and skips every write.
    """

    def __init__(
        self,
        directory: Path,
        slot: int,
        interval: float = LEASE_INTERVAL_SECONDS,
        stalled: bool = False,
    ) -> None:
        self.directory = Path(directory)
        self.slot = slot
        self.interval = interval
        self.stalled = stalled
        self.path = self.directory / f"lease-{slot}.json"
        self._last = float("-inf")

    def beat(
        self, benchmark: str = "", events: int = 0, force: bool = False
    ) -> None:
        """Refresh the lease (throttled; a failed write never kills the job)."""
        if self.stalled:
            return
        now = time.monotonic()
        if not force and now - self._last < self.interval:
            return
        self._last = now
        payload = json.dumps(
            {
                "pid": os.getpid(),
                "ts": round(time.time(), 3),
                "slot": self.slot,
                "benchmark": benchmark,
                "events": events,
            }
        ).encode("ascii")
        tmp = self.directory / f".lease-{self.slot}.tmp-{os.getpid()}"
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd = os.open(tmp, os.O_CREAT | os.O_WRONLY | os.O_TRUNC)
            try:
                os.write(fd, payload)
                os.fsync(fd)
            finally:
                os.close(fd)
            os.replace(tmp, self.path)
        except OSError:
            pass  # heartbeat is advisory; the journal is the durable record


def read_lease(path: Path) -> Optional[Dict[str, object]]:
    """The lease payload at *path*, or None (missing/torn/foreign)."""
    try:
        payload = json.loads(Path(path).read_bytes())
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def _supervised_worker_entry(conn, payload: tuple) -> None:
    """Shard worker process entry point (must stay module-level).

    Runs one in-process :class:`ExecutionEngine` over this slot's
    assigned benchmarks with ``resume=True`` against the shared store —
    which is the entire recovery story: a restarted worker replays the
    shared journal, skips everything any sibling already completed, and
    resumes the in-flight benchmark from its latest checkpoint.

    The engine's progress callback doubles as the fault hook
    (``shard_kill`` fires here, deterministically in event time) and the
    heartbeat (a throttled fsynced lease write).  The lease gets one
    forced beat *before* ``on_shard_start`` so a ``shard_hang`` fault
    leaves a fresh-then-aging lease behind a live pid — the exact
    wedged-worker signature the supervisor must detect by lease expiry.
    """
    (
        slot,
        total,
        names,
        store_root,
        scale,
        trace_limit,
        backend,
        checkpoint_every,
        retries,
        speculative,
        selection,
        cost_model,
        lease_interval,
    ) = payload
    interrupt.install_worker_handler()
    interrupt.set_pdeathsig()
    plan = faults.active_plan()
    stalled = plan.lease_stalled(slot) if plan is not None else False
    lease = LeaseWriter(
        Path(store_root) / SUPERVISOR_SUBDIR,
        slot,
        interval=lease_interval,
        stalled=stalled,
    )
    lease.beat(force=True)
    if plan is not None:
        plan.on_shard_start(slot)

    def heartbeat(benchmark: str, events: int) -> None:
        if plan is not None:
            plan.on_shard_events(slot, events)
        lease.beat(benchmark=benchmark, events=events)

    try:
        shard = ShardSpec(slot, total) if 1 <= slot <= total else None
        engine = ExecutionEngine(
            scale=scale,
            cache_dir=Path(store_root),
            trace_limit=trace_limit,
            jobs=1,
            retries=retries,
            checkpoint_every_events=checkpoint_every,
            resume=True,
            backend=backend,
            shard=shard,
            selection=selection,
            progress=heartbeat,
            speculative=speculative,
            cost_model=cost_model,
            journal_strict=False,
        )
        engine.prefetch(list(names))
    except SuiteInterrupted as exc:
        conn.send(
            (
                "interrupted",
                {
                    "slot": slot,
                    "completed": list(exc.context.get("completed", [])),
                    "remaining": list(exc.context.get("remaining", [])),
                },
            )
        )
    except Exception as exc:  # crash isolation: report, don't die silently
        conn.send(("error", error_to_dict(exc)))
    else:
        conn.send(
            (
                "ok",
                {
                    "slot": slot,
                    "completed": sorted(
                        n
                        for n in names
                        if n in engine.stats.job_source
                        and n not in engine.failures
                    ),
                    "failed": {
                        name: error_to_dict(err)
                        for name, err in engine.failures.items()
                    },
                    "job_source": dict(engine.stats.job_source),
                    "stats": engine.stats.as_dict(),
                },
            )
        )
    finally:
        conn.close()


class _ShardWorker:
    """One spawned shard worker process and its supervisor-side state."""

    def __init__(
        self,
        slot: int,
        names: Sequence[str],
        payload: tuple,
        lease_dir: Path,
        speculative: bool = False,
        restarts: int = 0,
        ctx=None,
    ) -> None:
        if ctx is None:
            ctx = multiprocessing.get_context()
        self.slot = slot
        self.names = list(names)
        self.speculative = speculative
        self.restarts = restarts
        self.lease_path = lease_dir / f"lease-{slot}.json"
        try:  # a stale lease from a previous incarnation must not look fresh
            self.lease_path.unlink()
        except OSError:
            pass
        self.spawned_wall = time.time()
        self.receiver, sender = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=_supervised_worker_entry,
            args=(sender, payload),
            daemon=True,
        )
        self.process.start()
        sender.close()

    def poll(self) -> Optional[Tuple[str, object]]:
        """The worker's outcome if it has one, else None (non-blocking)."""
        if self.receiver.poll():
            try:
                return self.receiver.recv()
            except EOFError:
                return ("crash", self.process.exitcode)
        if not self.process.is_alive():
            return ("crash", self.process.exitcode)
        return None

    def lease_age(self) -> float:
        """Seconds since the last heartbeat (spawn time if never beaten)."""
        try:
            newest = self.lease_path.stat().st_mtime
        except OSError:
            newest = self.spawned_wall
        return max(0.0, time.time() - newest)

    def terminate(self) -> None:
        self.process.terminate()

    def kill(self) -> None:
        self.process.kill()

    def reap(self, grace: float = 5.0) -> None:
        self.receiver.close()
        self.process.join(timeout=grace)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=grace)


@dataclass
class SupervisorStats:
    """Recovery counters for one supervised run (schema v9)."""

    workers: int = 0
    restarts: int = 0
    reassigned_benchmarks: int = 0
    speculative_runs: int = 0
    speculative_wins: int = 0
    speculative_losses: int = 0
    lease_expiries: int = 0
    shards_lost: int = 0
    cost_model: str = "fuel"

    def as_dict(self) -> Dict[str, object]:
        return {
            "workers": self.workers,
            "restarts": self.restarts,
            "reassigned_benchmarks": self.reassigned_benchmarks,
            "speculative_runs": self.speculative_runs,
            "speculative_wins": self.speculative_wins,
            "speculative_losses": self.speculative_losses,
            "lease_expiries": self.lease_expiries,
            "shards_lost": self.shards_lost,
            "cost_model": self.cost_model,
        }


@dataclass
class SupervisorReport:
    """Outcome of one :meth:`ShardSupervisor.run`.

    ``exhausted`` means benchmarks were *lost*: every slot that could
    have run them burned through its restart budget — the honest-failure
    case the CLI maps to exit code 1.  ``interrupted`` marks a SIGTERM
    drain: completed work is durable and the run resumes, so the CLI
    exits 0.
    """

    completed: List[str] = field(default_factory=list)
    remaining: List[str] = field(default_factory=list)
    failed: Dict[str, Dict[str, object]] = field(default_factory=dict)
    lost: List[str] = field(default_factory=list)
    interrupted: bool = False
    exhausted: bool = False
    seconds: float = 0.0
    stats: SupervisorStats = field(default_factory=SupervisorStats)
    merge: Optional[MergeReport] = None
    #: one typed ``shard_lost`` record per worker death/lease expiry the
    #: supervisor recovered from (or failed to).
    shard_events: List[Dict[str, object]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "completed": list(self.completed),
            "remaining": list(self.remaining),
            "failed": dict(self.failed),
            "lost": list(self.lost),
            "interrupted": self.interrupted,
            "exhausted": self.exhausted,
            "seconds": round(self.seconds, 4),
            "supervisor": self.stats.as_dict(),
            "merge": self.merge.as_dict() if self.merge else None,
            "shard_events": list(self.shard_events),
        }

    def render(self) -> str:
        lines = ["-- supervisor --"]
        s = self.stats
        lines.append(
            f"  workers: {s.workers}  cost model: {s.cost_model}"
        )
        lines.append(
            f"  recovery: {s.restarts} restart(s), "
            f"{s.reassigned_benchmarks} reassigned benchmark(s), "
            f"{s.lease_expiries} lease expiry(ies), "
            f"{s.shards_lost} shard(s) lost"
        )
        lines.append(
            f"  speculation: {s.speculative_runs} run(s), "
            f"{s.speculative_wins} win(s), {s.speculative_losses} loss(es)"
        )
        lines.append(
            f"  completed: {len(self.completed)}  "
            f"failed: {len(self.failed)}  remaining: {len(self.remaining)}"
            f"  ({self.seconds:.2f}s)"
        )
        if self.interrupted:
            lines.append(
                "  interrupted: drained on SIGTERM — rerun to continue"
            )
        if self.lost:
            lines.append(
                "  LOST (restart budget exhausted): "
                + ", ".join(self.lost)
            )
        return "\n".join(lines)


class ShardSupervisor:
    """Parent orchestrator for an N-worker supervised suite run.

    Args:
        names: the resolved benchmark selection to materialise.
        workers: shard worker process count (>= 1).
        store_root: the **shared** artifact store all workers write to;
            also holds the shared run journal, checkpoints and
            ``supervisor/`` lease state.
        scale / trace_limit / backend: run parameters, forwarded to
            every worker engine (and into every digest/journal record).
        checkpoint_every_events: worker checkpoint cadence; the finer it
            is, the less a killed shard replays after restart.
        retries: per-benchmark retry budget inside each worker engine.
        max_restarts: per-slot worker restart budget; an exhausted slot
            is retired and its work re-partitioned.
        restart_backoff: base delay for :func:`restart_delay`.
        lease_timeout: heartbeat staleness threshold for
            :func:`classify_worker`.
        lease_interval: worker heartbeat cadence (must be well under
            *lease_timeout*).
        speculate: enable speculative tail re-execution.
        selection: the selector expression (observability only).
    """

    def __init__(
        self,
        names: Sequence[str],
        workers: int,
        store_root: Path,
        scale: float = 1.0,
        trace_limit: Optional[int] = None,
        backend: str = "interp",
        checkpoint_every_events: int = 2000,
        retries: int = 1,
        max_restarts: int = DEFAULT_MAX_RESTARTS,
        restart_backoff: float = 0.25,
        lease_timeout: float = LEASE_TIMEOUT_SECONDS,
        lease_interval: float = LEASE_INTERVAL_SECONDS,
        speculate: bool = True,
        selection: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {max_restarts}"
            )
        self.names = list(dict.fromkeys(names))
        self.workers = workers
        self.store_root = Path(store_root)
        self.scale = scale
        self.trace_limit = trace_limit
        self.backend = backend
        self.checkpoint_every_events = checkpoint_every_events
        self.retries = retries
        self.max_restarts = max_restarts
        self.restart_backoff = restart_backoff
        self.lease_timeout = lease_timeout
        self.lease_interval = lease_interval
        self.speculate = speculate
        self.selection = selection
        self.journal = RunJournal(self.store_root)
        self.stats = SupervisorStats(workers=workers)
        self.lease_dir = self.store_root / SUPERVISOR_SUBDIR

    # -- internals ----------------------------------------------------------

    def _payload(
        self, slot: int, names: Sequence[str], speculative: bool
    ) -> tuple:
        return (
            slot,
            self.workers,
            tuple(names),
            str(self.store_root),
            self.scale,
            self.trace_limit,
            self.backend,
            self.checkpoint_every_events,
            self.retries,
            speculative,
            self.selection,
            self.stats.cost_model,
            self.lease_interval,
        )

    def _spawn(
        self,
        slot: int,
        names: Sequence[str],
        speculative: bool = False,
        restarts: int = 0,
    ) -> _ShardWorker:
        worker = _ShardWorker(
            slot,
            names,
            self._payload(slot, names, speculative),
            self.lease_dir,
            speculative=speculative,
            restarts=restarts,
        )
        self._running.append(worker)
        return worker

    def _completed_now(self) -> Dict[str, str]:
        return self.journal.completed(
            self.scale, self.trace_limit, backend=self.backend
        )

    def _unfinished(self, names: Sequence[str]) -> List[str]:
        completed = self._completed_now()
        return [
            n
            for n in names
            if n not in completed and n not in self._failed
        ]

    def _handle_dead(self, worker: _ShardWorker) -> None:
        """Recover a dead (or killed-wedged) worker's incomplete work."""
        if worker.speculative:
            return  # speculative attempts are free to lose
        remaining = self._unfinished(worker.names)
        self._shard_events.append(
            ShardLost(
                f"shard {worker.slot} lost with "
                f"{len(remaining)} benchmark(s) incomplete",
                slot=worker.slot,
                restarts=worker.restarts,
                benchmarks=list(remaining),
            ).to_dict()
        )
        if not remaining:
            return
        if worker.restarts < self.max_restarts:
            restart = worker.restarts + 1
            self.stats.restarts += 1
            self._pending_restarts[worker.slot] = (
                time.monotonic()
                + restart_delay(self.restart_backoff, restart),
                remaining,
                restart,
            )
        else:
            self._retired.add(worker.slot)
            self.stats.shards_lost += 1
            self._orphans.extend(
                n for n in remaining if n not in self._orphans
            )

    def _absorb_ok(self, worker: _ShardWorker, summary: Dict) -> None:
        for name, err in dict(summary.get("failed", {})).items():
            self._failed[name] = err
        if worker.speculative:
            for name, source in dict(
                summary.get("job_source", {})
            ).items():
                if source in ("simulated", "resimulated"):
                    self.stats.speculative_wins += 1
                elif source in ("store", "journal"):
                    self.stats.speculative_losses += 1

    def _install_fault_state(self) -> Optional[str]:
        """Give an env fault plan a durable ``state_dir`` if it lacks one.

        ``shard_kill`` must fire exactly once across worker restarts, so
        its marker needs a directory that survives the killed process.
        A plan arriving via the compact env syntax usually has none; the
        supervisor injects one under its own state subdirectory and
        re-installs the plan for its children.  Returns the previous raw
        env value (for restoration), or None when nothing changed — a
        plan only exists when the variable is set, so a changed env
        always has a string to restore.
        """
        plan = faults.active_plan()
        if plan is None or plan.state_dir or not plan.shard_kill:
            return None
        state = self.lease_dir / "fault-state"
        state.mkdir(parents=True, exist_ok=True)
        previous = os.environ[faults.ENV_VAR]
        os.environ[faults.ENV_VAR] = dataclasses.replace(
            plan, state_dir=str(state)
        ).to_json()
        return previous

    # -- the monitor loop ---------------------------------------------------

    def run(self) -> SupervisorReport:
        """Partition, spawn, babysit, merge; returns the honest report."""
        started = time.perf_counter()
        self._running: List[_ShardWorker] = []
        self._pending_restarts: Dict[
            int, Tuple[float, List[str], int]
        ] = {}
        self._orphans: List[str] = []
        self._retired: set = set()
        self._failed: Dict[str, Dict[str, object]] = {}
        self._shard_events: List[Dict[str, object]] = []
        lost: List[str] = []
        speculated: set = set()
        interrupted = False
        next_spec_slot = self.workers + 1
        previous_env = self._install_fault_state()

        costs = measured_costs(
            self.journal,
            self.scale,
            self.trace_limit,
            backend=self.backend,
        )
        usable = {n: c for n, c in costs.items() if n in set(self.names)}
        self.stats.cost_model = "measured" if usable else "fuel"

        try:
            bins = partition_selection(
                self.names,
                self.workers,
                self.scale,
                costs=usable or None,
            )
            for index, bin_names in enumerate(bins, start=1):
                if bin_names:
                    self._spawn(index, list(bin_names))

            draining = False
            drain_started = 0.0
            while (
                self._running or self._orphans or self._pending_restarts
            ):
                now = time.monotonic()
                if not draining and interrupt.drain_requested():
                    draining = True
                    interrupted = True
                    drain_started = now
                    self._pending_restarts.clear()
                    for worker in self._running:
                        worker.terminate()
                if (
                    draining
                    and now - drain_started > DRAIN_KILL_GRACE
                ):
                    for worker in self._running:
                        worker.kill()

                for slot in list(self._pending_restarts):
                    due, names, restart = self._pending_restarts[slot]
                    if not draining and due <= now:
                        del self._pending_restarts[slot]
                        self._spawn(slot, names, restarts=restart)

                progressed = False
                for worker in list(self._running):
                    outcome = worker.poll()
                    if outcome is None:
                        if draining:
                            continue
                        state = classify_worker(
                            worker.process.is_alive(),
                            worker.lease_age(),
                            self.lease_timeout,
                        )
                        if state == "straggler":
                            # live pid, expired lease: wedged.  Kill it
                            # and recover exactly like a crash — the
                            # journal diff is the same either way.
                            self.stats.lease_expiries += 1
                            worker.kill()
                            worker.reap()
                            self._running.remove(worker)
                            self._handle_dead(worker)
                            progressed = True
                        continue
                    progressed = True
                    self._running.remove(worker)
                    kind, payload = outcome
                    worker.reap()
                    if kind == "ok":
                        self._absorb_ok(worker, payload)
                    elif kind == "interrupted":
                        interrupted = True
                    elif not draining:  # "crash" or "error"
                        self._handle_dead(worker)

                if draining:
                    if not self._running:
                        break
                    if not progressed:
                        time.sleep(_POLL_SECONDS)
                    continue

                if self._orphans:
                    busy = {w.slot for w in self._running} | set(
                        self._pending_restarts
                    )
                    free = [
                        s
                        for s in range(1, self.workers + 1)
                        if s not in self._retired and s not in busy
                    ]
                    if free:
                        orphans = self._unfinished(self._orphans)
                        self._orphans.clear()
                        if orphans:
                            self.stats.reassigned_benchmarks += len(
                                orphans
                            )
                            parts = partition_selection(
                                orphans,
                                len(free),
                                self.scale,
                                costs=usable or None,
                            )
                            for slot, part in zip(free, parts):
                                if part:
                                    self._spawn(slot, list(part))
                    elif not self._running and not self._pending_restarts:
                        # every slot retired with work left: unrecoverable
                        lost = sorted(set(self._unfinished(self._orphans)))
                        self._orphans.clear()

                if (
                    self.speculate
                    and self._running
                    and not self._orphans
                    and not self._pending_restarts
                    and len(self._running) < self.workers
                ):
                    tail = [
                        n
                        for w in self._running
                        if not w.speculative
                        for n in self._unfinished(w.names)
                        if n not in speculated
                    ]
                    while tail and len(self._running) < self.workers:
                        name = tail.pop(0)
                        speculated.add(name)
                        self.stats.speculative_runs += 1
                        self._spawn(
                            next_spec_slot, [name], speculative=True
                        )
                        next_spec_slot += 1

                if not progressed:
                    time.sleep(_POLL_SECONDS)
        finally:
            for worker in self._running:
                worker.kill()
                worker.reap()
            self._running.clear()
            if previous_env is not None:
                os.environ[faults.ENV_VAR] = previous_env

        # Auto-merge: with a shared store this is the census pass (the
        # artifacts are already unioned by construction); it also proves
        # every entry parses and journals the completion set.
        merge = merge_shards([self.store_root], self.store_root)
        completed = self._completed_now()
        report = SupervisorReport(
            completed=sorted(n for n in self.names if n in completed),
            remaining=sorted(
                n
                for n in self.names
                if n not in completed and n not in self._failed
            ),
            failed=dict(self._failed),
            lost=lost,
            interrupted=interrupted,
            exhausted=bool(lost),
            seconds=time.perf_counter() - started,
            stats=self.stats,
            merge=merge,
            shard_events=self._shard_events,
        )
        return report
