"""Experiment orchestration facade.

:class:`BenchmarkRunner` keeps the historical ``artifacts/trace/profile``
API the tables, figures and ablations consume, but is now a thin facade
over :class:`repro.eval.engine.ExecutionEngine`: jobs fan out across a
process pool when ``jobs > 1`` and persistent caching is content-addressed
— artifact filenames fold in a digest of the assembled program, its input
and the capture parameters, so edited kernels invalidate stale artifacts
automatically (the old filename-tag scheme kept them alive forever).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from ..predictors.base import BranchPredictor
from ..profiling.profile import InterleaveProfile
from ..trace.events import BranchTrace
from .engine import ExecutionEngine, FusedRunResult, RunArtifacts

__all__ = ["BenchmarkRunner", "FusedRunResult", "RunArtifacts"]


class BenchmarkRunner:
    """Builds, runs and profiles the analog suite with caching.

    Example::

        runner = BenchmarkRunner(scale=1.0, jobs=4)
        runner.prefetch(["compress", "gcc"])   # one parallel pool pass
        artifacts = runner.artifacts("compress")
        artifacts.profile  # InterleaveProfile for the compress analog
    """

    def __init__(
        self,
        scale: float = 1.0,
        cache_dir: Optional[Path] = None,
        trace_limit: Optional[int] = None,
        jobs: int = 1,
        timeout: Optional[float] = None,
        retries: int = 1,
        retry_backoff: float = 0.05,
        checkpoint_every_events: Optional[int] = None,
        resume: bool = False,
        backend: Optional[object] = None,
        shard: Optional[object] = None,
        selection: Optional[str] = None,
    ) -> None:
        """
        Args:
            scale: workload scale forwarded to the suite.
            cache_dir: optional directory for the content-addressed
                trace/profile store (created on demand).
            trace_limit: optional cap on captured events per run
                (downsampled profiling for quick passes).
            jobs: worker processes used by :meth:`prefetch`; 1 keeps the
                historical sequential in-process behaviour.
            timeout: per-attempt wall-clock budget (seconds) for parallel
                jobs; None disables.
            retries: extra attempts per failed job before it is recorded
                as a failure.
            retry_backoff: base delay between attempts, doubled per retry.
            checkpoint_every_events: write a simulation checkpoint every
                this many branch events so interrupted jobs resume
                mid-run (requires ``cache_dir``; None disables).
            resume: skip benchmarks the cache's run journal records as
                completed (requires ``cache_dir``).
            backend: simulation backend name or instance
                (:mod:`repro.sim.api`; default interpreter).
            shard: ``K/N`` shard of a distributed run (string or
                :class:`~repro.eval.shards.ShardSpec`); prefetch then
                covers only this host's deterministic slice.
            selection: the selector expression the run's names came
                from (journal/stats observability only).
        """
        self._engine = ExecutionEngine(
            scale=scale,
            cache_dir=cache_dir,
            trace_limit=trace_limit,
            jobs=jobs,
            timeout=timeout,
            retries=retries,
            retry_backoff=retry_backoff,
            checkpoint_every_events=checkpoint_every_events,
            resume=resume,
            backend=backend,
            shard=shard,
            selection=selection,
        )

    # -- engine passthroughs ---------------------------------------------------

    @property
    def engine(self) -> ExecutionEngine:
        """The underlying execution engine (stats, store, job specs)."""
        return self._engine

    @property
    def scale(self) -> float:
        return self._engine.scale

    @property
    def cache_dir(self) -> Optional[Path]:
        return self._engine.cache_dir

    @property
    def trace_limit(self) -> Optional[int]:
        return self._engine.trace_limit

    @property
    def jobs(self) -> int:
        return self._engine.jobs

    @property
    def backend(self) -> str:
        """Resolved simulation backend name."""
        return self._engine.backend

    @property
    def shard(self):
        """This runner's :class:`~repro.eval.shards.ShardSpec` (or None)."""
        return self._engine.shard

    @property
    def selection(self) -> Optional[str]:
        """The selector expression behind this run's names (or None)."""
        return self._engine.selection

    @property
    def stats(self):
        """Cache hit/miss counters, per-job timings, failure counters."""
        return self._engine.stats

    @property
    def failures(self):
        """Benchmarks that exhausted their retries, name -> typed error."""
        return self._engine.failures

    @property
    def _artifacts(self) -> Dict[str, RunArtifacts]:
        # the in-memory memo, exposed under its historical name
        return self._engine._memo

    # -- cache paths -----------------------------------------------------------

    def _cache_paths(self, name: str) -> Optional[Tuple[Path, Path]]:
        """(trace, profile) cache paths with the content digest folded in.

        The legacy scheme keyed on ``name-sSCALE[-lLIMIT]`` only, so stale
        artifacts survived kernel edits; the tag now ends with the first
        16 hex digits of the job's content digest.
        """
        return self._engine.cache_paths(name)

    # -- public API --------------------------------------------------------------

    def artifacts(self, name: str) -> RunArtifacts:
        """Trace + profile for benchmark *name* (memoised)."""
        return self._engine.artifacts(name)

    def trace(self, name: str) -> BranchTrace:
        """The benchmark's branch trace."""
        return self._engine.trace(name)

    def profile(self, name: str) -> InterleaveProfile:
        """The benchmark's interleave profile."""
        return self._engine.profile(name)

    def profile_and_predict(
        self,
        name: str,
        predictors: Sequence[BranchPredictor],
        warmup: int = 0,
        track_per_branch: bool = False,
        archive: Optional[bool] = None,
    ) -> FusedRunResult:
        """Fused mode: profile + predictor bank from one pass.

        Cold benchmarks simulate once with the interleave analyzer and
        every predictor riding the event bus together; warm benchmarks
        replay their cached trace through the bank in one chunked pass.
        See :meth:`ExecutionEngine.profile_and_predict`.
        """
        return self._engine.profile_and_predict(
            name,
            predictors,
            warmup=warmup,
            track_per_branch=track_per_branch,
            archive=archive,
        )

    def prefetch(self, names: Sequence[str]) -> Dict[str, RunArtifacts]:
        """Materialise artifacts for *names*, in parallel when jobs > 1."""
        return self._engine.prefetch(names)

    def invalidate(self, name: Optional[str] = None) -> None:
        """Drop memoised artifacts (all of them when *name* is None)."""
        self._engine.invalidate(name)
