"""Experiment orchestration.

:class:`BenchmarkRunner` builds, simulates and profiles benchmark analogs
with memoisation, because every table/figure re-uses the same traces and
profiles.  An optional cache directory persists traces and profiles across
processes (the benchmark harness uses it so pytest-benchmark rounds do not
re-simulate).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..profiling.interleave import profile_trace
from ..profiling.profile import InterleaveProfile
from ..trace.capture import TraceCapture
from ..trace.events import BranchTrace
from ..trace.io import load_trace, save_trace
from ..workloads.build import build_workload, run_workload
from ..workloads.suite import get_benchmark


@dataclass(frozen=True)
class RunArtifacts:
    """Everything the experiments need for one benchmark run."""

    name: str
    trace: BranchTrace
    profile: InterleaveProfile
    instructions: int
    static_branches: int


class BenchmarkRunner:
    """Builds, runs and profiles the analog suite with caching.

    Example::

        runner = BenchmarkRunner(scale=1.0)
        artifacts = runner.artifacts("compress")
        artifacts.profile  # InterleaveProfile for the compress analog
    """

    def __init__(
        self,
        scale: float = 1.0,
        cache_dir: Optional[Path] = None,
        trace_limit: Optional[int] = None,
    ) -> None:
        """
        Args:
            scale: workload scale forwarded to the suite.
            cache_dir: optional directory for persistent trace/profile
                caching (created on demand).
            trace_limit: optional cap on captured events per run
                (downsampled profiling for quick passes).
        """
        self.scale = scale
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.trace_limit = trace_limit
        self._artifacts: Dict[str, RunArtifacts] = {}

    # -- cache paths -----------------------------------------------------------

    def _cache_paths(self, name: str) -> Optional[Tuple[Path, Path]]:
        if self.cache_dir is None:
            return None
        tag = f"{name}-s{self.scale:g}"
        if self.trace_limit:
            tag += f"-l{self.trace_limit}"
        return (
            self.cache_dir / f"{tag}.trace.npz",
            self.cache_dir / f"{tag}.profile.json",
        )

    # -- public API --------------------------------------------------------------

    def artifacts(self, name: str) -> RunArtifacts:
        """Trace + profile for benchmark *name* (memoised)."""
        cached = self._artifacts.get(name)
        if cached is not None:
            return cached
        artifact = self._load_or_run(name)
        self._artifacts[name] = artifact
        return artifact

    def trace(self, name: str) -> BranchTrace:
        """The benchmark's branch trace."""
        return self.artifacts(name).trace

    def profile(self, name: str) -> InterleaveProfile:
        """The benchmark's interleave profile."""
        return self.artifacts(name).profile

    def invalidate(self, name: Optional[str] = None) -> None:
        """Drop memoised artifacts (all of them when *name* is None)."""
        if name is None:
            self._artifacts.clear()
        else:
            self._artifacts.pop(name, None)

    # -- internals ------------------------------------------------------------

    def _load_or_run(self, name: str) -> RunArtifacts:
        paths = self._cache_paths(name)
        if paths is not None:
            trace_path, profile_path = paths
            if trace_path.exists() and profile_path.exists():
                trace = load_trace(trace_path)
                profile = InterleaveProfile.load(profile_path)
                return RunArtifacts(
                    name=name,
                    trace=trace,
                    profile=profile,
                    instructions=profile.instructions,
                    static_branches=profile.static_branch_count,
                )
        spec = get_benchmark(name, scale=self.scale)
        built = build_workload(spec)
        capture = TraceCapture(limit=self.trace_limit)
        result = run_workload(built, branch_hook=capture)
        trace = capture.finish(name)
        profile = profile_trace(trace, name=name)
        profile.instructions = result.instructions
        if paths is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            save_trace(trace, paths[0])
            profile.save(paths[1])
        return RunArtifacts(
            name=name,
            trace=trace,
            profile=profile,
            instructions=result.instructions,
            static_branches=built.static_conditional_branches,
        )
