"""Experiment harness: tables, figures, ablations and orchestration."""

from .ablations import (
    run_hash_baseline,
    run_input_sensitivity,
    run_predictor_family,
    run_threshold_ablation,
)
from .engine import (
    ArtifactStore,
    EngineStats,
    ExecutionEngine,
    JobResult,
    JobSpec,
    artifact_digest,
    compute_job_digest,
    prefetch_artifacts,
    surviving_benchmarks,
)
from .experiments import (
    EXPERIMENTS,
    Experiment,
    format_failure_report,
    run_all_experiments,
    run_experiment,
)
from .faults import FaultPlan, InjectedFault, corrupt_file
from .figures import (
    FigureRow,
    average_improvement,
    format_figure,
    run_figure3,
    run_figure4,
)
from .report import render_table, to_csv, write_csv
from .runner import BenchmarkRunner, RunArtifacts
from .tables import (
    SizingRow,
    Table1Row,
    Table2Row,
    format_sizing_table,
    format_table1,
    format_table2,
    reduction_summary,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)

__all__ = [
    "ArtifactStore",
    "BenchmarkRunner",
    "EXPERIMENTS",
    "EngineStats",
    "Experiment",
    "ExecutionEngine",
    "FaultPlan",
    "FigureRow",
    "InjectedFault",
    "JobResult",
    "JobSpec",
    "RunArtifacts",
    "SizingRow",
    "Table1Row",
    "Table2Row",
    "artifact_digest",
    "average_improvement",
    "compute_job_digest",
    "corrupt_file",
    "format_failure_report",
    "format_figure",
    "format_sizing_table",
    "format_table1",
    "format_table2",
    "reduction_summary",
    "prefetch_artifacts",
    "render_table",
    "run_all_experiments",
    "run_experiment",
    "run_figure3",
    "run_figure4",
    "run_hash_baseline",
    "run_input_sensitivity",
    "run_predictor_family",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_threshold_ablation",
    "surviving_benchmarks",
    "to_csv",
    "write_csv",
]
