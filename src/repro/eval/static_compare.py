"""Static-estimated vs. profiled allocation quality.

The paper's §5 allocation consumes a *profiled* conflict graph.  The
:mod:`repro.static_analysis` subsystem predicts that graph from program
structure alone, so the natural question is how much allocation quality
the profile is actually buying.  This experiment answers it per
benchmark: allocate once from the profiled graph and once from the
static estimate (which never runs the program), then score **both**
assignments against the profiled graph — the ground truth for what
actually interleaved — at the same BHT size.

Reported columns:

* ``conventional`` — conflict cost of PC-modulo indexing (no allocation);
* ``profiled`` — cost of the allocation computed from the profile;
* ``static`` — cost of the profile-free allocation, scored on the same
  profiled graph;
* ``static/prof`` — the quality ratio (1.0 means the static estimate
  allocated as well as the profile; guarded when the profiled cost is 0);
* ``vs conv`` — fraction of the conventional cost the static allocation
  removes, the headline "how far does zero profiling get you" number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..allocation.allocator import BranchAllocator
from ..allocation.conflict_cost import conflict_cost
from ..analysis.conflict_graph import DEFAULT_THRESHOLD, build_conflict_graph
from ..predictors.indexing import PCModuloIndex
from ..static_analysis.estimator import estimate_conflict_graph
from ..workloads.build import build_workload
from ..workloads.suite import get_benchmark
from .engine import prefetch_artifacts, surviving_benchmarks
from .report import render_table
from .runner import BenchmarkRunner

#: Benchmarks covered by default (the acceptance floor is six).
DEFAULT_BENCHMARKS = (
    "compress", "gcc", "ijpeg", "li", "chess", "python", "tex",
)

DEFAULT_BHT_SIZE = 128


@dataclass(frozen=True)
class StaticCompareRow:
    """One benchmark's static-vs-profiled allocation comparison.

    All costs are conflict costs on the *profiled* graph at ``bht_size``.
    """

    benchmark: str
    bht_size: int
    static_branches: int
    predicted_edges: int
    profiled_edges: int
    conventional: int
    profiled_cost: int
    static_cost: int

    @property
    def ratio(self) -> Optional[float]:
        """static/profiled cost ratio.

        Defined as 1.0 when both costs are zero (the static allocation
        matched the profiled one exactly); None only when the profiled
        allocation reached zero and the static one did not.
        """
        if self.profiled_cost == 0:
            return 1.0 if self.static_cost == 0 else None
        return self.static_cost / self.profiled_cost

    @property
    def vs_conventional(self) -> Optional[float]:
        """Fraction of conventional cost removed by the static allocation."""
        if self.conventional == 0:
            return None
        return 1.0 - self.static_cost / self.conventional


def run_static_compare(
    runner: BenchmarkRunner,
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    bht_size: int = DEFAULT_BHT_SIZE,
    threshold: Optional[int] = None,
) -> List[StaticCompareRow]:
    """Score static vs. profiled allocation on the profiled graph.

    Args:
        runner: benchmark runner (supplies the profiled ground truth).
        benchmarks: analogs to cover (defaults to seven).
        bht_size: BHT entries both allocations must fit into.
        threshold: edge-pruning threshold for both graphs.  Defaults to
            the pipeline's DEFAULT_THRESHOLD at full scale, dropping to
            10 for downscaled runs (matching the CLI's auto rule) so
            the comparison stays meaningful on short traces.
    """
    if threshold is None:
        edge_threshold = DEFAULT_THRESHOLD if runner.scale >= 0.9 else 10
    else:
        edge_threshold = threshold
    prefetch_artifacts(runner, benchmarks)
    rows: List[StaticCompareRow] = []
    for name in surviving_benchmarks(runner, benchmarks):
        # the static path: build only, never simulate
        built = build_workload(get_benchmark(name, scale=runner.scale))
        static_graph = estimate_conflict_graph(
            built.program, threshold=edge_threshold
        )
        static_allocation = BranchAllocator.from_graph(
            static_graph, threshold=edge_threshold
        ).allocate(bht_size)

        # the profiled path: the existing pipeline, same threshold
        profile = runner.profile(name)
        profiled_graph = build_conflict_graph(
            profile, threshold=edge_threshold
        )
        profiled_allocation = BranchAllocator(
            profile, threshold=edge_threshold
        ).allocate(bht_size)

        # score every assignment on the profiled graph (the ground truth);
        # index_map() falls back to PC-modulo for branches an allocation
        # never saw, exactly as the predictor would
        rows.append(
            StaticCompareRow(
                benchmark=name,
                bht_size=bht_size,
                static_branches=built.static_conditional_branches,
                predicted_edges=static_graph.edge_count,
                profiled_edges=profiled_graph.edge_count,
                conventional=conflict_cost(
                    profiled_graph, PCModuloIndex(bht_size)
                ),
                profiled_cost=conflict_cost(
                    profiled_graph, profiled_allocation.index_map()
                ),
                static_cost=conflict_cost(
                    profiled_graph, static_allocation.index_map()
                ),
            )
        )
    return rows


def format_static_compare(rows: Sequence[StaticCompareRow]) -> str:
    def fmt_ratio(value: Optional[float]) -> str:
        return "n/a" if value is None else f"{value:.2f}"

    return render_table(
        [
            "benchmark", "branches", "conventional", "profiled",
            "static", "static/prof", "vs conv",
        ],
        [
            (
                r.benchmark,
                r.static_branches,
                r.conventional,
                r.profiled_cost,
                r.static_cost,
                fmt_ratio(r.ratio),
                fmt_ratio(r.vs_conventional),
            )
            for r in rows
        ],
        title=(
            "Static-estimated vs profiled allocation "
            f"(conflict cost on the profiled graph, {rows[0].bht_size} "
            "BHT entries)" if rows else "Static-estimated vs profiled "
            "allocation"
        ),
    )
