"""Static-vs-dynamic verification: how good are the static analyses?

The paper's §5 allocation consumes a *profiled* conflict graph.  The
:mod:`repro.static_analysis` subsystem predicts that graph — and branch
directions, via the Ball–Larus heuristic catalogue — from program
structure alone.  This module scores both predictions against the
dynamic ground truth:

* :func:`run_static_compare` (the ``static_compare`` experiment)
  answers the allocation question: allocate once from the profiled
  graph and once from the static estimate, then score **both**
  assignments against the profiled graph at the same BHT size.
* :func:`run_verify_static` (the ``verify-static`` CLI command)
  answers the analysis question directly, per benchmark: the
  dynamic-weighted hit rate of the heuristic directions (with a
  per-heuristic breakdown), and the estimated conflict graph's
  working-set shape and edge precision/recall against the measured one.

``static_compare`` columns:

* ``conventional`` — conflict cost of PC-modulo indexing (no allocation);
* ``profiled`` — cost of the allocation computed from the profile;
* ``static`` — cost of the profile-free allocation, scored on the same
  profiled graph;
* ``static/prof`` — the quality ratio (1.0 means the static estimate
  allocated as well as the profile; guarded when the profiled cost is 0);
* ``vs conv`` — fraction of the conventional cost the static allocation
  removes, the headline "how far does zero profiling get you" number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..allocation.allocator import BranchAllocator
from ..allocation.conflict_cost import conflict_cost
from ..analysis.conflict_graph import (
    DEFAULT_THRESHOLD,
    ConflictGraph,
    build_conflict_graph,
)
from ..analysis.working_sets import partition_working_sets
from ..predictors.indexing import PCModuloIndex
from ..static_analysis.estimator import (
    StaticConflictEstimator,
    estimate_conflict_graph,
)
from ..static_analysis.heuristics import predict_branches
from ..workloads.build import build_workload
from ..workloads.registry import members
from ..workloads.suite import get_benchmark
from .engine import prefetch_artifacts, shard_subset, surviving_benchmarks
from .report import render_table
from .runner import BenchmarkRunner

#: Benchmarks covered by default (the acceptance floor is six).
DEFAULT_BENCHMARKS = (
    "compress", "gcc", "ijpeg", "li", "chess", "python", "tex",
)

DEFAULT_BHT_SIZE = 128


@dataclass(frozen=True)
class StaticCompareRow:
    """One benchmark's static-vs-profiled allocation comparison.

    All costs are conflict costs on the *profiled* graph at ``bht_size``.
    """

    benchmark: str
    bht_size: int
    static_branches: int
    predicted_edges: int
    profiled_edges: int
    conventional: int
    profiled_cost: int
    static_cost: int

    @property
    def ratio(self) -> Optional[float]:
        """static/profiled cost ratio.

        Defined as 1.0 when both costs are zero (the static allocation
        matched the profiled one exactly); None only when the profiled
        allocation reached zero and the static one did not.
        """
        if self.profiled_cost == 0:
            return 1.0 if self.static_cost == 0 else None
        return self.static_cost / self.profiled_cost

    @property
    def vs_conventional(self) -> Optional[float]:
        """Fraction of conventional cost removed by the static allocation."""
        if self.conventional == 0:
            return None
        return 1.0 - self.static_cost / self.conventional


def run_static_compare(
    runner: BenchmarkRunner,
    benchmarks: Optional[Sequence[str]] = None,
    bht_size: int = DEFAULT_BHT_SIZE,
    threshold: Optional[int] = None,
) -> List[StaticCompareRow]:
    """Score static vs. profiled allocation on the profiled graph.

    Args:
        runner: benchmark runner (supplies the profiled ground truth).
        benchmarks: analogs to cover (None = DEFAULT_BENCHMARKS,
            restricted to a sharded runner's slice).
        bht_size: BHT entries both allocations must fit into.
        threshold: edge-pruning threshold for both graphs.  Defaults to
            the pipeline's DEFAULT_THRESHOLD at full scale, dropping to
            10 for downscaled runs (matching the CLI's auto rule) so
            the comparison stays meaningful on short traces.
    """
    if benchmarks is None:
        benchmarks = shard_subset(runner, DEFAULT_BENCHMARKS)
    if threshold is None:
        edge_threshold = DEFAULT_THRESHOLD if runner.scale >= 0.9 else 10
    else:
        edge_threshold = threshold
    prefetch_artifacts(runner, benchmarks)
    rows: List[StaticCompareRow] = []
    for name in surviving_benchmarks(runner, benchmarks):
        # the static path: build only, never simulate
        built = build_workload(get_benchmark(name, scale=runner.scale))
        static_graph = estimate_conflict_graph(
            built.program, threshold=edge_threshold
        )
        static_allocation = BranchAllocator.from_graph(
            static_graph, threshold=edge_threshold
        ).allocate(bht_size)

        # the profiled path: the existing pipeline, same threshold
        profile = runner.profile(name)
        profiled_graph = build_conflict_graph(
            profile, threshold=edge_threshold
        )
        profiled_allocation = BranchAllocator(
            profile, threshold=edge_threshold
        ).allocate(bht_size)

        # score every assignment on the profiled graph (the ground truth);
        # index_map() falls back to PC-modulo for branches an allocation
        # never saw, exactly as the predictor would
        rows.append(
            StaticCompareRow(
                benchmark=name,
                bht_size=bht_size,
                static_branches=built.static_conditional_branches,
                predicted_edges=static_graph.edge_count,
                profiled_edges=profiled_graph.edge_count,
                conventional=conflict_cost(
                    profiled_graph, PCModuloIndex(bht_size)
                ),
                profiled_cost=conflict_cost(
                    profiled_graph, profiled_allocation.index_map()
                ),
                static_cost=conflict_cost(
                    profiled_graph, static_allocation.index_map()
                ),
            )
        )
    return rows


def format_static_compare(rows: Sequence[StaticCompareRow]) -> str:
    def fmt_ratio(value: Optional[float]) -> str:
        return "n/a" if value is None else f"{value:.2f}"

    return render_table(
        [
            "benchmark", "branches", "conventional", "profiled",
            "static", "static/prof", "vs conv",
        ],
        [
            (
                r.benchmark,
                r.static_branches,
                r.conventional,
                r.profiled_cost,
                r.static_cost,
                fmt_ratio(r.ratio),
                fmt_ratio(r.vs_conventional),
            )
            for r in rows
        ],
        title=(
            "Static-estimated vs profiled allocation "
            f"(conflict cost on the profiled graph, {rows[0].bht_size} "
            "BHT entries)" if rows else "Static-estimated vs profiled "
            "allocation"
        ),
    )


# --------------------------------------------------------------------------- #
# verify-static: heuristic directions and estimated graphs vs the profile
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class HeuristicScore:
    """Dynamic agreement for the branches one heuristic rule predicted.

    Attributes:
        heuristic: rule name from the catalogue (``loop-back``, ``guard``,
            ...).
        branches: profiled static branches this rule predicted.
        executions: their total dynamic executions.
        hits: expected dynamic hits — for each branch, executions times
            the fraction of instances that went the predicted way.
    """

    heuristic: str
    branches: int
    executions: int
    hits: float

    @property
    def hit_rate(self) -> Optional[float]:
        """Dynamic-weighted hit rate (None when the rule never fired)."""
        if self.executions == 0:
            return None
        return self.hits / self.executions

    def as_dict(self) -> Dict[str, Any]:
        return {
            "heuristic": self.heuristic,
            "branches": self.branches,
            "executions": self.executions,
            "hits": self.hits,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True)
class VerifyStaticRow:
    """One benchmark's static-vs-dynamic verification scores.

    Direction scores cover the *profiled* branches (those that executed
    at least once); working-set and edge scores compare the estimated
    conflict graph with the measured one at the same edge threshold.
    """

    benchmark: str
    threshold: int
    static_branches: int      # branches the heuristics predicted
    profiled_branches: int    # branches that executed dynamically
    covered_branches: int     # intersection of the two
    executions: int           # dynamic executions of covered branches
    hits: float               # expected dynamic hits over those
    majority_correct: int     # covered branches matching majority behaviour
    heuristics: Tuple[HeuristicScore, ...]
    predicted_sets: int
    measured_sets: int
    predicted_largest: int
    measured_largest: int
    predicted_avg_size: float
    measured_avg_size: float
    predicted_edges: int
    measured_edges: int
    common_edges: int         # predicted edges the profile confirmed

    @property
    def hit_rate(self) -> Optional[float]:
        """Dynamic-weighted direction hit rate over covered branches."""
        if self.executions == 0:
            return None
        return self.hits / self.executions

    @property
    def majority_rate(self) -> Optional[float]:
        """Fraction of covered branches whose predicted direction matches
        the branch's dynamic majority direction (unweighted)."""
        if self.covered_branches == 0:
            return None
        return self.majority_correct / self.covered_branches

    @property
    def edge_precision(self) -> Optional[float]:
        """Fraction of predicted conflict edges the profile confirmed."""
        if self.predicted_edges == 0:
            return None
        return self.common_edges / self.predicted_edges

    @property
    def edge_recall(self) -> Optional[float]:
        """Fraction of measured conflict edges the estimate predicted."""
        if self.measured_edges == 0:
            return None
        return self.common_edges / self.measured_edges

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (for the CLI envelope)."""
        return {
            "benchmark": self.benchmark,
            "threshold": self.threshold,
            "static_branches": self.static_branches,
            "profiled_branches": self.profiled_branches,
            "covered_branches": self.covered_branches,
            "executions": self.executions,
            "hits": self.hits,
            "hit_rate": self.hit_rate,
            "majority_correct": self.majority_correct,
            "majority_rate": self.majority_rate,
            "heuristics": [h.as_dict() for h in self.heuristics],
            "working_sets": {
                "predicted_sets": self.predicted_sets,
                "measured_sets": self.measured_sets,
                "predicted_largest": self.predicted_largest,
                "measured_largest": self.measured_largest,
                "predicted_avg_size": self.predicted_avg_size,
                "measured_avg_size": self.measured_avg_size,
            },
            "edges": {
                "predicted": self.predicted_edges,
                "measured": self.measured_edges,
                "common": self.common_edges,
                "precision": self.edge_precision,
                "recall": self.edge_recall,
            },
        }


def _edge_set(graph: ConflictGraph) -> Set[Tuple[int, int]]:
    return {(a, b) if a <= b else (b, a) for a, b, _ in graph.edges()}


def run_verify_static(
    runner: BenchmarkRunner,
    benchmarks: Optional[Sequence[str]] = None,
    threshold: Optional[int] = None,
) -> List[VerifyStaticRow]:
    """Score the static analyses against measured profiles.

    For every benchmark: build the program, predict branch directions
    (Ball–Larus heuristics) and the conflict graph (trip-weighted loop
    estimator), then profile the same build and measure how often the
    directions agreed with the dynamic outcome and how closely the
    estimated graph's working-set structure tracks the measured one.

    Args:
        runner: benchmark runner (supplies the profiled ground truth).
        benchmarks: analogs to cover (None = the registry's ``all`` set).
        threshold: edge threshold for both graphs (None = the
            static-compare auto rule for the runner's scale).
    """
    if benchmarks is None:
        benchmarks = shard_subset(runner, members("all"))
    if threshold is None:
        edge_threshold = DEFAULT_THRESHOLD if runner.scale >= 0.9 else 10
    else:
        edge_threshold = threshold
    prefetch_artifacts(runner, benchmarks)
    rows: List[VerifyStaticRow] = []
    for name in surviving_benchmarks(runner, benchmarks):
        built = build_workload(get_benchmark(name, scale=runner.scale))
        estimate = StaticConflictEstimator(
            threshold=edge_threshold
        ).estimate(built.program)
        predictions = predict_branches(estimate.cfg)
        profile = runner.profile(name)

        executions = 0
        hits = 0.0
        covered = 0
        majority = 0
        by_rule: Dict[str, List[float]] = {}
        for pc, stats in profile.branches.items():
            prediction = predictions.get(pc)
            if prediction is None or stats.executions == 0:
                continue
            covered += 1
            executions += stats.executions
            rate = stats.taken_rate
            agreement = rate if prediction.taken else 1.0 - rate
            hits += stats.executions * agreement
            if prediction.taken == (rate >= 0.5):
                majority += 1
            bucket = by_rule.setdefault(prediction.heuristic, [0, 0, 0.0])
            bucket[0] += 1
            bucket[1] += stats.executions
            bucket[2] += stats.executions * agreement

        measured_graph = build_conflict_graph(
            profile, threshold=edge_threshold
        )
        predicted_partition = partition_working_sets(estimate.graph)
        measured_partition = partition_working_sets(measured_graph)
        predicted_edges = _edge_set(estimate.graph)
        measured_edges = _edge_set(measured_graph)

        rows.append(
            VerifyStaticRow(
                benchmark=name,
                threshold=edge_threshold,
                static_branches=len(predictions),
                profiled_branches=sum(
                    1 for s in profile.branches.values() if s.executions
                ),
                covered_branches=covered,
                executions=executions,
                hits=hits,
                majority_correct=majority,
                heuristics=tuple(
                    HeuristicScore(
                        heuristic=rule,
                        branches=int(count),
                        executions=int(execs),
                        hits=rule_hits,
                    )
                    for rule, (count, execs, rule_hits) in sorted(
                        by_rule.items(), key=lambda kv: (-kv[1][1], kv[0])
                    )
                ),
                predicted_sets=predicted_partition.count,
                measured_sets=measured_partition.count,
                predicted_largest=predicted_partition.largest_size,
                measured_largest=measured_partition.largest_size,
                predicted_avg_size=predicted_partition.average_static_size,
                measured_avg_size=measured_partition.average_static_size,
                predicted_edges=len(predicted_edges),
                measured_edges=len(measured_edges),
                common_edges=len(predicted_edges & measured_edges),
            )
        )
    return rows


def format_verify_static(rows: Sequence[VerifyStaticRow]) -> str:
    """Render the verification table plus the suite-wide summary line."""
    def pct(value: Optional[float]) -> str:
        return "n/a" if value is None else f"{value:.1%}"

    table = render_table(
        [
            "benchmark", "branches", "hit rate", "majority",
            "sets p/m", "largest p/m", "edge prec", "edge rec",
        ],
        [
            (
                r.benchmark,
                f"{r.covered_branches}/{r.profiled_branches}",
                pct(r.hit_rate),
                pct(r.majority_rate),
                f"{r.predicted_sets}/{r.measured_sets}",
                f"{r.predicted_largest}/{r.measured_largest}",
                pct(r.edge_precision),
                pct(r.edge_recall),
            )
            for r in rows
        ],
        title=(
            "Static-vs-dynamic verification (heuristic directions and "
            f"estimated conflict graphs, threshold {rows[0].threshold})"
            if rows else "Static-vs-dynamic verification"
        ),
    )
    total_exec = sum(r.executions for r in rows)
    total_hits = sum(r.hits for r in rows)
    if total_exec:
        table += (
            f"\nsuite dynamic hit rate: {total_hits / total_exec:.1%} "
            f"over {total_exec} branch executions"
        )
    return table
