"""Group-level branch allocation (the §6 extension, end to end).

Pipeline: classify/group branches -> fold the interleave profile to group
granularity -> colour the *group* conflict graph -> expand the group
assignment back to a per-branch :class:`~repro.predictors.indexing.
StaticIndexMap` -> simulate a PAg against it.

Because a group shares one BHT entry by construction, grouping trades
intra-group history sharing (harmless if the grouping is good) for a
smaller colouring problem — the generic form of what §5.2's two reserved
entries do for biased branches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..allocation.allocator import BranchAllocator
from ..allocation.coloring import color_graph
from ..analysis.conflict_graph import DEFAULT_THRESHOLD, build_conflict_graph
from ..analysis.groups import (
    Grouping,
    expand_group_assignment,
    fold_profile,
    group_by_bias,
    group_by_history_pattern,
)
from ..predictors.indexing import PCModuloIndex, StaticIndexMap
from ..predictors.simulator import simulate_predictor
from ..predictors.twolevel import PAgPredictor
from ..profiling.profile import InterleaveProfile
from ..trace.events import BranchTrace
from .engine import prefetch_artifacts
from .report import render_table
from .runner import BenchmarkRunner


@dataclass(frozen=True)
class GroupAllocationResult:
    """Outcome of one group-level allocation.

    Attributes:
        grouping: the branch -> group mapping used.
        group_count: number of groups (colouring problem size).
        assignment: expanded branch PC -> BHT entry map.
        bht_size: entries made available.
        cost: same-entry conflict weight on the folded graph.
    """

    grouping: Grouping
    group_count: int
    assignment: Dict[int, int]
    bht_size: int
    cost: int

    def index_map(self) -> StaticIndexMap:
        """Predictor-facing index function (PC-modulo fallback)."""
        return StaticIndexMap(
            self.bht_size,
            self.assignment,
            fallback=PCModuloIndex(self.bht_size),
        )


def allocate_groups(
    profile: InterleaveProfile,
    grouping: Grouping,
    bht_size: int,
    threshold: int = DEFAULT_THRESHOLD,
) -> GroupAllocationResult:
    """Colour the group-level conflict graph and expand to branches."""
    folded = fold_profile(profile, grouping)
    graph = build_conflict_graph(folded, threshold=threshold)
    coloring = color_graph(graph, bht_size)
    assignment = expand_group_assignment(coloring.assignment, grouping)
    return GroupAllocationResult(
        grouping=grouping,
        group_count=folded.static_branch_count,
        assignment=assignment,
        bht_size=bht_size,
        cost=coloring.cost,
    )


@dataclass(frozen=True)
class GroupAblationRow:
    """Per-benchmark comparison of grouping strategies at one BHT size."""

    benchmark: str
    bht_size: int
    branch_mispredict: float    # plain per-branch allocation
    bias_groups: int
    bias_mispredict: float      # bias-class grouping
    pattern_groups: int
    pattern_mispredict: float   # periodic-history grouping
    conventional: float


def run_group_ablation(
    runner: BenchmarkRunner,
    benchmarks: Sequence[str],
    bht_size: int = 128,
    threshold: int = DEFAULT_THRESHOLD,
    history_bits: int = 12,
) -> List[GroupAblationRow]:
    """Compare per-branch vs group-level allocation on prediction accuracy."""
    prefetch_artifacts(runner, benchmarks)
    rows: List[GroupAblationRow] = []
    for name in benchmarks:
        artifacts = runner.artifacts(name)
        trace, profile = artifacts.trace, artifacts.profile

        def rate(index_map: Optional[StaticIndexMap]) -> float:
            if index_map is None:
                predictor = PAgPredictor.conventional(bht_size, history_bits)
            else:
                predictor = PAgPredictor.allocated(index_map, history_bits)
            return simulate_predictor(
                predictor, trace, track_per_branch=False
            ).misprediction_rate

        plain = BranchAllocator(profile, threshold=threshold)
        bias = allocate_groups(
            profile, group_by_bias(profile), bht_size, threshold
        )
        pattern = allocate_groups(
            profile,
            group_by_history_pattern(trace),
            bht_size,
            threshold,
        )
        rows.append(
            GroupAblationRow(
                benchmark=name,
                bht_size=bht_size,
                branch_mispredict=rate(
                    plain.allocate(bht_size).index_map()
                ),
                bias_groups=bias.group_count,
                bias_mispredict=rate(bias.index_map()),
                pattern_groups=pattern.group_count,
                pattern_mispredict=rate(pattern.index_map()),
                conventional=rate(None),
            )
        )
    return rows


def format_group_ablation(rows: Sequence[GroupAblationRow]) -> str:
    if not rows:
        return "(no results)"
    size = rows[0].bht_size
    return render_table(
        [
            "benchmark",
            "per-branch",
            "bias groups",
            "bias-grouped",
            "pattern groups",
            "pattern-grouped",
            f"conv@{size}",
        ],
        [
            (
                r.benchmark,
                f"{r.branch_mispredict*100:.2f}%",
                r.bias_groups,
                f"{r.bias_mispredict*100:.2f}%",
                r.pattern_groups,
                f"{r.pattern_mispredict*100:.2f}%",
                f"{r.conventional*100:.2f}%",
            )
            for r in rows
        ],
        title=f"Ablation: group-level allocation at {size}-entry BHT "
        "(paper §6 extension)",
    )
