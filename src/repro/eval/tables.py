"""Table experiments (paper Tables 1–4).

Each ``run_tableN`` function regenerates the corresponding paper table over
the analog suite, returning typed rows plus helpers for rendering.  Absolute
values live in a different regime than the paper's 500M-instruction SPEC
runs; EXPERIMENTS.md records the per-claim qualitative comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..allocation.allocator import BranchAllocator
from ..allocation.classified import ClassifiedBranchAllocator, RESERVED_ENTRIES
from ..allocation.conflict_cost import conventional_cost
from ..allocation.sizing import required_bht_size
from ..analysis.conflict_graph import DEFAULT_THRESHOLD
from ..analysis.metrics import working_set_metrics
from ..trace.stats import summarize_trace
from ..workloads.registry import members
from ..workloads.suite import benchmark_suite
from .engine import prefetch_artifacts, shard_subset, surviving_benchmarks
from .report import render_table
from .runner import BenchmarkRunner

#: Conventional reference BHT size used throughout §5.
BASELINE_BHT = 1024


# --------------------------------------------------------------------------- #
# Table 1 — benchmarks, input sets, fraction of dynamic branches analyzed
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Table1Row:
    benchmark: str
    input_set: str
    total_dynamic: int
    analyzed_dynamic: int
    percent_analyzed: float
    static_branches: int
    analyzed_static: int


def run_table1(
    runner: BenchmarkRunner,
    benchmarks: Optional[Sequence[str]] = None,
    coverage: float = 0.999,
) -> List[Table1Row]:
    """Regenerate Table 1: trace sizes and the frequency-cutoff coverage."""
    if benchmarks:
        names = list(benchmarks)
    else:
        # default set: a sharded runner covers only its slice
        names = shard_subset(runner, members("table2"))
    prefetch_artifacts(runner, names)
    names = surviving_benchmarks(runner, names)
    suite = benchmark_suite(runner.scale)
    rows: List[Table1Row] = []
    for name in names:
        artifacts = runner.artifacts(name)
        summary = summarize_trace(artifacts.trace, coverage=coverage)
        spec = suite.get(name) or suite.get(f"{name}_a")
        input_desc = (
            f"{spec.input.kind}/{spec.input.size}B/seed{spec.input.seed}"
            if spec
            else "?"
        )
        rows.append(
            Table1Row(
                benchmark=name,
                input_set=input_desc,
                total_dynamic=summary.total_dynamic,
                analyzed_dynamic=summary.analyzed_dynamic,
                percent_analyzed=summary.percent_analyzed,
                static_branches=summary.total_static,
                analyzed_static=summary.analyzed_static,
            )
        )
    return rows


def format_table1(rows: Sequence[Table1Row]) -> str:
    return render_table(
        [
            "benchmark",
            "input set",
            "dynamic branches",
            "analyzed",
            "% analyzed",
            "statics",
            "kept",
        ],
        [
            (
                r.benchmark,
                r.input_set,
                r.total_dynamic,
                r.analyzed_dynamic,
                f"{r.percent_analyzed:.2f}%",
                r.static_branches,
                r.analyzed_static,
            )
            for r in rows
        ],
        title="Table 1: benchmarks, input sets, dynamic branches analyzed",
    )


# --------------------------------------------------------------------------- #
# Table 2 — working-set counts and sizes
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Table2Row:
    benchmark: str
    total_sets: int
    average_static_size: float
    average_dynamic_size: float
    largest_size: int
    static_branches: int


def run_table2(
    runner: BenchmarkRunner,
    benchmarks: Optional[Sequence[str]] = None,
    threshold: int = DEFAULT_THRESHOLD,
) -> List[Table2Row]:
    """Regenerate Table 2: the branch working set statistics."""
    if benchmarks:
        names = list(benchmarks)
    else:
        # default set: a sharded runner covers only its slice
        names = shard_subset(runner, members("table2"))
    prefetch_artifacts(runner, names)
    names = surviving_benchmarks(runner, names)
    rows: List[Table2Row] = []
    for name in names:
        profile = runner.profile(name)
        metrics = working_set_metrics(profile, threshold=threshold)
        rows.append(
            Table2Row(
                benchmark=name,
                total_sets=metrics.total_sets,
                average_static_size=metrics.average_static_size,
                average_dynamic_size=metrics.average_dynamic_size,
                largest_size=metrics.largest_size,
                static_branches=metrics.static_branches,
            )
        )
    return rows


def format_table2(rows: Sequence[Table2Row]) -> str:
    return render_table(
        [
            "benchmark",
            "working sets",
            "avg static size",
            "avg dynamic size",
            "largest",
            "statics",
        ],
        [
            (
                r.benchmark,
                r.total_sets,
                f"{r.average_static_size:.1f}",
                f"{r.average_dynamic_size:.1f}",
                r.largest_size,
                r.static_branches,
            )
            for r in rows
        ],
        title="Table 2: sizes of branch working sets "
        f"(threshold={DEFAULT_THRESHOLD})",
    )


# --------------------------------------------------------------------------- #
# Tables 3 & 4 — BHT size required by branch allocation
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class SizingRow:
    benchmark: str
    required_size: int
    baseline_cost: int
    achieved_cost: int
    static_branches: int


def run_table3(
    runner: BenchmarkRunner,
    benchmarks: Optional[Sequence[str]] = None,
    threshold: int = DEFAULT_THRESHOLD,
    baseline_bht: int = BASELINE_BHT,
) -> List[SizingRow]:
    """Regenerate Table 3: minimal BHT size for plain branch allocation."""
    if benchmarks:
        names = list(benchmarks)
    else:
        # default set: a sharded runner covers only its slice
        names = shard_subset(runner, members("table34"))
    prefetch_artifacts(runner, names)
    names = surviving_benchmarks(runner, names)
    rows: List[SizingRow] = []
    for name in names:
        profile = runner.profile(name)
        allocator = BranchAllocator(profile, threshold=threshold)
        baseline = conventional_cost(allocator.graph, baseline_bht)
        sizing = required_bht_size(allocator, baseline)
        rows.append(
            SizingRow(
                benchmark=name,
                required_size=sizing.required_size,
                baseline_cost=sizing.baseline_cost,
                achieved_cost=sizing.achieved_cost,
                static_branches=profile.static_branch_count,
            )
        )
    return rows


def run_table4(
    runner: BenchmarkRunner,
    benchmarks: Optional[Sequence[str]] = None,
    threshold: int = DEFAULT_THRESHOLD,
    baseline_bht: int = BASELINE_BHT,
) -> List[SizingRow]:
    """Regenerate Table 4: minimal BHT size with branch classification.

    The baseline is the same conventional 1024-entry PC-indexed
    configuration as Table 3, measured on the *unfiltered* conflict graph;
    the classified allocator's cost is measured on its filtered graph, per
    the paper's premise that same-class biased conflicts are harmless.
    """
    if benchmarks:
        names = list(benchmarks)
    else:
        # default set: a sharded runner covers only its slice
        names = shard_subset(runner, members("table34"))
    prefetch_artifacts(runner, names)
    names = surviving_benchmarks(runner, names)
    rows: List[SizingRow] = []
    for name in names:
        profile = runner.profile(name)
        plain = BranchAllocator(profile, threshold=threshold)
        baseline = conventional_cost(plain.graph, baseline_bht)
        allocator = ClassifiedBranchAllocator(profile, threshold=threshold)
        sizing = required_bht_size(
            allocator, baseline, min_size=RESERVED_ENTRIES + 1
        )
        rows.append(
            SizingRow(
                benchmark=name,
                required_size=sizing.required_size,
                baseline_cost=sizing.baseline_cost,
                achieved_cost=sizing.achieved_cost,
                static_branches=profile.static_branch_count,
            )
        )
    return rows


def format_sizing_table(
    rows: Sequence[SizingRow], table_name: str, detail: str
) -> str:
    return render_table(
        ["benchmark", "BHT size required", "baseline cost", "achieved cost"],
        [
            (r.benchmark, r.required_size, r.baseline_cost, r.achieved_cost)
            for r in rows
        ],
        title=f"{table_name}: BHT size required for branch allocation {detail}",
    )


def reduction_summary(
    table3: Sequence[SizingRow], table4: Sequence[SizingRow]
) -> Tuple[float, float]:
    """Mean BHT-size reduction vs the 1024-entry baseline for both tables.

    The paper's conclusion quotes 60–80% (plain) and up to 97%
    (classified).
    """
    def mean_reduction(rows: Sequence[SizingRow]) -> float:
        if not rows:
            return 0.0
        return sum(
            1.0 - r.required_size / BASELINE_BHT for r in rows
        ) / len(rows)

    return mean_reduction(table3), mean_reduction(table4)
