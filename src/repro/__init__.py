"""repro — reproduction of Kim & Tyson, *Analyzing the Working Set
Characteristics of Branch Execution* (MICRO 1998).

The package is organised bottom-up:

* substrates: :mod:`repro.isa`, :mod:`repro.asm`, :mod:`repro.sim`,
  :mod:`repro.trace`, :mod:`repro.workloads` — a miniature RISC toolchain
  and benchmark suite standing in for SimpleScalar + SPECint95;
* the paper's contribution: :mod:`repro.profiling` (time-stamp interleave
  analysis), :mod:`repro.analysis` (conflict graph + working sets),
  :mod:`repro.allocation` (graph-colouring branch allocation);
* :mod:`repro.predictors` — the 2-level predictor family (PAg et al.);
* :mod:`repro.pipeline` — the columnar event bus fusing simulate →
  profile → predict into one pass (see docs/PIPELINE.md);
* :mod:`repro.static_analysis` — CFG, dominators, natural loops, a
  profile-free conflict-graph estimator, and an assembly linter;
* :mod:`repro.eval` — regenerates every table and figure in the paper,
  via :class:`~repro.eval.engine.ExecutionEngine`: a process-pool
  evaluation engine over a content-addressed artifact store (see
  docs/EVAL.md).

Quick start::

    from repro import BenchmarkRunner, run_experiment

    runner = BenchmarkRunner(scale=0.2, cache_dir=".cache", jobs=4)
    print(run_experiment("table2", runner))
    print(runner.stats.render())  # per-job timing + cache hit/miss

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .allocation import (
    AllocationResult,
    BranchAllocator,
    ClassifiedBranchAllocator,
    conflict_cost,
    conventional_cost,
    required_bht_size,
)
from .analysis import (
    BiasClass,
    ClassificationBounds,
    ConflictGraph,
    WorkingSetPartition,
    build_conflict_graph,
    classify_profile,
    partition_working_sets,
    working_set_metrics,
)
from .eval import (
    ArtifactStore,
    BenchmarkRunner,
    ExecutionEngine,
    RunArtifacts,
    run_all_experiments,
    run_experiment,
)
from .predictors import (
    InterferenceFreePAg,
    PAgPredictor,
    PCModuloIndex,
    StaticIndexMap,
    simulate_predictor,
)
from .profiling import (
    InterleaveAnalyzer,
    InterleaveProfile,
    merge_profiles,
    profile_trace,
)
from .static_analysis import (
    StaticConflictEstimator,
    build_cfg,
    estimate_conflict_graph,
    find_loops,
    lint_program,
    lint_source,
)
from .pipeline import (
    BranchEventBus,
    InterleaveConsumer,
    PredictorConsumer,
    TraceBuilder,
    replay_bank,
)
from .trace import BranchTrace, TraceCapture, make_phased_workload
from .workloads import benchmark_suite, build_workload, run_workload

__version__ = "1.0.0"

__all__ = [
    "AllocationResult",
    "ArtifactStore",
    "BenchmarkRunner",
    "BiasClass",
    "BranchAllocator",
    "BranchEventBus",
    "BranchTrace",
    "ClassificationBounds",
    "ClassifiedBranchAllocator",
    "ConflictGraph",
    "ExecutionEngine",
    "InterferenceFreePAg",
    "InterleaveAnalyzer",
    "InterleaveConsumer",
    "InterleaveProfile",
    "PAgPredictor",
    "PCModuloIndex",
    "PredictorConsumer",
    "RunArtifacts",
    "StaticConflictEstimator",
    "StaticIndexMap",
    "TraceBuilder",
    "TraceCapture",
    "WorkingSetPartition",
    "__version__",
    "benchmark_suite",
    "build_cfg",
    "build_conflict_graph",
    "build_workload",
    "classify_profile",
    "conflict_cost",
    "conventional_cost",
    "estimate_conflict_graph",
    "find_loops",
    "lint_program",
    "lint_source",
    "make_phased_workload",
    "merge_profiles",
    "partition_working_sets",
    "profile_trace",
    "replay_bank",
    "required_bht_size",
    "run_all_experiments",
    "run_experiment",
    "run_workload",
    "simulate_predictor",
    "working_set_metrics",
]
