"""The checkpointed simulation loop.

:func:`run_simulation` replaces the one-shot
:func:`~repro.workloads.build.run_workload` call inside engine jobs.  It
executes the same program with the same bus, but drives the interpreter
in *fuel slices* so there are periodic quiesced points — the executor
syncs ``state.pc`` and its retired-instruction counter only when
``Executor.run`` returns, so a checkpoint taken mid-hook would capture a
stale machine.  Between slices the simulation is exactly restorable.

A checkpoint is written whenever at least ``every_events`` new branch
events have accumulated since the last one (measured on the bus, which
counts every dynamic conditional branch).  On start-up the latest valid
checkpoint for the job's stem is restored — machine, memory,
environment, executor counters, the bus's staged partial chunk, and all
consumer state — so the resumed run replays **zero** events and its
chunk boundaries, profiles and traces are byte-identical to an
uninterrupted run's.

Slicing is semantically free: ``Executor.run`` accumulates counters
across calls and raises :class:`~repro.sim.executor.FuelExhausted`
whenever a (slice) budget runs out, which the loop treats as "slice
over" until the overall fuel is spent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..sim.executor import FuelExhausted
from ..sim.machine import RunResult, Simulator
from ..workloads.build import BuiltWorkload
from .snapshot import (
    restore_bus,
    restore_simulator,
    snapshot_bus,
    snapshot_simulator,
)
from .store import CheckpointStore

#: Default instructions per executor slice.  Small enough that the
#: event-count checkpoint trigger and fault hooks are checked with fine
#: granularity, large enough that the per-slice Python call overhead is
#: noise against the interpreter's per-instruction cost.
DEFAULT_SLICE_INSTRUCTIONS = 1 << 16

#: Floor for auto-derived slice budgets, so a tiny ``every_events`` cannot
#: degenerate into per-instruction Python dispatch.
MIN_SLICE_INSTRUCTIONS = 1 << 10


def slice_for_cadence(every_events: int) -> int:
    """Instructions per slice for a checkpoint cadence of *every_events*.

    Checkpoints (and fault hooks) only fire **between** slices, so the
    slice budget bounds the achievable cadence: a 64 Ki-instruction slice
    in a branch-dense workload can cross several thousand events at once,
    silently coarsening a small ``every_events``.  Workloads here run
    4-10 instructions per conditional branch, so ``every_events * 4``
    instructions keeps slice boundaries at or below the requested event
    cadence while staying well above the per-slice call overhead floor.
    """
    return max(
        MIN_SLICE_INSTRUCTIONS,
        min(DEFAULT_SLICE_INSTRUCTIONS, every_events * 4),
    )


@dataclass(frozen=True)
class CheckpointConfig:
    """Where and how often to checkpoint one simulation job.

    ``slice_instructions`` defaults to 0, meaning "derive from
    ``every_events``" via :func:`slice_for_cadence`.
    """

    store: CheckpointStore
    stem: str
    every_events: int
    slice_instructions: int = 0

    def __post_init__(self) -> None:
        if self.every_events < 1:
            raise ValueError(
                f"every_events must be >= 1, got {self.every_events}"
            )
        if self.slice_instructions < 0:
            raise ValueError(
                "slice_instructions must be >= 0 (0 = auto), got "
                f"{self.slice_instructions}"
            )
        if self.slice_instructions == 0:
            object.__setattr__(
                self, "slice_instructions",
                slice_for_cadence(self.every_events),
            )


@dataclass
class SimulationOutcome:
    """One job's run result plus its checkpoint/resume provenance."""

    result: RunResult
    checkpoints_written: int = 0
    resumed_from_checkpoint: bool = False
    resumed_events: int = 0
    resumed_instructions: int = 0
    corrupt_checkpoints: int = 0
    #: True when ``stop_check`` ended the run early (drain): the result
    #: is a mid-run state whose progress lives in the final checkpoint,
    #: not a finished simulation.
    interrupted: bool = False


def _run_result(sim: Simulator) -> RunResult:
    return RunResult(
        instructions=sim.executor.instruction_count,
        conditional_branches=sim.executor.conditional_branch_count,
        taken_branches=sim.executor.taken_branch_count,
        halted=sim.state.halted,
        exit_code=sim.state.exit_code,
        output=bytes(sim.environment.output),
    )


def run_simulation(
    built: BuiltWorkload,
    bus: Any,
    config: Optional[CheckpointConfig] = None,
    max_instructions: int = 0,
    fault_plan: Optional[Any] = None,
    benchmark: str = "",
    in_worker: bool = False,
    backend: Optional[Any] = None,
    stop_check: Optional[Callable[[], bool]] = None,
    progress: Optional[Callable[[int], None]] = None,
) -> SimulationOutcome:
    """Simulate *built* through *bus*, checkpointing and resuming.

    Args:
        built: the assembled workload.
        bus: the simulator branch hook (normally a
            :class:`~repro.pipeline.bus.BranchEventBus`); the caller
            finishes it and reads consumer results afterwards.
        config: checkpoint store/stem/cadence; None disables
            checkpointing entirely (single executor slice, exactly the
            historical ``run_workload`` behaviour).
        max_instructions: fuel limit; 0 uses the spec's budget.
        fault_plan: optional fault-injection plan; its ``on_events``
            hook fires after every slice with the bus's live event
            count (the ``worker_kill`` fault mode).
        benchmark: benchmark tag passed to fault hooks.
        in_worker: whether this runs in a sacrificial worker process.
        backend: simulation backend name or instance; backends are
            byte-compatible, so a checkpoint written by one can be
            resumed by another.
        stop_check: polled between slices (SIGTERM drain); when it
            returns True the loop writes one final checkpoint —
            regardless of cadence — and returns with
            ``outcome.interrupted`` set, so a drained job loses zero
            progress and the next run resumes exactly here.
        progress: called after every slice with the bus's live branch
            event count — the liveness side-channel supervised shard
            workers use to refresh heartbeat leases and store claims.
            Exceptions propagate (a progress hook that raises is a bug
            or an injected fault, never swallowed).

    Truncation by fuel is normal (mirrors ``run_workload``): the outcome
    result reports ``halted=False`` rather than raising.
    """
    fuel = max_instructions or built.spec.fuel
    sim = Simulator(
        built.program,
        input_data=built.input_data,
        branch_hook=bus,
        random_seed=built.spec.random_seed,
        backend=backend,
    )
    outcome = SimulationOutcome(result=_run_result(sim))
    next_seq = 1
    last_checkpoint_events = 0

    if config is not None:
        loaded = config.store.load_latest(config.stem)
        outcome.corrupt_checkpoints = len(config.store.corrupt_events)
        if loaded is not None:
            header, payload = loaded
            try:
                restore_simulator(sim, payload["sim"])
                restore_bus(bus, payload["bus"])
            except Exception as exc:
                # Verified container but unrestorable content (e.g. the
                # bus consumer set changed): quarantine and cold-start.
                config.store.quarantine(
                    config.stem,
                    int(header["seq"]),
                    f"restore failed: {type(exc).__name__}: {exc}",
                )
                outcome.corrupt_checkpoints += 1
                sim = Simulator(
                    built.program,
                    input_data=built.input_data,
                    branch_hook=bus,
                    random_seed=built.spec.random_seed,
                    backend=backend,
                )
            else:
                outcome.resumed_from_checkpoint = True
                outcome.resumed_events = bus.stats.events
                outcome.resumed_instructions = sim.executor.instruction_count
                next_seq = int(header["seq"]) + 1
                last_checkpoint_events = bus.stats.events

    slice_budget = (
        config.slice_instructions if config is not None else fuel
    )
    remaining = fuel - sim.executor.instruction_count
    while not sim.state.halted and remaining > 0:
        try:
            sim.executor.run(min(slice_budget, remaining))
        except FuelExhausted:
            pass  # slice budget spent; the loop decides whether to go on
        remaining = fuel - sim.executor.instruction_count
        if fault_plan is not None:
            fault_plan.on_events(benchmark, bus.stats.events, in_worker)
        if progress is not None:
            progress(bus.stats.events)
        stopping = (
            stop_check is not None
            and not sim.state.halted
            and remaining > 0
            and stop_check()
        )
        if (
            config is not None
            and not sim.state.halted
            and remaining > 0
            and (
                stopping
                or bus.stats.events - last_checkpoint_events
                >= config.every_events
            )
        ):
            payload = {
                "sim": snapshot_simulator(sim),
                "bus": snapshot_bus(bus),
            }
            meta: Dict[str, object] = {
                "benchmark": benchmark,
                "events": bus.stats.events,
                "instructions": sim.executor.instruction_count,
            }
            config.store.put(config.stem, next_seq, payload, meta)
            next_seq += 1
            outcome.checkpoints_written += 1
            last_checkpoint_events = bus.stats.events
        if stopping:
            outcome.interrupted = True
            break

    outcome.result = _run_result(sim)
    return outcome


__all__ = [
    "CheckpointConfig",
    "DEFAULT_SLICE_INSTRUCTIONS",
    "SimulationOutcome",
    "run_simulation",
]
