"""Bit-exact snapshot/restore of a quiesced simulation.

A snapshot is taken *between* executor slices — never from inside the
branch hook, where the interpreter's program counter and retired-count
live in loop locals and the object-visible state is stale.  At a slice
boundary :meth:`~repro.sim.executor.Executor.run` has synced ``state.pc``
and ``instruction_count``, so the pair of dicts produced here
(:func:`snapshot_simulator` + :func:`snapshot_bus`) is the *complete*
run state: restoring both into freshly-constructed objects and
continuing execution retires exactly the instruction the original
process would have retired next.

Snapshots are plain picklable dicts of plain data (lists, bytes, numpy
arrays) — views over live state, serialised by the checkpoint store at
``put`` time.  Take the snapshot and hand it to the store before running
the next slice.

Bus consumers participate through an optional hook pair::

    def snapshot_state(self) -> object: ...
    def restore_state(self, state: object) -> None: ...

All built-in consumers (:class:`~repro.pipeline.consumers.
InterleaveConsumer`, ``PredictorConsumer``, ``TraceBuilder``,
``TraceStatsConsumer``) implement it.  A consumer without the hooks
falls back to snapshotting its instance ``__dict__`` wholesale, which is
correct for any consumer whose state is picklable attributes.
"""

from __future__ import annotations

from typing import Any, Dict

from ..errors import CheckpointCorrupt
from ..pipeline.bus import BranchEventBus
from ..sim.machine import Simulator

#: tag for the instance-``__dict__`` fallback consumer snapshot.
_VARS_TAG = "__vars__"
#: tag for hook-based consumer snapshots.
_HOOK_TAG = "__hook__"


# -- simulator ---------------------------------------------------------------


def snapshot_simulator(sim: Simulator) -> Dict[str, Any]:
    """Capture machine, memory, environment and executor counters.

    The program image itself is *not* captured — a restore target is
    constructed from the same :class:`~repro.workloads.build.
    BuiltWorkload`, and the checkpoint store keys files by the job's
    content digest so a program edit orphans old checkpoints instead of
    restoring the wrong memory image onto new code.
    """
    state = sim.state
    env = sim.environment
    executor = sim.executor
    return {
        "regs": list(state.regs),
        "pc": state.pc,
        "halted": state.halted,
        "exit_code": state.exit_code,
        "pages": {
            number: bytes(page)
            for number, page in state.memory._pages.items()
        },
        "env": {
            "cursor": env.cursor,
            "output": bytes(env.output),
            "rng": env._rng_state,
        },
        "executor": {
            "instructions": executor.instruction_count,
            "conditional_branches": executor.conditional_branch_count,
            "taken_branches": executor.taken_branch_count,
        },
    }


def restore_simulator(sim: Simulator, snap: Dict[str, Any]) -> None:
    """Overwrite a freshly-constructed simulator with snapshot state."""
    state = sim.state
    state.regs[:] = snap["regs"]
    state.pc = snap["pc"]
    state.halted = snap["halted"]
    state.exit_code = snap["exit_code"]
    state.memory._pages = {
        number: bytearray(page) for number, page in snap["pages"].items()
    }
    env = sim.environment
    env.cursor = snap["env"]["cursor"]
    env.output = bytearray(snap["env"]["output"])
    env._rng_state = snap["env"]["rng"]
    executor = sim.executor
    executor.instruction_count = snap["executor"]["instructions"]
    executor.conditional_branch_count = snap["executor"][
        "conditional_branches"
    ]
    executor.taken_branch_count = snap["executor"]["taken_branches"]


# -- bus + consumers ---------------------------------------------------------


def _snapshot_consumer(consumer: object) -> tuple:
    hook = getattr(consumer, "snapshot_state", None)
    if hook is not None:
        return (_HOOK_TAG, hook())
    return (_VARS_TAG, dict(vars(consumer)))


def _restore_consumer(consumer: object, tagged: tuple) -> None:
    tag, state = tagged
    if tag == _HOOK_TAG:
        consumer.restore_state(state)  # type: ignore[attr-defined]
    else:
        vars(consumer).clear()
        vars(consumer).update(state)


def snapshot_bus(bus: BranchEventBus) -> Dict[str, Any]:
    """Capture staged partial-chunk columns, counters and consumer state.

    The staged lists are snapshotted *without* flushing: forcing a flush
    at checkpoint time would shift every later chunk boundary, and
    chunk-boundary-sensitive consumer internals (e.g. the interleave
    analyzer's per-chunk insertion order) would then diverge from an
    uninterrupted run.  Snapshotting the partial chunk keeps a resumed
    run's chunk sequence — and therefore its artifacts — byte-identical.
    """
    stats = bus.stats
    return {
        "staged": (
            list(bus._pcs),
            list(bus._targets),
            list(bus._taken),
            list(bus._timestamps),
        ),
        "stats": {
            "events": stats.events,
            "delivered": stats.delivered,
            "chunk_flushes": stats.chunk_flushes,
            "truncated": stats.truncated,
            "consumers": {
                name: (c.chunks, c.events, c.seconds)
                for name, c in stats.consumers.items()
            },
        },
        "consumers": {
            name: _snapshot_consumer(consumer)
            for name, consumer in bus._consumers
        },
    }


def restore_bus(bus: BranchEventBus, snap: Dict[str, Any]) -> None:
    """Overwrite a freshly-constructed bus with snapshot state.

    The bus must carry the same consumer set (by name) the snapshot was
    taken from; a mismatch raises :class:`~repro.errors.CheckpointCorrupt`
    *before* touching any state, so the caller can quarantine the file
    and cold-start cleanly.
    """
    names = set(bus.consumer_names)
    snapped = set(snap["consumers"])
    if names != snapped:
        raise CheckpointCorrupt(
            "checkpoint consumer set does not match the bus",
            expected=sorted(names),
            found=sorted(snapped),
        )
    pcs, targets, taken, timestamps = snap["staged"]
    bus._pcs = list(pcs)
    bus._targets = list(targets)
    bus._taken = list(taken)
    bus._timestamps = list(timestamps)
    stats = bus.stats
    stats.events = snap["stats"]["events"]
    stats.delivered = snap["stats"]["delivered"]
    stats.chunk_flushes = snap["stats"]["chunk_flushes"]
    stats.truncated = snap["stats"]["truncated"]
    for name, (chunks, events, seconds) in snap["stats"][
        "consumers"
    ].items():
        counters = stats.consumer(name)
        counters.chunks = chunks
        counters.events = events
        counters.seconds = seconds
    for name, consumer in bus._consumers:
        _restore_consumer(consumer, snap["consumers"][name])


__all__ = [
    "restore_bus",
    "restore_simulator",
    "snapshot_bus",
    "snapshot_simulator",
]
