"""Crash-safe simulation checkpoints and the resumable suite journal.

The paper's profiles run to hundreds of millions of instructions per
benchmark; at that horizon a preempted or killed worker must not throw
the whole run away.  This package makes long simulations *resumable*
rather than merely retryable:

* :mod:`repro.checkpoint.snapshot` — bit-exact snapshot/restore of the
  simulator (:class:`~repro.sim.state.MachineState`, sparse memory,
  environment RNG/cursor, executor counters) and of every
  :class:`~repro.pipeline.bus.BranchEventBus` consumer (interleave
  recency state, predictor tables, trace chunk buffers, streaming
  stats) via the consumer snapshot hooks;
* :mod:`repro.checkpoint.store` — versioned, checksummed checkpoint
  files written with the same atomic staged-commit discipline as the
  artifact store; corrupt checkpoints are quarantined and readers fall
  back to the previous sequence number (then to a cold start);
* :mod:`repro.checkpoint.runner` — the sliced simulation loop that
  writes a checkpoint every ``checkpoint_every_events`` branch events
  and restores the latest valid one on restart, so a resumed run
  replays zero events and produces byte-identical artifacts;
* :mod:`repro.checkpoint.journal` — the append-only, fsynced
  ``journal.jsonl`` recording per-benchmark completion, so
  ``repro experiment --resume`` skips finished work even after the
  driver process itself died.

See ``docs/EVAL.md`` ("Checkpoint & resume") for file formats and
retention, and ``docs/PIPELINE.md`` for the consumer snapshot hooks.
"""

from .journal import JOURNAL_VERSION, RunJournal
from .runner import (
    DEFAULT_SLICE_INSTRUCTIONS,
    MIN_SLICE_INSTRUCTIONS,
    CheckpointConfig,
    SimulationOutcome,
    run_simulation,
    slice_for_cadence,
)
from .snapshot import (
    restore_bus,
    restore_simulator,
    snapshot_bus,
    snapshot_simulator,
)
from .store import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    CheckpointStore,
    prune_directory,
)

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CheckpointConfig",
    "CheckpointStore",
    "DEFAULT_SLICE_INSTRUCTIONS",
    "JOURNAL_VERSION",
    "MIN_SLICE_INSTRUCTIONS",
    "RunJournal",
    "SimulationOutcome",
    "prune_directory",
    "restore_bus",
    "restore_simulator",
    "run_simulation",
    "slice_for_cadence",
    "snapshot_bus",
    "snapshot_simulator",
]
