"""Versioned, checksummed, crash-safe checkpoint files.

One checkpoint file holds the complete mid-run state of one simulation
job (machine, environment, bus, consumers) at a quiesced point.  The
on-disk format is a self-describing container::

    RPROCKPT\\n                         magic (8 bytes + newline)
    {"version": 1, "seq": 3, ...}\\n    JSON header line
    <pickle payload>                   the snapshot object

The header carries the format version, the job stem, the sequence
number, provenance counters (events/instructions) and the SHA-256 and
length of the payload, so a reader can reject a truncated, torn or
bit-flipped file before unpickling a single byte.

Robustness mirrors :class:`~repro.eval.engine.ArtifactStore`:

* writes stage to a private temp file, fsync, then commit with one
  ``os.replace`` — a killed writer can never leave a torn checkpoint
  under the final name;
* reads verify magic, version, stem, length and checksum; *any* defect
  moves the file to ``<root>/quarantine/`` (bounded — old entries are
  pruned) and the loader falls back to the previous sequence number,
  then to a cold start;
* retention keeps only the newest ``keep`` sequence numbers per job, so
  long runs cannot fill the disk with history.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..errors import CheckpointCorrupt

#: Format magic; the trailing newline keeps the header greppable.
CHECKPOINT_MAGIC = b"RPROCKPT\n"

#: Bump on any backwards-incompatible change to the container or to the
#: snapshot payload layout.  Old-version files read as corrupt (they are
#: quarantined and the run cold-starts) rather than mis-restoring.
CHECKPOINT_VERSION = 1

#: Pickle protocol for payloads (stable, supports large numpy buffers).
_PICKLE_PROTOCOL = 4


def prune_directory(root: Path, keep: int) -> int:
    """Delete all but the newest *keep* regular files under *root*.

    Newness is (mtime, name); removal errors are ignored (another
    process may prune concurrently).  Returns the number of files
    removed.  Shared by the checkpoint and artifact quarantines so no
    quarantine directory grows without bound.
    """
    if keep < 0:
        raise ValueError(f"keep must be non-negative, got {keep}")
    root = Path(root)
    if not root.is_dir():
        return 0
    entries = [p for p in root.iterdir() if p.is_file()]
    entries.sort(key=lambda p: (p.stat().st_mtime, p.name), reverse=True)
    removed = 0
    for stale in entries[keep:]:
        try:
            stale.unlink()
            removed += 1
        except OSError:
            continue
    return removed


class CheckpointStore:
    """Sequence-numbered checkpoint files for simulation jobs.

    Files are named ``<stem>.<seq:08d>.ckpt`` under one root directory;
    *stem* is the owning job's artifact stem (benchmark tag + content
    digest), so checkpoints invalidate with the same discipline as
    artifacts: a kernel edit changes the digest and orphans old
    checkpoints instead of resuming from the wrong program.
    """

    SUFFIX = ".ckpt"

    #: checkpoints kept per job (the newest one plus a fallback).
    KEEP = 2

    #: subdirectory corrupt checkpoints are moved to.
    QUARANTINE_DIR = "quarantine"

    #: bound on quarantined checkpoint files kept for post-mortem.
    QUARANTINE_KEEP = 16

    def __init__(self, root: Path, keep: int = KEEP) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.root = Path(root)
        self.keep = keep
        #: corruption events observed by this store instance.
        self.corrupt_events: List[CheckpointCorrupt] = []

    def path(self, stem: str, seq: int) -> Path:
        return self.root / f"{stem}.{seq:08d}{self.SUFFIX}"

    def sequences(self, stem: str) -> List[int]:
        """Existing sequence numbers for *stem*, ascending."""
        prefix = f"{stem}."
        found = []
        if not self.root.is_dir():
            return found
        for path in self.root.glob(f"{stem}.*{self.SUFFIX}"):
            tail = path.name[len(prefix):-len(self.SUFFIX)]
            if tail.isdigit():
                found.append(int(tail))
        return sorted(found)

    # -- writing -------------------------------------------------------------

    def put(
        self,
        stem: str,
        seq: int,
        payload: object,
        meta: Optional[Dict[str, object]] = None,
    ) -> Path:
        """Serialise and commit one checkpoint atomically.

        The payload is pickled immediately (snapshot views over live
        state are therefore safe to pass), checksummed into the header,
        staged to a temp file, fsynced, and moved into place with
        ``os.replace``.  Older sequence numbers beyond the retention
        window are pruned after the commit.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        final = self.path(stem, seq)
        blob = pickle.dumps(payload, protocol=_PICKLE_PROTOCOL)
        header = {
            "version": CHECKPOINT_VERSION,
            "stem": stem,
            "seq": seq,
            "payload_bytes": len(blob),
            "payload_sha256": hashlib.sha256(blob).hexdigest(),
            **(meta or {}),
        }
        stage = self.root / f".stage-{os.getpid()}-{final.name}"
        with open(stage, "wb") as fh:
            fh.write(CHECKPOINT_MAGIC)
            fh.write(json.dumps(header).encode("utf-8"))
            fh.write(b"\n")
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(stage, final)
        self._prune(stem)
        return final

    def _prune(self, stem: str) -> None:
        for seq in self.sequences(stem)[: -self.keep]:
            try:
                self.path(stem, seq).unlink()
            except OSError:
                continue

    # -- reading -------------------------------------------------------------

    def _read_verified(
        self, stem: str, seq: int
    ) -> Tuple[Dict[str, object], object]:
        """(header, payload) for one file; raises on any defect."""
        raw = self.path(stem, seq).read_bytes()
        if not raw.startswith(CHECKPOINT_MAGIC):
            raise ValueError("bad checkpoint magic")
        newline = raw.find(b"\n", len(CHECKPOINT_MAGIC))
        if newline < 0:
            raise ValueError("truncated checkpoint header")
        header = json.loads(raw[len(CHECKPOINT_MAGIC):newline])
        if int(header["version"]) != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint version {header['version']} "
                f"!= {CHECKPOINT_VERSION}"
            )
        if header["stem"] != stem:
            raise ValueError("checkpoint stem does not match its filename")
        blob = raw[newline + 1:]
        if len(blob) != int(header["payload_bytes"]):
            raise ValueError(
                f"payload is {len(blob)} bytes, header promises "
                f"{header['payload_bytes']} (truncated write?)"
            )
        if hashlib.sha256(blob).hexdigest() != header["payload_sha256"]:
            raise ValueError("payload checksum mismatch")
        return header, pickle.loads(blob)

    def quarantine(self, stem: str, seq: int, reason: str) -> None:
        """Move one bad checkpoint aside and record the event."""
        path = self.path(stem, seq)
        quarantine_root = self.root / self.QUARANTINE_DIR
        moved = []
        if path.exists():
            quarantine_root.mkdir(parents=True, exist_ok=True)
            target = quarantine_root / path.name
            os.replace(path, target)
            moved.append(str(target))
            prune_directory(quarantine_root, self.QUARANTINE_KEEP)
        self.corrupt_events.append(
            CheckpointCorrupt(
                f"corrupt checkpoint {path.name}: {reason}",
                stem=stem,
                seq=seq,
                quarantined=moved,
            )
        )

    def load_latest(
        self, stem: str
    ) -> Optional[Tuple[Dict[str, object], object]]:
        """The newest checkpoint for *stem* that verifies, or None.

        Tries sequence numbers newest-first; each corrupt file is
        quarantined and the previous one is tried, so a torn final
        checkpoint degrades to the one before it, and a job whose every
        checkpoint is damaged degrades to a cold start — corruption is
        *reported* via :attr:`corrupt_events`, never raised.
        """
        for seq in reversed(self.sequences(stem)):
            try:
                return self._read_verified(stem, seq)
            except Exception as exc:
                self.quarantine(stem, seq, f"{type(exc).__name__}: {exc}")
        return None

    def clear(self, stem: str) -> None:
        """Drop every checkpoint for *stem* (the job completed)."""
        for seq in self.sequences(stem):
            try:
                self.path(stem, seq).unlink()
            except OSError:
                continue


__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CheckpointStore",
    "prune_directory",
]
