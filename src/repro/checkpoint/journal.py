"""The append-only suite run journal.

``<cache>/journal.jsonl`` records one line per finished engine job —
benchmark name, run parameters, the content digest of the stored
artifacts, and outcome — flushed and fsynced per record, so the history
survives the *driver* process dying, not just a worker.

``repro experiment --resume`` replays the journal before scheduling
work: a benchmark whose latest record (for the same scale/trace-limit
parameters) is ``completed`` is loaded straight from the artifact store
by its recorded digest and never re-simulated.  The journal is advisory
provenance, not a second artifact index: if the recorded artifacts
turn out to be missing or corrupt, the engine falls back to the normal
simulate-or-cache path for that benchmark.

Reads are tolerant: a torn trailing line (the driver died mid-append)
or any unparsable line is skipped, never fatal.  When a resume run needs
to *trust* the journal, :meth:`RunJournal.validate` distinguishes the
tolerated damage (a single torn tail — reported as a warning naming the
line) from structural damage (garbage mid-file, records written by a
newer format version) and raises a typed
:class:`~repro.errors.JournalInvalid` that names the journal path, the
line number and the offending record.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..errors import JournalInvalid

#: Format version stamped (as ``"v"``) into every record this writer
#: appends.  Records without the field read as version 0 (pre-v7
#: journals); records from a *newer* writer fail :meth:`validate` so a
#: downgraded repro never silently misreads them.
JOURNAL_VERSION = 1

#: How many characters of an offending line an error message quotes.
_SNIPPET_CHARS = 120


def _snippet(line: str) -> str:
    line = line.rstrip("\n")
    if len(line) > _SNIPPET_CHARS:
        return line[:_SNIPPET_CHARS] + "..."
    return line


class RunJournal:
    """Append-only, fsynced JSONL record of per-benchmark completion."""

    FILENAME = "journal.jsonl"

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.path = self.root / self.FILENAME

    # -- writing -------------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> None:
        """Append one record durably (flush + fsync before returning).

        A writer that died mid-line leaves a torn tail with no newline;
        appending straight after it would fuse the new record into the
        garbage line and lose *both*.  The tail is checked and terminated
        first, so one torn line never costs more than itself.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        record.setdefault("v", JOURNAL_VERSION)
        line = json.dumps(record, sort_keys=True)
        with open(self.path, "a+b") as fh:
            fh.seek(0, os.SEEK_END)
            if fh.tell() > 0:
                fh.seek(-1, os.SEEK_END)
                if fh.read(1) != b"\n":
                    fh.write(b"\n")
            fh.write(line.encode("utf-8") + b"\n")
            fh.flush()
            os.fsync(fh.fileno())

    def record_completed(
        self,
        benchmark: str,
        digest: str,
        scale: float,
        trace_limit: Optional[int],
        **extra: Any,
    ) -> None:
        self.append(
            {
                "status": "completed",
                "benchmark": benchmark,
                "digest": digest,
                "scale": scale,
                "trace_limit": trace_limit,
                "ts": round(time.time(), 3),
                **extra,
            }
        )

    def record_failed(
        self,
        benchmark: str,
        scale: float,
        trace_limit: Optional[int],
        error: Dict[str, Any],
        **extra: Any,
    ) -> None:
        self.append(
            {
                "status": "failed",
                "benchmark": benchmark,
                "scale": scale,
                "trace_limit": trace_limit,
                "error": error,
                "ts": round(time.time(), 3),
                **extra,
            }
        )

    # -- reading -------------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """All parseable records, in append order.

        Unparsable lines (torn tail from a dying writer, manual edits)
        are skipped silently — the journal degrades to fewer skips,
        never to a crash.  :meth:`validate` is the strict counterpart.
        """
        if not self.path.exists():
            return []
        out: List[Dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    out.append(record)
        return out

    def read_tolerant(self) -> Tuple[List[Dict[str, Any]], List[str]]:
        """``(records, warnings)`` — every skip named, nothing raised.

        The middle ground between :meth:`records` (silent skips) and
        :meth:`validate` (raises on structural damage), for consumers
        that must make progress over a *partial* shard journal — a
        worker died mid-append, mid-file garbage from an interleaved
        crash — but must not silently under-count what they dropped.
        Used by :func:`repro.eval.shards.merge_shards`: incomplete
        records are skipped with a warning naming the journal path and
        line (the same torn-tail semantics :meth:`validate` tolerates),
        and the merge report counts them.
        """
        if not self.path.exists():
            return [], []
        try:
            raw = self.path.read_text(encoding="utf-8")
        except OSError as exc:
            return [], [f"{self.path}: unreadable journal skipped: {exc}"]
        records: List[Dict[str, Any]] = []
        warnings: List[str] = []
        lines = raw.split("\n")
        torn_tail = bool(lines and lines[-1] != "")
        if lines and lines[-1] == "":
            lines.pop()
        last_index = len(lines) - 1
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            number = index + 1
            try:
                record = json.loads(line)
            except ValueError:
                if index == last_index and torn_tail:
                    warnings.append(
                        f"{self.path}:{number}: torn tail "
                        f"{_snippet(line)!r} — the writer died "
                        "mid-append; the record is skipped"
                    )
                else:
                    warnings.append(
                        f"{self.path}:{number}: unparsable record "
                        f"{_snippet(line)!r} skipped"
                    )
                continue
            if not isinstance(record, dict):
                warnings.append(
                    f"{self.path}:{number}: non-object record "
                    f"{_snippet(line)!r} skipped"
                )
                continue
            version = record.get("v", 0)
            if not isinstance(version, int) or version > JOURNAL_VERSION:
                warnings.append(
                    f"{self.path}:{number}: record with format version "
                    f"{version!r} (> supported {JOURNAL_VERSION}) skipped"
                )
                continue
            records.append(record)
        return records, warnings

    def validate(self) -> List[str]:
        """Check the journal structurally; returns tolerated warnings.

        A single unparsable *final* line is the signature of a writer
        that died mid-append — tolerated (the record it was describing
        is simply not on record) and reported as a warning naming the
        journal path and line number.  Everything else raises:

        * an unreadable journal file,
        * an unparsable or non-object line anywhere *before* the tail
          (manual edits, interleaved writers without the append lock),
        * a record stamped with a format version newer than this
          build's :data:`JOURNAL_VERSION` (written by a newer repro).

        Raises:
            JournalInvalid: naming ``self.path``, the 1-based line
                number and a snippet of the offending record.
        """
        if not self.path.exists():
            return []
        try:
            raw = self.path.read_text(encoding="utf-8")
        except OSError as exc:
            raise JournalInvalid(
                f"run journal {self.path} is unreadable: {exc}",
                path=str(self.path),
            ) from exc
        warnings: List[str] = []
        lines = raw.split("\n")
        torn_tail = bool(lines and lines[-1] != "")
        if lines and lines[-1] == "":
            lines.pop()
        last_index = len(lines) - 1
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            number = index + 1
            try:
                record = json.loads(line)
            except ValueError:
                if index == last_index and torn_tail:
                    warnings.append(
                        f"{self.path}:{number}: torn tail "
                        f"{_snippet(line)!r} — the writer died "
                        "mid-append; the record is skipped"
                    )
                    continue
                raise JournalInvalid(
                    f"run journal {self.path} has an unparsable record "
                    f"at line {number}: {_snippet(line)!r} — delete the "
                    "line or rerun without --resume",
                    path=str(self.path),
                    line=number,
                    record=_snippet(line),
                )
            if not isinstance(record, dict):
                raise JournalInvalid(
                    f"run journal {self.path} has a non-object record "
                    f"at line {number}: {_snippet(line)!r}",
                    path=str(self.path),
                    line=number,
                    record=_snippet(line),
                )
            version = record.get("v", 0)
            if not isinstance(version, int) or version > JOURNAL_VERSION:
                raise JournalInvalid(
                    f"run journal {self.path} record at line {number} "
                    f"has format version {version!r}, but this build "
                    f"supports <= {JOURNAL_VERSION} — it was written by "
                    "a newer repro; upgrade, or move the journal aside",
                    path=str(self.path),
                    line=number,
                    record=_snippet(line),
                    version=version,
                    supported=JOURNAL_VERSION,
                )
        return warnings

    def completed(
        self,
        scale: float,
        trace_limit: Optional[int],
        backend: str = "interp",
    ) -> Dict[str, str]:
        """benchmark -> artifact digest for finished work at these params.

        The *latest* record per benchmark at these parameters wins, so a
        later ``failed`` entry invalidates an earlier completion.
        Records at other scales/limits/backends are ignored entirely
        (they speak about different artifacts); records predating the
        backend field count as interpreter runs.
        """
        latest: Dict[str, Optional[str]] = {}
        for record in self.records():
            benchmark = record.get("benchmark")
            if not isinstance(benchmark, str):
                continue
            if (
                record.get("scale") != scale
                or record.get("trace_limit") != trace_limit
                or record.get("backend", "interp") != backend
            ):
                continue
            if record.get("status") == "completed" and isinstance(
                record.get("digest"), str
            ):
                latest[benchmark] = record["digest"]
            else:
                latest[benchmark] = None
        return {b: d for b, d in latest.items() if d is not None}


__all__ = ["JOURNAL_VERSION", "RunJournal"]
