"""The append-only suite run journal.

``<cache>/journal.jsonl`` records one line per finished engine job —
benchmark name, run parameters, the content digest of the stored
artifacts, and outcome — flushed and fsynced per record, so the history
survives the *driver* process dying, not just a worker.

``repro experiment --resume`` replays the journal before scheduling
work: a benchmark whose latest record (for the same scale/trace-limit
parameters) is ``completed`` is loaded straight from the artifact store
by its recorded digest and never re-simulated.  The journal is advisory
provenance, not a second artifact index: if the recorded artifacts
turn out to be missing or corrupt, the engine falls back to the normal
simulate-or-cache path for that benchmark.

Reads are tolerant: a torn trailing line (the driver died mid-append)
or any unparsable line is skipped, never fatal.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional


class RunJournal:
    """Append-only, fsynced JSONL record of per-benchmark completion."""

    FILENAME = "journal.jsonl"

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.path = self.root / self.FILENAME

    # -- writing -------------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> None:
        """Append one record durably (flush + fsync before returning).

        A writer that died mid-line leaves a torn tail with no newline;
        appending straight after it would fuse the new record into the
        garbage line and lose *both*.  The tail is checked and terminated
        first, so one torn line never costs more than itself.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True)
        with open(self.path, "a+b") as fh:
            fh.seek(0, os.SEEK_END)
            if fh.tell() > 0:
                fh.seek(-1, os.SEEK_END)
                if fh.read(1) != b"\n":
                    fh.write(b"\n")
            fh.write(line.encode("utf-8") + b"\n")
            fh.flush()
            os.fsync(fh.fileno())

    def record_completed(
        self,
        benchmark: str,
        digest: str,
        scale: float,
        trace_limit: Optional[int],
        **extra: Any,
    ) -> None:
        self.append(
            {
                "status": "completed",
                "benchmark": benchmark,
                "digest": digest,
                "scale": scale,
                "trace_limit": trace_limit,
                "ts": round(time.time(), 3),
                **extra,
            }
        )

    def record_failed(
        self,
        benchmark: str,
        scale: float,
        trace_limit: Optional[int],
        error: Dict[str, Any],
        **extra: Any,
    ) -> None:
        self.append(
            {
                "status": "failed",
                "benchmark": benchmark,
                "scale": scale,
                "trace_limit": trace_limit,
                "error": error,
                "ts": round(time.time(), 3),
                **extra,
            }
        )

    # -- reading -------------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """All parseable records, in append order.

        Unparsable lines (torn tail from a dying writer, manual edits)
        are skipped silently — the journal degrades to fewer skips,
        never to a crash.
        """
        if not self.path.exists():
            return []
        out: List[Dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    out.append(record)
        return out

    def completed(
        self,
        scale: float,
        trace_limit: Optional[int],
        backend: str = "interp",
    ) -> Dict[str, str]:
        """benchmark -> artifact digest for finished work at these params.

        The *latest* record per benchmark at these parameters wins, so a
        later ``failed`` entry invalidates an earlier completion.
        Records at other scales/limits/backends are ignored entirely
        (they speak about different artifacts); records predating the
        backend field count as interpreter runs.
        """
        latest: Dict[str, Optional[str]] = {}
        for record in self.records():
            benchmark = record.get("benchmark")
            if not isinstance(benchmark, str):
                continue
            if (
                record.get("scale") != scale
                or record.get("trace_limit") != trace_limit
                or record.get("backend", "interp") != backend
            ):
                continue
            if record.get("status") == "completed" and isinstance(
                record.get("digest"), str
            ):
                latest[benchmark] = record["digest"]
            else:
                latest[benchmark] = None
        return {b: d for b, d in latest.items() if d is not None}


__all__ = ["RunJournal"]
