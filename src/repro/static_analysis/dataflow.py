"""Generic dataflow engine over the control-flow graph.

One worklist solver, many analyses: a :class:`DataflowProblem` supplies
the lattice (``initial``/``meet``), the per-block monotone transfer
function, and the direction; :func:`solve` iterates block states to a
fixpoint.  Because every transfer function is monotone over a
finite-height lattice, the fixpoint is unique — the solver reaches the
same states regardless of worklist order (a property the test suite
pins with shuffled iteration orders).

Shipped problem instances:

* :class:`MustDefinedRegisters` — forward, meet = intersection over a
  32-bit register mask.  The lint pass's use-before-def check runs on
  this instance (per-function: call edges are not CFG edges, and block
  in-states only meet predecessors of the same function).
* :class:`LiveRegisters` — backward liveness over the same mask; feeds
  the dead-store lint rule.
* :class:`ReachingDefinitions` — forward, per-register bitsets over the
  definition sites of the program; feeds the loop-invariant-branch lint
  rule.
* :class:`ConstantPropagation` — forward, per-register constant lattice
  (``UNKNOWN`` > const > ``VARYING``); feeds the bounded loop-trip
  estimates in :mod:`.heuristics`.
* :class:`IntervalPropagation` — forward, per-register signed 32-bit
  intervals with widening on revisit, for range questions constants
  cannot answer.

Call conservatism is shared across instances: a call clobbers the
caller-saved registers (the ``a0`` return value and the ``ra`` link are
redefined by it), an ``ecall`` reads and redefines ``a0``, and argument
registers are treated as read by calls so their last writes stay live.
"""

from __future__ import annotations

import abc
import enum
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..isa.instructions import Format, Instruction, Opcode
from ..sim.state import wrap32
from .cfg import BasicBlock, ControlFlowGraph

#: Register numbers (see repro.isa.registers.ABI_NAMES).
RA, SP, A0 = 1, 2, 10
TEMPORARIES = (5, 6, 7, 28, 29, 30, 31)             # t0-t6
ARGUMENTS = tuple(range(10, 18))                    # a0-a7
CALLEE_SAVED = (8, 9) + tuple(range(18, 28))        # s0-s11
CALLER_SAVED = TEMPORARIES + ARGUMENTS

ALL_REGS_MASK = (1 << 32) - 1


def mask_of(regs: Iterable[int]) -> int:
    """Bitmask with one bit per register number."""
    mask = 0
    for reg in regs:
        mask |= 1 << reg
    return mask


TEMP_MASK = mask_of(TEMPORARIES)
CALLER_MASK = mask_of(CALLER_SAVED)
#: Defined at a function entry: everything except the temporaries.
ENTRY_DEFINED_MASK = ALL_REGS_MASK & ~TEMP_MASK


def instruction_reads(instr: Instruction) -> Tuple[int, ...]:
    """Register numbers the instruction reads."""
    fmt = instr.format
    if fmt is Format.R or fmt is Format.B or fmt is Format.STORE:
        return (instr.rs1, instr.rs2)
    if fmt in (Format.I, Format.LOAD, Format.JR):
        return (instr.rs1,)
    if instr.opcode is Opcode.ECALL:
        return (A0,)
    return ()


def instruction_defs(instr: Instruction) -> Tuple[int, ...]:
    """Register numbers the instruction writes (never the zero register)."""
    fmt = instr.format
    if fmt in (Format.R, Format.I, Format.LOAD, Format.J, Format.JR,
               Format.U):
        return (instr.rd,) if instr.rd != 0 else ()
    if instr.opcode is Opcode.ECALL:
        return (A0,)
    return ()


class Direction(enum.Enum):
    """Propagation direction of a dataflow problem."""

    FORWARD = "forward"
    BACKWARD = "backward"


class DataflowProblem(abc.ABC):
    """Lattice + transfer interface consumed by :func:`solve`.

    A state can be any immutable, equality-comparable value.  ``meet``
    must be commutative/associative/idempotent and ``transfer`` monotone
    with respect to the lattice order ``meet`` induces, which is what
    guarantees a unique fixpoint independent of iteration order.
    """

    direction: Direction = Direction.FORWARD

    @abc.abstractmethod
    def initial(self, cfg: ControlFlowGraph, block_id: int) -> Any:
        """Optimistic starting state for a block (the lattice top)."""

    @abc.abstractmethod
    def meet(self, a: Any, b: Any) -> Any:
        """Combine states at a control-flow merge."""

    @abc.abstractmethod
    def transfer(
        self, cfg: ControlFlowGraph, block: BasicBlock, state: Any
    ) -> Any:
        """Propagate a state through a block (forward: entry->exit state;
        backward: exit->entry state)."""

    def boundary(self, cfg: ControlFlowGraph, block_id: int) -> Optional[Any]:
        """Forced input state for boundary blocks, or None.

        Forward problems: a non-None value *replaces* the predecessor
        meet as the block's in-state (e.g. function entries).  Backward
        problems: a non-None value replaces the successor meet as the
        block's out-state (e.g. exit liveness at returns).
        """
        return None

    def edges_in(
        self, cfg: ControlFlowGraph, block_id: int
    ) -> Sequence[int]:
        """Predecessors contributing to a forward in-state meet.

        Override to scope an analysis (e.g. per-function: drop
        predecessors owned by a different function).
        """
        return cfg.predecessors.get(block_id, ())

    def edges_out(
        self, cfg: ControlFlowGraph, block_id: int
    ) -> Sequence[int]:
        """Successors contributing to a backward out-state meet."""
        return cfg.blocks[block_id].successors


@dataclass
class DataflowResult:
    """Fixpoint states of one solved problem.

    Attributes:
        problem: the solved problem instance.
        cfg: the analysed graph.
        in_states: block id -> state at block entry.
        out_states: block id -> state at block exit.
        iterations: total block visits until the fixpoint.
    """

    problem: DataflowProblem
    cfg: ControlFlowGraph
    in_states: Dict[int, Any] = field(default_factory=dict)
    out_states: Dict[int, Any] = field(default_factory=dict)
    iterations: int = 0

    def state_before(self, block_id: int) -> Any:
        """State holding at block entry (execution order, both directions)."""
        return self.in_states[block_id]

    def state_after(self, block_id: int) -> Any:
        """State holding at block exit (execution order, both directions)."""
        return self.out_states[block_id]


#: Safety valve: no monotone problem over our lattices needs anywhere
#: near this many visits; a non-monotone transfer function would loop
#: forever without it.
_MAX_VISITS_FACTOR = 4096


def solve(
    cfg: ControlFlowGraph,
    problem: DataflowProblem,
    order: Optional[Sequence[int]] = None,
) -> DataflowResult:
    """Run *problem* to a fixpoint over the reachable blocks of *cfg*.

    Args:
        cfg: the control-flow graph.
        problem: lattice + transfer functions.
        order: optional initial worklist order over the reachable blocks
            (defaults to ascending block id for forward problems and
            descending for backward ones).  The fixpoint is independent
            of this order; tests exploit that to shuffle it.

    Returns:
        The fixpoint :class:`DataflowResult`.

    Raises:
        RuntimeError: if the visit budget is exhausted (a non-monotone
            transfer function).
    """
    reachable = cfg.reachable_blocks()
    if order is None:
        ascending = problem.direction is Direction.FORWARD
        worklist = sorted(reachable, reverse=not ascending)
    else:
        worklist = [b for b in order if b in reachable]
        worklist.extend(b for b in sorted(reachable) if b not in set(order))

    forward = problem.direction is Direction.FORWARD
    result = DataflowResult(problem=problem, cfg=cfg)
    computed: Dict[int, Any] = {}  # out (forward) / in (backward)

    from collections import deque

    queue = deque(worklist)
    queued = set(queue)
    budget = _MAX_VISITS_FACTOR * max(1, len(reachable))
    visits = 0
    while queue:
        visits += 1
        if visits > budget:
            raise RuntimeError(
                "dataflow solver exceeded its visit budget: "
                "non-monotone transfer function?"
            )
        block_id = queue.popleft()
        queued.discard(block_id)
        block = cfg.blocks[block_id]

        boundary = problem.boundary(cfg, block_id)
        if boundary is not None:
            joined = boundary
        else:
            if forward:
                feeders = [
                    p for p in problem.edges_in(cfg, block_id)
                    if p in reachable
                ]
            else:
                feeders = [
                    s for s in problem.edges_out(cfg, block_id)
                    if s in reachable
                ]
            joined = None
            for feeder in feeders:
                contribution = computed.get(feeder)
                if contribution is None:
                    continue
                joined = (
                    contribution if joined is None
                    else problem.meet(joined, contribution)
                )
            if joined is None:
                joined = problem.initial(cfg, block_id)

        new_state = problem.transfer(cfg, block, joined)
        if forward:
            result.in_states[block_id] = joined
            result.out_states[block_id] = new_state
        else:
            result.out_states[block_id] = joined
            result.in_states[block_id] = new_state
        if computed.get(block_id) == new_state and block_id in computed:
            continue
        computed[block_id] = new_state
        dependents = (
            cfg.blocks[block_id].successors if forward
            else cfg.predecessors.get(block_id, ())
        )
        for dep in dependents:
            if dep in reachable and dep not in queued:
                queue.append(dep)
                queued.add(dep)
    result.iterations = visits
    return result


def function_attribution(cfg: ControlFlowGraph) -> Dict[int, int]:
    """Block id -> owning function entry, by address-extent attribution.

    Shared by every per-function analysis: a block belongs to the nearest
    function entry at or before it in address order.
    """
    entries = sorted(cfg.function_entries | {cfg.entry})
    function_of: Dict[int, int] = {}
    for block in cfg.blocks:
        pos = bisect_right(entries, block.index)
        function_of[block.index] = entries[pos - 1] if pos else cfg.entry
    return function_of


# --------------------------------------------------------------------------- #
# Instance: must-defined registers (forward, intersection over a mask)
# --------------------------------------------------------------------------- #


class MustDefinedRegisters(DataflowProblem):
    """Registers guaranteed written on *every* path from the function entry.

    Per-function: block in-states only meet predecessors of the same
    function, and function entries are boundary blocks starting from
    :data:`ENTRY_DEFINED_MASK` (everything but the temporaries).  The
    lint pass reports temporary reads that can see an undefined bit.
    """

    direction = Direction.FORWARD

    def __init__(self, cfg: ControlFlowGraph) -> None:
        self._function_of = function_attribution(cfg)

    def initial(self, cfg: ControlFlowGraph, block_id: int) -> int:
        return ALL_REGS_MASK  # top: optimistically all defined

    def meet(self, a: int, b: int) -> int:
        return a & b

    def boundary(
        self, cfg: ControlFlowGraph, block_id: int
    ) -> Optional[int]:
        if block_id == cfg.entry or block_id in cfg.function_entries:
            return ENTRY_DEFINED_MASK
        return None

    def edges_in(
        self, cfg: ControlFlowGraph, block_id: int
    ) -> Sequence[int]:
        fn = self._function_of[block_id]
        return [
            p for p in cfg.predecessors.get(block_id, ())
            if self._function_of[p] == fn
        ]

    def transfer(
        self, cfg: ControlFlowGraph, block: BasicBlock, state: int
    ) -> int:
        for i in range(block.start, block.end):
            instr = cfg.program.instructions[i]
            for reg in instruction_defs(instr):
                state |= 1 << reg
            if instr.is_call:
                # the callee clobbers caller-saved registers; a0 returns
                # a value and ra holds the link
                state &= ~CALLER_MASK
                state |= (1 << A0) | (1 << RA)
        return state


# --------------------------------------------------------------------------- #
# Instance: live registers (backward, union over a mask)
# --------------------------------------------------------------------------- #

#: Conservatively live when control leaves a function: the return value,
#: everything the caller expects preserved, and the stack/link plumbing.
EXIT_LIVE_MASK = mask_of((A0, 11, RA, SP, 3, 4) + CALLEE_SAVED)


class LiveRegisters(DataflowProblem):
    """Backward liveness over a 32-bit register mask.

    Calls read the argument registers (a write to ``a0``–``a7`` before a
    call is live) and define the caller-saved set; blocks without
    successors (returns, halts) start from :data:`EXIT_LIVE_MASK` so
    values with post-function consumers are never reported dead.
    """

    direction = Direction.BACKWARD

    def initial(self, cfg: ControlFlowGraph, block_id: int) -> int:
        return 0  # top for a union problem: nothing live yet

    def meet(self, a: int, b: int) -> int:
        return a | b

    def boundary(
        self, cfg: ControlFlowGraph, block_id: int
    ) -> Optional[int]:
        if not cfg.blocks[block_id].successors:
            return EXIT_LIVE_MASK
        return None

    def transfer(
        self, cfg: ControlFlowGraph, block: BasicBlock, state: int
    ) -> int:
        return self.through_block(cfg, block, state, None)

    @staticmethod
    def through_instruction(
        instr: Instruction, live: int
    ) -> int:
        """Liveness immediately before *instr* given liveness after it."""
        if instr.is_call:
            # callee may read arguments and clobbers caller-saved regs
            live &= ~(CALLER_MASK | (1 << instr.rd if instr.rd else 0))
            live |= mask_of(ARGUMENTS)
            if instr.format is Format.JR:
                live |= 1 << instr.rs1
            return live
        for reg in instruction_defs(instr):
            live &= ~(1 << reg)
        for reg in instruction_reads(instr):
            live |= 1 << reg
        return live

    @classmethod
    def through_block(
        cls,
        cfg: ControlFlowGraph,
        block: BasicBlock,
        live_out: int,
        observe=None,
    ) -> int:
        """Walk *block* backwards; ``observe(instr_index, live_after)`` is
        called per instruction with the liveness *after* it (the dead-store
        rule hooks in here)."""
        live = live_out
        for i in range(block.end - 1, block.start - 1, -1):
            instr = cfg.program.instructions[i]
            if observe is not None:
                observe(i, live)
            live = cls.through_instruction(instr, live)
        return live


# --------------------------------------------------------------------------- #
# Instance: reaching definitions (forward, union over per-register bitsets)
# --------------------------------------------------------------------------- #


class ReachingDefinitions(DataflowProblem):
    """Which definition sites can reach each point, per register.

    States are tuples of 32 ints; bit *k* of entry *r* is set when the
    *k*-th definition site of register *r* (see :attr:`def_sites`) can
    reach the program point.  Calls define every caller-saved register
    (plus ``ra``) at the call instruction, ``ecall`` defines ``a0``.
    Bit 0 of every entry is the synthetic boundary definition (the value
    the register had when the function was entered).
    """

    direction = Direction.FORWARD

    #: Synthetic "defined at entry" site, bit 0 of every register.
    ENTRY_SITE = -1

    def __init__(self, cfg: ControlFlowGraph) -> None:
        #: per register: ordered list of defining instruction indices
        self.def_sites: List[List[int]] = [[] for _ in range(32)]
        self._site_bit: Dict[Tuple[int, int], int] = {}
        for i, instr in enumerate(cfg.program.instructions):
            for reg in self._defined_regs(instr):
                bit = len(self.def_sites[reg]) + 1  # bit 0 = entry
                self.def_sites[reg].append(i)
                self._site_bit[(reg, i)] = bit
        self._entry_state = tuple(1 for _ in range(32))

    @staticmethod
    def _defined_regs(instr: Instruction) -> Tuple[int, ...]:
        defs = instruction_defs(instr)
        if instr.is_call:
            extra = tuple(
                r for r in CALLER_SAVED + (RA,) if r not in defs
            )
            return defs + extra
        return defs

    def sites_reaching(
        self, state: Tuple[int, ...], reg: int
    ) -> List[int]:
        """Definition instruction indices encoded in *state* for *reg*
        (:data:`ENTRY_SITE` for the synthetic entry definition)."""
        bits = state[reg]
        sites: List[int] = []
        if bits & 1:
            sites.append(self.ENTRY_SITE)
        for k, site in enumerate(self.def_sites[reg]):
            if bits & (1 << (k + 1)):
                sites.append(site)
        return sites

    def initial(
        self, cfg: ControlFlowGraph, block_id: int
    ) -> Tuple[int, ...]:
        return tuple(0 for _ in range(32))

    def boundary(
        self, cfg: ControlFlowGraph, block_id: int
    ) -> Optional[Tuple[int, ...]]:
        if block_id == cfg.entry or block_id in cfg.function_entries:
            return self._entry_state
        return None

    def meet(
        self, a: Tuple[int, ...], b: Tuple[int, ...]
    ) -> Tuple[int, ...]:
        return tuple(x | y for x, y in zip(a, b))

    def transfer(
        self, cfg: ControlFlowGraph, block: BasicBlock, state: Tuple[int, ...]
    ) -> Tuple[int, ...]:
        regs = list(state)
        for i in range(block.start, block.end):
            instr = cfg.program.instructions[i]
            for reg in self._defined_regs(instr):
                regs[reg] = 1 << self._site_bit[(reg, i)]
        return tuple(regs)


# --------------------------------------------------------------------------- #
# Instance: constant propagation (forward, flat constant lattice)
# --------------------------------------------------------------------------- #


class _Unknown:
    """Lattice top: no path has written the register yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "UNKNOWN"


class _Varying:
    """Lattice bottom: the register holds different values on
    different paths (or a value the analysis cannot model)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "VARYING"


UNKNOWN = _Unknown()
VARYING = _Varying()

ConstValue = Any  # UNKNOWN | VARYING | int


class ConstantPropagation(DataflowProblem):
    """Per-register constant values over the flat lattice
    ``UNKNOWN > const > VARYING``.

    ALU operations fold when every operand is constant (with the
    simulator's wrap-to-32-bit semantics); loads, calls and ``ecall``
    results are :data:`VARYING`.  Register ``zero`` is the constant 0
    everywhere.  Function entries treat every other register as
    :data:`VARYING` (inputs are arbitrary).
    """

    direction = Direction.FORWARD

    def __init__(self) -> None:
        entry = [VARYING] * 32
        entry[0] = 0
        self._entry_state = tuple(entry)

    def initial(
        self, cfg: ControlFlowGraph, block_id: int
    ) -> Tuple[ConstValue, ...]:
        state = [UNKNOWN] * 32
        state[0] = 0
        return tuple(state)

    def boundary(
        self, cfg: ControlFlowGraph, block_id: int
    ) -> Optional[Tuple[ConstValue, ...]]:
        if block_id == cfg.entry or block_id in cfg.function_entries:
            return self._entry_state
        return None

    @staticmethod
    def meet_values(a: ConstValue, b: ConstValue) -> ConstValue:
        if a is UNKNOWN:
            return b
        if b is UNKNOWN:
            return a
        if a is VARYING or b is VARYING:
            return VARYING
        return a if a == b else VARYING

    def meet(
        self, a: Tuple[ConstValue, ...], b: Tuple[ConstValue, ...]
    ) -> Tuple[ConstValue, ...]:
        return tuple(
            self.meet_values(x, y) for x, y in zip(a, b)
        )

    def transfer(
        self,
        cfg: ControlFlowGraph,
        block: BasicBlock,
        state: Tuple[ConstValue, ...],
    ) -> Tuple[ConstValue, ...]:
        regs = list(state)
        for i in range(block.start, block.end):
            self.step(cfg.program.instructions[i], regs)
        return tuple(regs)

    @classmethod
    def step(cls, instr: Instruction, regs: List[ConstValue]) -> None:
        """Apply one instruction to a mutable 32-entry value list."""
        if instr.is_call:
            for reg in CALLER_SAVED + (RA,):
                regs[reg] = VARYING
            return
        if instr.opcode is Opcode.ECALL:
            regs[A0] = VARYING
            return
        defs = instruction_defs(instr)
        if not defs:
            return
        rd = defs[0]
        regs[rd] = cls._evaluate(instr, regs)
        regs[0] = 0  # the zero register never changes

    @staticmethod
    def _evaluate(
        instr: Instruction, regs: Sequence[ConstValue]
    ) -> ConstValue:
        op = instr.opcode
        fmt = instr.format
        if fmt is Format.LOAD or fmt is Format.JR:
            return VARYING  # memory / link values are out of model
        if fmt is Format.J:
            return VARYING  # link address: representable but unused
        if fmt is Format.U:
            return wrap32(instr.imm << 16)
        a = regs[instr.rs1]
        if a is UNKNOWN or a is VARYING:
            if fmt is Format.I:
                return VARYING if a is VARYING else UNKNOWN
            b_probe = regs[instr.rs2]
            if a is VARYING or b_probe is VARYING:
                return VARYING
            return UNKNOWN
        if fmt is Format.I:
            b: ConstValue = instr.imm
        else:
            b = regs[instr.rs2]
            if b is UNKNOWN or b is VARYING:
                return b
        return _fold(op, a, b)


def _fold(op: Opcode, a: int, b: int) -> ConstValue:
    """Constant-fold one ALU operation with simulator semantics."""
    from ..sim.state import unsigned32

    if op in (Opcode.ADD, Opcode.ADDI):
        return wrap32(a + b)
    if op is Opcode.SUB:
        return wrap32(a - b)
    if op is Opcode.MUL:
        return wrap32(a * b)
    if op is Opcode.DIV:
        if b == 0:
            return -1
        q = abs(a) // abs(b)
        return wrap32(-q if (a < 0) != (b < 0) else q)
    if op is Opcode.REM:
        if b == 0:
            return a
        r = abs(a) % abs(b)
        return wrap32(-r if a < 0 else r)
    if op in (Opcode.AND, Opcode.ANDI):
        return a & b
    if op in (Opcode.OR, Opcode.ORI):
        return a | b
    if op in (Opcode.XOR, Opcode.XORI):
        return a ^ b
    if op in (Opcode.SLL, Opcode.SLLI):
        return wrap32(a << (b & 31))
    if op in (Opcode.SRL, Opcode.SRLI):
        return wrap32(unsigned32(a) >> (b & 31))
    if op in (Opcode.SRA, Opcode.SRAI):
        return a >> (b & 31)
    if op in (Opcode.SLT, Opcode.SLTI):
        return 1 if a < b else 0
    if op is Opcode.SLTU:
        return 1 if unsigned32(a) < unsigned32(b) else 0
    return VARYING


# --------------------------------------------------------------------------- #
# Instance: interval propagation (forward, widened signed ranges)
# --------------------------------------------------------------------------- #

INT32_MIN = -(1 << 31)
INT32_MAX = (1 << 31) - 1

#: (lo, hi) covering every representable value.
FULL_RANGE = (INT32_MIN, INT32_MAX)

Interval = Optional[Tuple[int, int]]  # None = unknown-yet (lattice top)


class IntervalPropagation(DataflowProblem):
    """Per-register signed 32-bit ranges with widening.

    The value lattice is ``None`` (no path yet) above ``(lo, hi)``
    intervals ordered by containment, with :data:`FULL_RANGE` at the
    bottom.  To keep the chain finite, a bound that grows when a block
    is re-met widens straight to the respective extreme — the classic
    jump-to-infinity widening, which converges in at most two visits
    per edge.
    """

    direction = Direction.FORWARD

    def __init__(self) -> None:
        entry: List[Interval] = [FULL_RANGE] * 32
        entry[0] = (0, 0)
        self._entry_state = tuple(entry)

    def initial(
        self, cfg: ControlFlowGraph, block_id: int
    ) -> Tuple[Interval, ...]:
        state: List[Interval] = [None] * 32
        state[0] = (0, 0)
        return tuple(state)

    def boundary(
        self, cfg: ControlFlowGraph, block_id: int
    ) -> Optional[Tuple[Interval, ...]]:
        if block_id == cfg.entry or block_id in cfg.function_entries:
            return self._entry_state
        return None

    @staticmethod
    def meet_values(a: Interval, b: Interval) -> Interval:
        if a is None:
            return b
        if b is None:
            return a
        if a == b:
            return a
        # widening: any bound that moved jumps to its extreme
        lo = a[0] if b[0] >= a[0] else INT32_MIN
        hi = a[1] if b[1] <= a[1] else INT32_MAX
        return (lo, hi)

    def meet(
        self, a: Tuple[Interval, ...], b: Tuple[Interval, ...]
    ) -> Tuple[Interval, ...]:
        return tuple(self.meet_values(x, y) for x, y in zip(a, b))

    def transfer(
        self,
        cfg: ControlFlowGraph,
        block: BasicBlock,
        state: Tuple[Interval, ...],
    ) -> Tuple[Interval, ...]:
        regs = list(state)
        for i in range(block.start, block.end):
            instr = cfg.program.instructions[i]
            if instr.is_call:
                for reg in CALLER_SAVED + (RA,):
                    regs[reg] = FULL_RANGE
                continue
            if instr.opcode is Opcode.ECALL:
                regs[A0] = FULL_RANGE
                continue
            defs = instruction_defs(instr)
            if not defs:
                continue
            regs[defs[0]] = self._evaluate(instr, regs)
            regs[0] = (0, 0)
        return tuple(regs)

    @staticmethod
    def _evaluate(
        instr: Instruction, regs: Sequence[Interval]
    ) -> Interval:
        op = instr.opcode
        fmt = instr.format
        if fmt is Format.U:
            value = wrap32(instr.imm << 16)
            return (value, value)
        if fmt in (Format.LOAD, Format.J, Format.JR):
            return FULL_RANGE
        a = regs[instr.rs1]
        if a is None:
            return None
        if fmt is Format.I:
            b: Interval = (instr.imm, instr.imm)
        else:
            b = regs[instr.rs2]
            if b is None:
                return None
        if op in (Opcode.ADD, Opcode.ADDI):
            lo, hi = a[0] + b[0], a[1] + b[1]
            if lo < INT32_MIN or hi > INT32_MAX:
                return FULL_RANGE
            return (lo, hi)
        if op is Opcode.SUB:
            lo, hi = a[0] - b[1], a[1] - b[0]
            if lo < INT32_MIN or hi > INT32_MAX:
                return FULL_RANGE
            return (lo, hi)
        if op in (Opcode.SLT, Opcode.SLTI, Opcode.SLTU):
            return (0, 1)
        if op in (Opcode.AND, Opcode.ANDI):
            if b[0] == b[1] and b[0] >= 0:
                return (0, b[0])
            if a[0] == a[1] and a[0] >= 0:
                return (0, a[0])
            return FULL_RANGE
        return FULL_RANGE


__all__ = [
    "ALL_REGS_MASK",
    "ARGUMENTS",
    "CALLEE_SAVED",
    "CALLER_SAVED",
    "ConstantPropagation",
    "DataflowProblem",
    "DataflowResult",
    "Direction",
    "ENTRY_DEFINED_MASK",
    "EXIT_LIVE_MASK",
    "FULL_RANGE",
    "INT32_MAX",
    "INT32_MIN",
    "IntervalPropagation",
    "LiveRegisters",
    "MustDefinedRegisters",
    "ReachingDefinitions",
    "TEMPORARIES",
    "UNKNOWN",
    "VARYING",
    "function_attribution",
    "instruction_defs",
    "instruction_reads",
    "mask_of",
    "solve",
]
