"""Natural-loop detection and the loop nesting forest.

A back edge is an edge ``tail -> header`` whose header dominates the tail;
its natural loop is the header plus every block that reaches the tail
without passing through the header.  Back edges sharing a header are merged
into one loop, and loops nest by body containment, giving the forest the
conflict estimator walks to weight branch pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from .cfg import ControlFlowGraph
from .dominators import DominatorTree, compute_dominators


@dataclass(frozen=True)
class NaturalLoop:
    """One natural loop.

    Attributes:
        index: loop id within the forest.
        header: header block id (the unique entry the back edges target).
        body: all member block ids, header included.
        back_edges: the (tail, header) edges that induced the loop.
        parent: id of the innermost enclosing loop, or None at top level.
        depth: nesting depth (1 for top-level loops).
    """

    index: int
    header: int
    body: FrozenSet[int]
    back_edges: Tuple[Tuple[int, int], ...]
    parent: Optional[int] = None
    depth: int = 1

    def __contains__(self, block_id: int) -> bool:
        return block_id in self.body

    def __len__(self) -> int:
        return len(self.body)


@dataclass
class LoopForest:
    """All natural loops of a CFG, with nesting structure.

    Attributes:
        loops: loops ordered by (header block id).
        by_block: block id -> loop ids containing it, innermost first.
    """

    loops: List[NaturalLoop]
    by_block: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def loop_count(self) -> int:
        return len(self.loops)

    def innermost(self, block_id: int) -> Optional[NaturalLoop]:
        """The innermost loop containing *block_id*, if any."""
        ids = self.by_block.get(block_id)
        return self.loops[ids[0]] if ids else None

    def depth_of(self, block_id: int) -> int:
        """Nesting depth of a block (0 outside any loop)."""
        loop = self.innermost(block_id)
        return loop.depth if loop else 0

    def chain(self, block_id: int) -> List[NaturalLoop]:
        """Loops containing *block_id*, innermost first."""
        return [self.loops[i] for i in self.by_block.get(block_id, [])]


def find_loops(
    cfg: ControlFlowGraph, dom: Optional[DominatorTree] = None
) -> LoopForest:
    """Detect natural loops and assemble the nesting forest."""
    dom = dom or compute_dominators(cfg)

    # back edges: tail -> header with header dominating tail
    back_edges: Dict[int, List[int]] = {}
    for tail in dom.rpo:
        for header in cfg.blocks[tail].successors:
            if dom.dominates(header, tail):
                back_edges.setdefault(header, []).append(tail)

    raw: List[Tuple[int, FrozenSet[int], Tuple[Tuple[int, int], ...]]] = []
    for header in sorted(back_edges):
        tails = back_edges[header]
        body = {header}
        frontier = [t for t in tails if t != header]
        while frontier:
            block_id = frontier.pop()
            if block_id in body:
                continue
            body.add(block_id)
            frontier.extend(
                p for p in cfg.predecessors.get(block_id, ())
                if p not in body
            )
        raw.append(
            (
                header,
                frozenset(body),
                tuple((t, header) for t in sorted(tails)),
            )
        )

    # nesting: parent = smallest strictly-containing loop
    loops: List[NaturalLoop] = []
    for i, (header, body, edges) in enumerate(raw):
        parent: Optional[int] = None
        parent_size = None
        for j, (_, other_body, _) in enumerate(raw):
            if i == j or not body < other_body:
                continue
            if parent_size is None or len(other_body) < parent_size:
                parent, parent_size = j, len(other_body)
        loops.append(
            NaturalLoop(
                index=i, header=header, body=body,
                back_edges=edges, parent=parent,
            )
        )

    # depths via parent chains (forest is acyclic by strict containment)
    def depth_of(i: int) -> int:
        depth, node = 1, loops[i]
        while node.parent is not None:
            depth += 1
            node = loops[node.parent]
        return depth

    loops = [
        NaturalLoop(
            index=l.index, header=l.header, body=l.body,
            back_edges=l.back_edges, parent=l.parent,
            depth=depth_of(l.index),
        )
        for l in loops
    ]

    by_block: Dict[int, List[int]] = {}
    for loop in loops:
        for block_id in loop.body:
            by_block.setdefault(block_id, []).append(loop.index)
    for block_id, ids in by_block.items():
        ids.sort(key=lambda i: (-loops[i].depth, loops[i].index))

    return LoopForest(loops=loops, by_block=by_block)
