"""Profile-free conflict-graph estimation (the compiler's view of §5).

The paper's branch allocation assumes the compiler knows which static
branches will interleave.  Our reproduction previously obtained that
knowledge only from a full dynamic profile; this module predicts it from
program structure alone:

* two branches interleave when they execute repeatedly in alternation,
  which statically means they share an enclosing loop;
* the deeper the shared loop, the more alternations — so the predicted
  interleave weight is ``loop_iters ** depth`` of the deepest *common*
  loop, decaying geometrically across nesting levels;
* loop membership is **interprocedural**: a branch inside a kernel called
  from a phase loop executes under that loop, so callee branches inherit
  the loop context of their call sites (propagated transitively through
  the call graph).

The result is emitted as the same :class:`~repro.analysis.conflict_graph.
ConflictGraph` the profiled pipeline produces, so
:class:`~repro.allocation.allocator.BranchAllocator` and every downstream
consumer run unchanged — without any simulation.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..analysis.conflict_graph import DEFAULT_THRESHOLD, ConflictGraph
from ..isa.program import Program
from .cfg import ControlFlowGraph, build_cfg
from .dominators import DominatorTree, compute_dominators
from .loops import LoopForest, find_loops

#: Assumed iteration count per loop level (the geometric decay base).
DEFAULT_LOOP_ITERS = 10

#: Effective-depth cap: keeps weights bounded even for pathological
#: nesting or recursive call chains.
MAX_EFFECTIVE_DEPTH = 12


@dataclass
class StaticConflictEstimate:
    """The estimator's full output.

    Attributes:
        graph: predicted conflict graph (same type the profiler emits).
        cfg: the control-flow graph.
        dominators: the dominator tree.
        loops: the loop nesting forest.
        branch_loops: branch PC -> loop ids in its (interprocedural)
            context.
        effective_depth: loop id -> nesting depth including inherited
            call-site context.
        loop_iters: the decay base used.
        threshold: minimum predicted weight for an edge to survive.
    """

    graph: ConflictGraph
    cfg: ControlFlowGraph
    dominators: DominatorTree
    loops: LoopForest
    branch_loops: Dict[int, FrozenSet[int]]
    effective_depth: Dict[int, int]
    loop_iters: int
    threshold: int

    def predicted_executions(self, pc: int) -> int:
        """The estimator's execution-count prediction for a branch."""
        return self.graph.node_weight(pc)


class StaticConflictEstimator:
    """Builds conflict-graph estimates for assembled programs.

    Example::

        estimate = StaticConflictEstimator().estimate(built.program)
        allocator = BranchAllocator.from_graph(estimate.graph)
        allocation = allocator.allocate(bht_size=128)   # no profiling
    """

    def __init__(
        self,
        loop_iters: int = DEFAULT_LOOP_ITERS,
        threshold: int = DEFAULT_THRESHOLD,
    ) -> None:
        """
        Args:
            loop_iters: assumed iterations per loop nesting level.
            threshold: prune predicted edges below this weight (matches
                the profiled pipeline's edge threshold).

        Raises:
            ValueError: if loop_iters < 2 or threshold < 0.
        """
        if loop_iters < 2:
            raise ValueError(f"loop_iters must be >= 2, got {loop_iters}")
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.loop_iters = loop_iters
        self.threshold = threshold

    # -- pipeline ----------------------------------------------------------

    def estimate(self, program: Program) -> StaticConflictEstimate:
        """Run the full estimation pipeline on *program*."""
        cfg = build_cfg(program)
        dom = compute_dominators(cfg)
        forest = find_loops(cfg, dom)

        function_of = _function_attribution(cfg)
        ctx_depth, inherited = _call_contexts(cfg, forest, function_of)

        effective_depth: Dict[int, int] = {}
        for loop in forest.loops:
            base = ctx_depth.get(function_of[loop.header], 0)
            effective_depth[loop.index] = min(
                loop.depth + base, MAX_EFFECTIVE_DEPTH
            )

        # per-branch interprocedural loop context
        branch_loops: Dict[int, FrozenSet[int]] = {}
        for pc, block_id in cfg.conditional_branches():
            local = set(forest.by_block.get(block_id, ()))
            local |= inherited.get(function_of[block_id], frozenset())
            branch_loops[pc] = frozenset(local)

        graph = self._build_graph(branch_loops, effective_depth)
        return StaticConflictEstimate(
            graph=graph,
            cfg=cfg,
            dominators=dom,
            loops=forest,
            branch_loops=branch_loops,
            effective_depth=effective_depth,
            loop_iters=self.loop_iters,
            threshold=self.threshold,
        )

    def _build_graph(
        self,
        branch_loops: Dict[int, FrozenSet[int]],
        effective_depth: Dict[int, int],
    ) -> ConflictGraph:
        graph = ConflictGraph()
        for pc, loops in branch_loops.items():
            depth = max(
                (effective_depth[l] for l in loops), default=0
            )
            graph.add_node(pc, self.loop_iters ** depth)

        # minimum depth whose predicted weight survives the prune: loops
        # shallower than this cannot contribute a kept edge, which keeps
        # the all-pairs work off the huge outermost loops
        min_depth = 0
        while (
            self.threshold > 0
            and self.loop_iters ** min_depth < self.threshold
        ):
            min_depth += 1

        members: Dict[int, List[int]] = {}
        for pc, loops in branch_loops.items():
            for loop_id in loops:
                if effective_depth[loop_id] >= min_depth:
                    members.setdefault(loop_id, []).append(pc)

        # deepest loops first: the first loop that covers a pair is its
        # deepest common loop, which fixes the pair's weight
        assigned: Set[Tuple[int, int]] = set()
        for loop_id in sorted(
            members, key=lambda l: (-effective_depth[l], l)
        ):
            weight = self.loop_iters ** effective_depth[loop_id]
            pcs = sorted(members[loop_id])
            for i, a in enumerate(pcs):
                for b in pcs[i + 1 :]:
                    if (a, b) in assigned:
                        continue
                    assigned.add((a, b))
                    graph.add_edge(a, b, weight)
        return graph


def estimate_conflict_graph(
    program: Program,
    loop_iters: int = DEFAULT_LOOP_ITERS,
    threshold: int = DEFAULT_THRESHOLD,
) -> ConflictGraph:
    """Convenience wrapper: program -> predicted ConflictGraph."""
    return (
        StaticConflictEstimator(loop_iters=loop_iters, threshold=threshold)
        .estimate(program)
        .graph
    )


# -- internals -------------------------------------------------------------


def _function_attribution(cfg: ControlFlowGraph) -> Dict[int, int]:
    """Block id -> owning function entry, by address-extent attribution."""
    entries = sorted(cfg.function_entries | {cfg.entry})
    function_of: Dict[int, int] = {}
    for block in cfg.blocks:
        pos = bisect_right(entries, block.index)
        function_of[block.index] = entries[pos - 1] if pos else cfg.entry
    return function_of


def _call_contexts(
    cfg: ControlFlowGraph,
    forest: LoopForest,
    function_of: Dict[int, int],
) -> Tuple[Dict[int, int], Dict[int, FrozenSet[int]]]:
    """Propagate loop context through the call graph.

    Returns:
        (ctx_depth, inherited): per function entry, the maximum loop depth
        its call sites sit under, and the set of loop ids a call to it
        executes beneath — both transitive through callers, fixpointed,
        with depth capped so recursion terminates.
    """
    # call sites grouped by callee function
    sites: Dict[int, List[int]] = {}
    for caller_block, callee_entry in cfg.call_sites:
        sites.setdefault(callee_entry, []).append(caller_block)

    ctx_depth: Dict[int, int] = {}
    inherited: Dict[int, Set[int]] = {}
    changed = True
    rounds = 0
    while changed and rounds <= MAX_EFFECTIVE_DEPTH:
        changed = False
        rounds += 1
        for callee, callers in sites.items():
            depth = ctx_depth.get(callee, 0)
            loops: Set[int] = set(inherited.get(callee, ()))
            for caller_block in callers:
                caller_fn = function_of[caller_block]
                local = forest.by_block.get(caller_block, [])
                local_depth = (
                    forest.loops[local[0]].depth if local else 0
                )
                depth = max(
                    depth,
                    min(
                        local_depth + ctx_depth.get(caller_fn, 0),
                        MAX_EFFECTIVE_DEPTH,
                    ),
                )
                loops.update(local)
                loops.update(inherited.get(caller_fn, ()))
            if depth != ctx_depth.get(callee, 0) or loops != inherited.get(
                callee, set()
            ):
                ctx_depth[callee] = depth
                inherited[callee] = loops
                changed = True

    return ctx_depth, {
        fn: frozenset(loops) for fn, loops in inherited.items()
    }
