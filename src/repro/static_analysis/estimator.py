"""Profile-free conflict-graph estimation (the compiler's view of §5).

The paper's branch allocation assumes the compiler knows which static
branches will interleave.  Our reproduction previously obtained that
knowledge only from a full dynamic profile; this module predicts it from
program structure alone:

* two branches interleave when they execute repeatedly in alternation,
  which statically means they share an enclosing loop;
* the predicted interleave weight of a loop is the **product of the
  trip estimates along its nesting chain** — counted loops contribute
  their exact bound, unbounded loops a depth-weighted default (see
  :func:`~repro.static_analysis.heuristics.estimate_loop_trips`), so an
  inner 5-iteration loop under a 3-iteration outer loop predicts 15
  executions, not the old flat ``iters ** depth`` guess;
* loop membership is **interprocedural**: a branch inside a kernel called
  from a phase loop executes under that loop, so callee branches inherit
  the loop context — and the trip-product weight — of their call sites
  (propagated transitively through the call graph).

The result is emitted as the same :class:`~repro.analysis.conflict_graph.
ConflictGraph` the profiled pipeline produces, so
:class:`~repro.allocation.allocator.BranchAllocator` and every downstream
consumer run unchanged — without any simulation.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..analysis.conflict_graph import DEFAULT_THRESHOLD, ConflictGraph
from ..isa.program import Program
from .cfg import ControlFlowGraph, build_cfg
from .dominators import DominatorTree, compute_dominators
from .heuristics import (
    DEFAULT_LOOP_ITERS,
    LoopTripEstimate,
    estimate_loop_trips,
)
from .loops import LoopForest, find_loops

#: Cap exponent: no weight exceeds ``loop_iters ** MAX_EFFECTIVE_DEPTH``,
#: keeping products bounded even for pathological nesting or recursive
#: call chains.
MAX_EFFECTIVE_DEPTH = 12


@dataclass
class StaticConflictEstimate:
    """The estimator's full output.

    Attributes:
        graph: predicted conflict graph (same type the profiler emits).
        cfg: the control-flow graph.
        dominators: the dominator tree.
        loops: the loop nesting forest.
        branch_loops: branch PC -> loop ids in its (interprocedural)
            context.
        trip_estimates: loop id -> per-entry trip estimate.
        loop_weights: loop id -> predicted executions of the loop body
            (trip products along the nesting chain, times the inherited
            call-site context).
        loop_iters: the fallback iteration base used.
        threshold: minimum predicted weight for an edge to survive.
    """

    graph: ConflictGraph
    cfg: ControlFlowGraph
    dominators: DominatorTree
    loops: LoopForest
    branch_loops: Dict[int, FrozenSet[int]]
    trip_estimates: Dict[int, LoopTripEstimate]
    loop_weights: Dict[int, int]
    loop_iters: int
    threshold: int

    def predicted_executions(self, pc: int) -> int:
        """The estimator's execution-count prediction for a branch."""
        return self.graph.node_weight(pc)


class StaticConflictEstimator:
    """Builds conflict-graph estimates for assembled programs.

    Example::

        estimate = StaticConflictEstimator().estimate(built.program)
        allocator = BranchAllocator.from_graph(estimate.graph)
        allocation = allocator.allocate(bht_size=128)   # no profiling
    """

    def __init__(
        self,
        loop_iters: int = DEFAULT_LOOP_ITERS,
        threshold: int = DEFAULT_THRESHOLD,
    ) -> None:
        """
        Args:
            loop_iters: fallback iteration base for unbounded loops
                (counted loops use their derived trip counts).
            threshold: prune predicted edges below this weight (matches
                the profiled pipeline's edge threshold).

        Raises:
            ValueError: if loop_iters < 2 or threshold < 0.
        """
        if loop_iters < 2:
            raise ValueError(f"loop_iters must be >= 2, got {loop_iters}")
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.loop_iters = loop_iters
        self.threshold = threshold

    # -- pipeline ----------------------------------------------------------

    def estimate(self, program: Program) -> StaticConflictEstimate:
        """Run the full estimation pipeline on *program*."""
        cfg = build_cfg(program)
        dom = compute_dominators(cfg)
        forest = find_loops(cfg, dom)

        function_of = _function_attribution(cfg)
        trips = estimate_loop_trips(cfg, forest, base_iters=self.loop_iters)
        cap = self.loop_iters ** MAX_EFFECTIVE_DEPTH

        # intra-procedural chain products: a loop body runs once per
        # iteration of every enclosing loop
        chain_weight: Dict[int, int] = {}
        for loop in forest.loops:
            weight, node = 1, loop
            while True:
                weight = min(cap, weight * trips[node.index].trips)
                if node.parent is None:
                    break
                node = forest.loops[node.parent]
            chain_weight[loop.index] = weight

        ctx_weight, inherited = _call_contexts(
            cfg, forest, function_of, chain_weight, cap
        )

        loop_weights: Dict[int, int] = {}
        for loop in forest.loops:
            context = ctx_weight.get(function_of[loop.header], 1)
            loop_weights[loop.index] = min(
                cap, chain_weight[loop.index] * context
            )

        # per-branch interprocedural loop context
        branch_loops: Dict[int, FrozenSet[int]] = {}
        for pc, block_id in cfg.conditional_branches():
            local = set(forest.by_block.get(block_id, ()))
            local |= inherited.get(function_of[block_id], frozenset())
            branch_loops[pc] = frozenset(local)

        graph = self._build_graph(branch_loops, loop_weights)
        return StaticConflictEstimate(
            graph=graph,
            cfg=cfg,
            dominators=dom,
            loops=forest,
            branch_loops=branch_loops,
            trip_estimates=trips,
            loop_weights=loop_weights,
            loop_iters=self.loop_iters,
            threshold=self.threshold,
        )

    def _build_graph(
        self,
        branch_loops: Dict[int, FrozenSet[int]],
        loop_weights: Dict[int, int],
    ) -> ConflictGraph:
        graph = ConflictGraph()
        for pc, loops in branch_loops.items():
            graph.add_node(
                pc, max((loop_weights[l] for l in loops), default=1)
            )

        # only loops whose weight survives the prune can contribute a
        # kept edge, which keeps the all-pairs work off the light loops
        members: Dict[int, List[int]] = {}
        for pc, loops in branch_loops.items():
            for loop_id in loops:
                if loop_weights[loop_id] >= self.threshold:
                    members.setdefault(loop_id, []).append(pc)

        # heaviest loops first: the first loop that covers a pair is its
        # heaviest (deepest) common loop, which fixes the pair's weight
        assigned: Set[Tuple[int, int]] = set()
        for loop_id in sorted(
            members, key=lambda l: (-loop_weights[l], l)
        ):
            weight = loop_weights[loop_id]
            pcs = sorted(members[loop_id])
            for i, a in enumerate(pcs):
                for b in pcs[i + 1 :]:
                    if (a, b) in assigned:
                        continue
                    assigned.add((a, b))
                    graph.add_edge(a, b, weight)
        return graph


def estimate_conflict_graph(
    program: Program,
    loop_iters: int = DEFAULT_LOOP_ITERS,
    threshold: int = DEFAULT_THRESHOLD,
) -> ConflictGraph:
    """Convenience wrapper: program -> predicted ConflictGraph."""
    return (
        StaticConflictEstimator(loop_iters=loop_iters, threshold=threshold)
        .estimate(program)
        .graph
    )


# -- internals -------------------------------------------------------------


def _function_attribution(cfg: ControlFlowGraph) -> Dict[int, int]:
    """Block id -> owning function entry, by address-extent attribution."""
    entries = sorted(cfg.function_entries | {cfg.entry})
    function_of: Dict[int, int] = {}
    for block in cfg.blocks:
        pos = bisect_right(entries, block.index)
        function_of[block.index] = entries[pos - 1] if pos else cfg.entry
    return function_of


def _call_contexts(
    cfg: ControlFlowGraph,
    forest: LoopForest,
    function_of: Dict[int, int],
    chain_weight: Dict[int, int],
    cap: int,
) -> Tuple[Dict[int, int], Dict[int, FrozenSet[int]]]:
    """Propagate loop context through the call graph.

    Returns:
        (ctx_weight, inherited): per function entry, the heaviest
        trip-product weight its call sites execute under, and the set of
        loop ids a call to it executes beneath — both transitive through
        callers, fixpointed, with weights capped so recursion terminates.
    """
    # call sites grouped by callee function
    sites: Dict[int, List[int]] = {}
    for caller_block, callee_entry in cfg.call_sites:
        sites.setdefault(callee_entry, []).append(caller_block)

    ctx_weight: Dict[int, int] = {}
    inherited: Dict[int, Set[int]] = {}
    changed = True
    rounds = 0
    # weights are monotone and capped: each productive round at least
    # doubles some entry, so log2(cap) rounds suffice — the bound only
    # guards against a non-terminating corner
    max_rounds = max(8, cap.bit_length() + len(sites))
    while changed and rounds <= max_rounds:
        changed = False
        rounds += 1
        for callee, callers in sites.items():
            weight = ctx_weight.get(callee, 1)
            loops: Set[int] = set(inherited.get(callee, ()))
            for caller_block in callers:
                caller_fn = function_of[caller_block]
                local = forest.by_block.get(caller_block, [])
                local_weight = chain_weight[local[0]] if local else 1
                weight = max(
                    weight,
                    min(
                        local_weight * ctx_weight.get(caller_fn, 1),
                        cap,
                    ),
                )
                loops.update(local)
                loops.update(inherited.get(caller_fn, ()))
            if weight != ctx_weight.get(callee, 1) or loops != inherited.get(
                callee, set()
            ):
                ctx_weight[callee] = weight
                inherited[callee] = loops
                changed = True

    return ctx_weight, {
        fn: frozenset(loops) for fn, loops in inherited.items()
    }


__all__ = [
    "DEFAULT_LOOP_ITERS",
    "MAX_EFFECTIVE_DEPTH",
    "StaticConflictEstimate",
    "StaticConflictEstimator",
    "estimate_conflict_graph",
]
