"""Static branch-direction heuristics and loop trip estimation.

Per-branch *predicted direction + confidence* without ever running the
program, in the style of Ball & Larus, "Branch Prediction for Free"
(PLDI 1993): a small ordered catalogue of structural heuristics, each
with a fixed confidence from their measured hit rates, applied
first-match-wins:

==================  ==========  =======================================
heuristic           confidence  rule
==================  ==========  =======================================
``loop-back``       0.88        the taken edge is a loop back edge:
                                predict taken (loops iterate)
``loop-exit``       0.80        one successor leaves the innermost
                                loop: predict the edge that stays in
``opcode-exact``    1.00        statically decided compares: ``beq
                                r, r`` / ``bltu x, zero`` and friends
``guard``           0.70/0.65   compares against zero guard rare
                                conditions: ``beq x, zero`` falls
                                through, ``bne x, zero`` is taken,
                                negative values are unlikely
``call``            0.55        one successor calls: predict the
                                call-free successor (calls sit on
                                cold error/slow paths)
``return``          0.60        one successor returns: predict the
                                return-free successor
``pointer``         0.60        equality of two registers (pointer
                                identity) rarely holds: ``beq`` falls
                                through, ``bne`` is taken
``btfnt``           0.55        fallback: backward taken, forward not
                                taken
==================  ==========  =======================================

The same module turns loop structure into *trip-count estimates*: a
counted loop (unique ``addi r, r, step`` induction update, constant
init from the preheader via the constant-propagation dataflow instance,
constant or zero-register limit at the exit branch) gets its exact trip
count; anything else falls back to a depth-weighted default —
``max(2, base // depth)`` — encoding that inner loops tend to run
shorter per entry than outer loops.  The conflict estimator multiplies
these along loop chains instead of the old flat ``iters ** depth``
guess, and ``verify-static`` scores both products against measured
profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict, List, Optional, Tuple

from ..isa.instructions import Opcode
from .cfg import ControlFlowGraph
from .dataflow import (
    CALLER_SAVED,
    RA,
    ConstantPropagation,
    instruction_defs,
    solve,
)
from .dominators import DominatorTree, compute_dominators
from .loops import LoopForest, NaturalLoop, find_loops

#: Fallback iteration guess for top-level unbounded loops (the historic
#: estimator default, now only the base of the depth-weighted fallback).
DEFAULT_LOOP_ITERS = 10

#: Cap on any single counted trip estimate, so one absurd bound cannot
#: blow up every chain product it participates in.
TRIP_CAP = 1_000_000

#: Registers a call redefines (the counter of a counted loop must
#: survive every instruction of the body, calls included).
_CALL_CLOBBERS = frozenset(CALLER_SAVED + (RA,))


@dataclass(frozen=True)
class BranchPrediction:
    """One heuristic verdict for a conditional branch.

    Attributes:
        pc: branch address.
        block: owning basic-block id.
        taken: predicted direction.
        heuristic: name of the deciding heuristic (see module table).
        confidence: the heuristic's assumed hit rate in [0.5, 1.0].
    """

    pc: int
    block: int
    taken: bool
    heuristic: str
    confidence: float


@dataclass(frozen=True)
class LoopTripEstimate:
    """Predicted iterations per entry of one natural loop.

    Attributes:
        loop: loop id in the forest.
        trips: predicted iteration count (>= 1).
        bounded: True when derived from a counted-loop pattern rather
            than the depth-weighted default.
        source: ``"counted"`` or ``"default-depth"``.
    """

    loop: int
    trips: int
    bounded: bool
    source: str


def predict_branches(
    cfg: ControlFlowGraph,
    dom: Optional[DominatorTree] = None,
    forest: Optional[LoopForest] = None,
) -> Dict[int, BranchPrediction]:
    """Apply the heuristic catalogue to every conditional branch.

    Returns:
        branch PC -> :class:`BranchPrediction`, covering every
        conditional branch of the program.
    """
    dom = dom or compute_dominators(cfg)
    forest = forest if forest is not None else find_loops(cfg, dom)
    back_edges = {
        edge for loop in forest.loops for edge in loop.back_edges
    }

    predictions: Dict[int, BranchPrediction] = {}
    for pc, block_id in cfg.conditional_branches():
        block = cfg.blocks[block_id]
        if cfg.program.address_of(block.end - 1) != pc:
            # a conditional branch is always a terminator; anything else
            # would be a CFG construction bug — fall back to BTFNT
            instr = cfg.program.instructions[cfg.program.index_of(pc)]
            predictions[pc] = BranchPrediction(
                pc, block_id, instr.imm < 0, "btfnt", 0.55
            )
            continue
        instr = cfg.terminator(block)
        successors = block.successors
        taken_succ = successors[0] if successors else None
        fallthrough = successors[1] if len(successors) > 1 else None

        verdict: Optional[Tuple[bool, str, float]] = None

        # 1. loop-back: the taken edge closes a loop
        if taken_succ is not None and (block_id, taken_succ) in back_edges:
            verdict = (True, "loop-back", 0.88)
        elif fallthrough is not None and (
            (block_id, fallthrough) in back_edges
        ):
            verdict = (False, "loop-back", 0.88)

        # 2. loop-exit: prefer the edge that stays in the innermost loop
        if verdict is None:
            loop = forest.innermost(block_id)
            if (
                loop is not None
                and taken_succ is not None
                and fallthrough is not None
            ):
                taken_in = taken_succ in loop.body
                fall_in = fallthrough in loop.body
                if taken_in != fall_in:
                    verdict = (taken_in, "loop-exit", 0.80)

        # 3. statically decided compares
        if verdict is None:
            verdict = _opcode_exact(instr)

        # 4. zero-compare guards
        if verdict is None:
            verdict = _guard(instr)

        # 5./6. call / return successor shape
        if verdict is None and taken_succ is not None and (
            fallthrough is not None
        ):
            verdict = _call_return(cfg, taken_succ, fallthrough)

        # 7. register (pointer) equality
        if verdict is None:
            if instr.opcode is Opcode.BEQ:
                verdict = (False, "pointer", 0.60)
            elif instr.opcode is Opcode.BNE:
                verdict = (True, "pointer", 0.60)

        # 8. backward taken, forward not taken
        if verdict is None:
            verdict = (instr.imm < 0, "btfnt", 0.55)

        taken, heuristic, confidence = verdict
        predictions[pc] = BranchPrediction(
            pc, block_id, taken, heuristic, confidence
        )
    return predictions


def _opcode_exact(instr) -> Optional[Tuple[bool, str, float]]:
    """Compares whose outcome is fixed by the ISA itself."""
    op = instr.opcode
    if instr.rs1 == instr.rs2:
        # same register on both sides: equality holds, strict orders fail
        if op in (Opcode.BEQ, Opcode.BGE, Opcode.BGEU):
            return (True, "opcode-exact", 1.0)
        if op in (Opcode.BNE, Opcode.BLT, Opcode.BLTU):
            return (False, "opcode-exact", 1.0)
    if instr.rs2 == 0:
        if op is Opcode.BLTU:
            return (False, "opcode-exact", 1.0)  # unsigned < 0: never
        if op is Opcode.BGEU:
            return (True, "opcode-exact", 1.0)   # unsigned >= 0: always
    return None


def _guard(instr) -> Optional[Tuple[bool, str, float]]:
    """Zero-compares guarding rare conditions."""
    op = instr.opcode
    if instr.rs2 == 0 and instr.rs1 != 0:
        if op is Opcode.BEQ:
            return (False, "guard", 0.70)   # x == 0 is the rare case
        if op is Opcode.BNE:
            return (True, "guard", 0.70)
        if op is Opcode.BLT:
            return (False, "guard", 0.65)   # negative values are unusual
        if op is Opcode.BGE:
            return (True, "guard", 0.65)
    if instr.rs1 == 0 and instr.rs2 != 0:
        if op is Opcode.BLT:
            return (True, "guard", 0.65)    # 0 < x: positive values usual
        if op is Opcode.BGE:
            return (False, "guard", 0.65)
    return None


def _call_return(
    cfg: ControlFlowGraph, taken_succ: int, fallthrough: int
) -> Optional[Tuple[bool, str, float]]:
    """Predict away from calls and returns (cold/exit paths)."""
    taken_calls = _block_calls(cfg, taken_succ)
    fall_calls = _block_calls(cfg, fallthrough)
    if taken_calls != fall_calls:
        return (fall_calls, "call", 0.55)
    taken_returns = cfg.terminator(cfg.blocks[taken_succ]).is_return
    fall_returns = cfg.terminator(cfg.blocks[fallthrough]).is_return
    if taken_returns != fall_returns:
        return (fall_returns, "return", 0.60)
    return None


def _block_calls(cfg: ControlFlowGraph, block_id: int) -> bool:
    block = cfg.blocks[block_id]
    return any(
        cfg.program.instructions[i].is_call
        for i in range(block.start, block.end)
    )


# -- loop trip estimation ---------------------------------------------------


def estimate_loop_trips(
    cfg: ControlFlowGraph,
    forest: Optional[LoopForest] = None,
    base_iters: int = DEFAULT_LOOP_ITERS,
) -> Dict[int, LoopTripEstimate]:
    """Predict iterations-per-entry for every natural loop.

    Counted loops — a unique ``addi r, r, step`` induction update in the
    body, a constant initial value flowing into the header from outside
    the loop, and a constant (or zero-register) limit at an exit branch —
    get ``ceil(|limit - init| / |step|)``; the minimum over the loop's
    exit branches wins.  Everything else gets the depth-weighted default
    ``max(2, base_iters // depth)``.

    Returns:
        loop id -> :class:`LoopTripEstimate` for every loop in the
        forest.
    """
    forest = forest if forest is not None else find_loops(cfg)
    if not forest.loops:
        return {}
    constants = solve(cfg, ConstantPropagation())
    estimates: Dict[int, LoopTripEstimate] = {}
    for loop in forest.loops:
        counted = _counted_trips(cfg, loop, constants)
        if counted is not None:
            estimates[loop.index] = LoopTripEstimate(
                loop=loop.index,
                trips=counted,
                bounded=True,
                source="counted",
            )
        else:
            estimates[loop.index] = LoopTripEstimate(
                loop=loop.index,
                trips=max(2, base_iters // loop.depth),
                bounded=False,
                source="default-depth",
            )
    return estimates


def _counted_trips(
    cfg: ControlFlowGraph, loop: NaturalLoop, constants
) -> Optional[int]:
    """Trip count of a counted loop, or None if the pattern is absent."""
    back_tails = {tail for tail, _ in loop.back_edges}

    # constant register state entering the loop from outside (the meet
    # over the non-back-edge predecessors of the header)
    entry_state: Optional[List] = None
    meet = ConstantPropagation.meet_values
    for pred in cfg.predecessors.get(loop.header, ()):
        if pred in back_tails:
            continue
        state = constants.out_states.get(pred)
        if state is None:
            continue
        entry_state = (
            list(state) if entry_state is None
            else [meet(a, b) for a, b in zip(entry_state, state)]
        )
    if entry_state is None:
        return None

    candidates: List[int] = []
    for block_id in sorted(loop.body):
        block = cfg.blocks[block_id]
        terminator = cfg.terminator(block)
        if not terminator.is_conditional_branch:
            continue
        if all(s in loop.body for s in block.successors):
            continue  # not an exit branch
        trips = _exit_branch_trips(
            cfg, loop, block, terminator, entry_state, constants
        )
        if trips is not None:
            candidates.append(trips)
    return min(candidates) if candidates else None


def _exit_branch_trips(
    cfg: ControlFlowGraph,
    loop: NaturalLoop,
    block,
    branch,
    entry_state: List,
    constants,
) -> Optional[int]:
    """Trip estimate from one exit branch, or None."""
    for counter, limit_reg in (
        (branch.rs1, branch.rs2),
        (branch.rs2, branch.rs1),
    ):
        if counter == 0:
            continue
        step = _induction_step(cfg, loop, counter)
        if step is None:
            continue
        init = entry_state[counter]
        if not isinstance(init, int):
            continue
        limit = _limit_value(cfg, loop, block, limit_reg, constants)
        if limit is None:
            continue
        span = abs(limit - init)
        if span == 0 or abs(step) == 0:
            continue
        return max(1, min(TRIP_CAP, ceil(span / abs(step))))
    return None


def _induction_step(
    cfg: ControlFlowGraph, loop: NaturalLoop, reg: int
) -> Optional[int]:
    """The step of ``reg`` if its only in-loop update is
    ``addi reg, reg, step``."""
    step: Optional[int] = None
    for block_id in loop.body:
        block = cfg.blocks[block_id]
        for i in range(block.start, block.end):
            instr = cfg.program.instructions[i]
            if reg not in instruction_defs(instr) and not (
                instr.is_call and reg in _CALL_CLOBBERS
            ):
                continue
            if (
                instr.opcode is Opcode.ADDI
                and instr.rd == reg
                and instr.rs1 == reg
                and instr.imm != 0
                and step is None
            ):
                step = instr.imm
            else:
                return None  # a second or non-induction update
    return step


def _limit_value(
    cfg: ControlFlowGraph, loop: NaturalLoop, block, reg: int, constants
) -> Optional[int]:
    """Constant value of the limit register at the exit branch."""
    if reg == 0:
        return 0
    state = list(constants.in_states.get(block.index, ()))
    if not state:
        return None
    for i in range(block.start, block.end - 1):
        ConstantPropagation.step(cfg.program.instructions[i], state)
    value = state[reg]
    return value if isinstance(value, int) else None


# -- edge frequency estimation ----------------------------------------------


def estimate_edge_frequencies(
    cfg: ControlFlowGraph,
    predictions: Optional[Dict[int, BranchPrediction]] = None,
    trips: Optional[Dict[int, LoopTripEstimate]] = None,
    forest: Optional[LoopForest] = None,
) -> Dict[Tuple[int, int], float]:
    """Relative execution-frequency estimate per CFG edge.

    A block's frequency is the product of the trip estimates of the
    loops containing it (1.0 outside loops); a conditional branch splits
    its block frequency between taken and fallthrough according to its
    heuristic confidence, and multi-way indirect jumps split uniformly.
    """
    forest = forest if forest is not None else find_loops(cfg)
    predictions = (
        predictions if predictions is not None
        else predict_branches(cfg, forest=forest)
    )
    trips = (
        trips if trips is not None
        else estimate_loop_trips(cfg, forest)
    )

    def block_freq(block_id: int) -> float:
        freq = 1.0
        for loop in forest.chain(block_id):
            freq *= trips[loop.index].trips
        return freq

    frequencies: Dict[Tuple[int, int], float] = {}
    for block in cfg.blocks:
        successors = block.successors
        if not successors:
            continue
        freq = block_freq(block.index)
        terminator = cfg.terminator(block)
        if terminator.is_conditional_branch and len(successors) == 2:
            pc = cfg.program.address_of(block.end - 1)
            prediction = predictions.get(pc)
            if prediction is None:
                p_taken = 0.5
            elif prediction.taken:
                p_taken = prediction.confidence
            else:
                p_taken = 1.0 - prediction.confidence
            frequencies[(block.index, successors[0])] = freq * p_taken
            frequencies[(block.index, successors[1])] = freq * (
                1.0 - p_taken
            )
        else:
            share = freq / len(successors)
            for succ in successors:
                frequencies[(block.index, succ)] = share
    return frequencies


__all__ = [
    "DEFAULT_LOOP_ITERS",
    "TRIP_CAP",
    "BranchPrediction",
    "LoopTripEstimate",
    "estimate_edge_frequencies",
    "estimate_loop_trips",
    "predict_branches",
]
