"""Superblock (single-entry trace) formation over the CFG.

A superblock is a straight-line sequence of basic blocks with one entry
(its head) and no interior join: control can only enter at the top, and
every non-head block has exactly one reachable predecessor — the block
above it in the trace.  Side exits (a conditional branch leaving the
trace mid-way) are allowed and recorded; that asymmetry — one way in,
many ways out — is what lets a simulator or compiler decode, schedule
and specialise the whole region as a unit, re-entering the region table
only at superblock heads (the ROADMAP's superblock-compiled simulation
core consumes exactly this structure).

Formation is the classic greedy trace-growing over reverse postorder:
seed at the first uncovered block, then extend through the likeliest
successor while that successor is uncovered and the trace stays
single-entry.  The likeliest successor comes from a ``prefer`` map of
per-branch predicted directions (see :mod:`.heuristics`); without one,
fallthrough is preferred — the not-taken path, matching the assembler's
layout intuition.

Every formation ends with :func:`verify_cover`, which asserts the
structural invariants — the cover is a partition of the reachable
blocks, every reachable instruction is covered exactly once, each trace
is single-entry with no interior join, and recorded side exits match the
CFG — and raises :class:`SuperblockInvariantError` on any violation.
The verifier is cheap and unconditional: downstream consumers specialise
code on these invariants, so a silently malformed region would miscompile
rather than misreport.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .cfg import ControlFlowGraph


class SuperblockInvariantError(AssertionError):
    """A formed superblock cover violates a structural invariant."""


@dataclass(frozen=True)
class Superblock:
    """One single-entry straight-line region.

    Attributes:
        index: region id within the cover.
        blocks: member basic-block ids, in trace (execution) order.
        side_exits: ``(block id, successor block id)`` edges that leave
            the region from a non-terminal trace position.
        exit_edges: ``(block id, successor block id)`` edges leaving the
            region from its final block.
    """

    index: int
    blocks: Tuple[int, ...]
    side_exits: Tuple[Tuple[int, int], ...] = ()
    exit_edges: Tuple[Tuple[int, int], ...] = ()

    @property
    def entry(self) -> int:
        """The unique entry block of the region."""
        return self.blocks[0]

    @property
    def tail(self) -> int:
        """The final block of the trace."""
        return self.blocks[-1]

    def __len__(self) -> int:
        return len(self.blocks)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self.blocks


@dataclass
class SuperblockCover:
    """All superblocks of a CFG — a partition of its reachable blocks.

    Attributes:
        cfg: the covered graph.
        superblocks: regions ordered by formation (entry reverse
            postorder).
        by_block: block id -> owning superblock id.
    """

    cfg: ControlFlowGraph
    superblocks: List[Superblock]
    by_block: Dict[int, int]

    @property
    def region_count(self) -> int:
        return len(self.superblocks)

    def region_of(self, block_id: int) -> Superblock:
        """The superblock owning *block_id*."""
        return self.superblocks[self.by_block[block_id]]

    def instruction_count(self, region: Superblock) -> int:
        """Instructions covered by *region*."""
        return sum(
            len(self.cfg.blocks[b]) for b in region.blocks
        )


def _reverse_postorder(cfg: ControlFlowGraph, reachable: Set[int]) -> List[int]:
    """Deterministic reverse postorder over the reachable blocks, rooted
    at the entry, the function entries, and the address-taken labels."""
    roots = sorted({cfg.entry, *cfg.function_entries, *cfg.indirect_targets})
    seen: Set[int] = set()
    postorder: List[int] = []
    for root in roots:
        if root in seen or root not in reachable:
            continue
        # iterative DFS with an explicit successor cursor
        stack: List[Tuple[int, int]] = [(root, 0)]
        seen.add(root)
        while stack:
            block_id, cursor = stack[-1]
            successors = cfg.blocks[block_id].successors
            if cursor < len(successors):
                stack[-1] = (block_id, cursor + 1)
                succ = successors[cursor]
                if succ not in seen and succ in reachable:
                    seen.add(succ)
                    stack.append((succ, 0))
            else:
                stack.pop()
                postorder.append(block_id)
    return postorder[::-1]


def form_superblocks(
    cfg: ControlFlowGraph,
    prefer: Optional[Dict[int, bool]] = None,
) -> SuperblockCover:
    """Greedily grow single-entry traces covering the reachable blocks.

    Args:
        cfg: the control-flow graph.
        prefer: optional branch PC -> predicted-taken map (from the
            static heuristics) used to pick which successor a trace
            follows at a conditional branch; fallthrough wins without
            one.

    Returns:
        A verified :class:`SuperblockCover`.

    Raises:
        SuperblockInvariantError: if the formed cover violates a region
            invariant (a formation bug, not a property of the input).
    """
    reachable = cfg.reachable_blocks()
    rpo = _reverse_postorder(cfg, reachable)
    # blocks with >1 reachable predecessor (joins) can only head a trace
    pred_count = {
        b: sum(1 for p in cfg.predecessors.get(b, ()) if p in reachable)
        for b in reachable
    }

    covered: Set[int] = set()
    traces: List[List[int]] = []
    for seed in rpo:
        if seed in covered:
            continue
        trace = [seed]
        covered.add(seed)
        current = seed
        while True:
            chosen = _choose_successor(cfg, current, prefer)
            if (
                chosen is None
                or chosen not in reachable
                or chosen in covered
                or pred_count[chosen] != 1
                or chosen in cfg.indirect_targets
                or chosen in cfg.function_entries
                or chosen == cfg.entry
            ):
                break
            trace.append(chosen)
            covered.add(chosen)
            current = chosen
        traces.append(trace)

    superblocks: List[Superblock] = []
    by_block: Dict[int, int] = {}
    for index, trace in enumerate(traces):
        side_exits: List[Tuple[int, int]] = []
        for position, block_id in enumerate(trace[:-1]):
            following = trace[position + 1]
            for succ in cfg.blocks[block_id].successors:
                if succ != following:
                    side_exits.append((block_id, succ))
        exit_edges = tuple(
            (trace[-1], succ)
            for succ in cfg.blocks[trace[-1]].successors
        )
        superblocks.append(
            Superblock(
                index=index,
                blocks=tuple(trace),
                side_exits=tuple(side_exits),
                exit_edges=exit_edges,
            )
        )
        for block_id in trace:
            by_block[block_id] = index

    cover = SuperblockCover(
        cfg=cfg, superblocks=superblocks, by_block=by_block
    )
    verify_cover(cover)
    return cover


def _choose_successor(
    cfg: ControlFlowGraph,
    block_id: int,
    prefer: Optional[Dict[int, bool]],
) -> Optional[int]:
    """The successor a trace would rather continue through."""
    block = cfg.blocks[block_id]
    successors = block.successors
    if not successors:
        return None
    if len(successors) == 1:
        return successors[0]
    terminator = cfg.terminator(block)
    if terminator.is_conditional_branch:
        # successor order from build_cfg: (taken target, fallthrough)
        taken_succ, fallthrough = successors[0], successors[1]
        if prefer is not None:
            pc = cfg.program.address_of(block.end - 1)
            if prefer.get(pc, False):
                return taken_succ
        return fallthrough
    # indirect jump fanning out to a jump table: no likeliest target
    return None


def verify_cover(cover: SuperblockCover) -> None:
    """Assert every structural invariant of *cover*.

    Checks, in order: the regions partition the reachable block set;
    every reachable instruction is covered exactly once; consecutive
    trace blocks are connected by real CFG edges; every non-head block
    has exactly one reachable predecessor (single entry, no interior
    join); recorded side exits and exit edges exactly match the CFG.

    Raises:
        SuperblockInvariantError: describing the first violated
            invariant.
    """
    cfg = cover.cfg
    reachable = cfg.reachable_blocks()

    seen_blocks: Set[int] = set()
    for region in cover.superblocks:
        if not region.blocks:
            raise SuperblockInvariantError(
                f"superblock {region.index} is empty"
            )
        for block_id in region.blocks:
            if block_id in seen_blocks:
                raise SuperblockInvariantError(
                    f"block {block_id} is covered twice"
                )
            seen_blocks.add(block_id)
    if seen_blocks != reachable:
        missing = sorted(reachable - seen_blocks)
        extra = sorted(seen_blocks - reachable)
        raise SuperblockInvariantError(
            f"cover is not a partition of the reachable blocks "
            f"(missing={missing}, unreachable-covered={extra})"
        )

    covered_instructions: Set[int] = set()
    for region in cover.superblocks:
        for block_id in region.blocks:
            block = cfg.blocks[block_id]
            for i in range(block.start, block.end):
                if i in covered_instructions:
                    raise SuperblockInvariantError(
                        f"instruction {i} covered twice"
                    )
                covered_instructions.add(i)
    expected_instructions = {
        i
        for b in reachable
        for i in range(cfg.blocks[b].start, cfg.blocks[b].end)
    }
    if covered_instructions != expected_instructions:
        raise SuperblockInvariantError(
            "instruction cover does not match the reachable instruction set"
        )

    for region in cover.superblocks:
        for position in range(1, len(region.blocks)):
            above = region.blocks[position - 1]
            block_id = region.blocks[position]
            if block_id not in cfg.blocks[above].successors:
                raise SuperblockInvariantError(
                    f"trace edge {above}->{block_id} in superblock "
                    f"{region.index} is not a CFG edge"
                )
            preds = [
                p for p in cfg.predecessors.get(block_id, ())
                if p in reachable
            ]
            if preds != [above]:
                raise SuperblockInvariantError(
                    f"block {block_id} in superblock {region.index} has "
                    f"predecessors {preds}; interior blocks must have "
                    f"exactly the trace predecessor {above}"
                )

    for region in cover.superblocks:
        expected_sides: List[Tuple[int, int]] = []
        for position, block_id in enumerate(region.blocks[:-1]):
            following = region.blocks[position + 1]
            for succ in cfg.blocks[block_id].successors:
                if succ != following:
                    expected_sides.append((block_id, succ))
        if tuple(expected_sides) != region.side_exits:
            raise SuperblockInvariantError(
                f"superblock {region.index} side exits "
                f"{region.side_exits} do not match the CFG "
                f"({tuple(expected_sides)})"
            )
        expected_exits = tuple(
            (region.tail, succ)
            for succ in cfg.blocks[region.tail].successors
        )
        if expected_exits != region.exit_edges:
            raise SuperblockInvariantError(
                f"superblock {region.index} exit edges "
                f"{region.exit_edges} do not match the CFG "
                f"({expected_exits})"
            )


__all__ = [
    "Superblock",
    "SuperblockCover",
    "SuperblockInvariantError",
    "form_superblocks",
    "verify_cover",
]
