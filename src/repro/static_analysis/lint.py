"""Static lint/verifier pass over assembled programs.

Structured diagnostics for the defects the assembler cannot (or does not)
reject:

====================  ========  =============================================
code                  severity  meaning
====================  ========  =============================================
``asm-error``         error     source failed to assemble (undefined or
                                duplicate label, syntax error) — only
                                produced by :func:`lint_source`
``branch-to-data``    error     branch/jump target outside the text segment
``fallthrough-end``   error     a reachable path runs off the end of text
``unreachable``       warning   basic block no control path reaches (the
                                assembler's ``.skip`` scatter padding is
                                recognised and suppressed)
``use-before-def``    warning   a caller-saved temporary read before any
                                write on some path from the function entry
                                (including clobbers across calls)
``empty-program``     warning   the text segment holds no instructions
====================  ========  =============================================

Register discipline: at a function entry ``zero``/``ra``/``sp``/``gp``/
``tp``, the arguments ``a0``–``a7`` and the callee-saved ``s0``–``s11``
are considered defined; the temporaries ``t0``–``t6`` are not.  A call
clobbers every caller-saved register except the ``a0`` return value; an
``ecall`` reads and redefines ``a0``.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..asm.lexer import AsmSyntaxError
from ..isa.instructions import Format, Instruction, Opcode
from ..isa.program import Program
from ..isa.registers import register_name
from .cfg import ControlFlowGraph, build_cfg

#: Register numbers (see repro.isa.registers.ABI_NAMES).
_RA, _A0 = 1, 10
_TEMPORARIES = (5, 6, 7, 28, 29, 30, 31)            # t0-t6
_ARGUMENTS = tuple(range(10, 18))                   # a0-a7
_CALLER_SAVED = _TEMPORARIES + _ARGUMENTS

_ALL_MASK = (1 << 32) - 1
_TEMP_MASK = 0
for _r in _TEMPORARIES:
    _TEMP_MASK |= 1 << _r
_CALLER_MASK = 0
for _r in _CALLER_SAVED:
    _CALLER_MASK |= 1 << _r
#: Defined at function entry: everything except the temporaries.
_ENTRY_MASK = _ALL_MASK & ~_TEMP_MASK


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    Attributes:
        severity: ``"error"`` or ``"warning"``.
        code: stable machine-readable code (see module docstring).
        message: human-readable description.
        address: text address the finding anchors to (None for
            program-level findings).
    """

    severity: str
    code: str
    message: str
    address: Optional[int] = None

    def render(self) -> str:
        where = f"0x{self.address:08x}: " if self.address is not None else ""
        return f"{self.severity}: {where}{self.message} [{self.code}]"


@dataclass
class LintReport:
    """All diagnostics for one program."""

    name: str
    diagnostics: Tuple[Diagnostic, ...]

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when there are no errors (warnings allowed)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """True when there are no diagnostics at all."""
        return not self.diagnostics

    def render(self) -> str:
        if self.clean:
            return f"{self.name}: clean"
        lines = [f"{self.name}: {len(self.errors)} error(s), "
                 f"{len(self.warnings)} warning(s)"]
        lines.extend(f"  {d.render()}" for d in self.diagnostics)
        return "\n".join(lines)


def lint_program(
    program: Program, check_registers: bool = True
) -> LintReport:
    """Run every program-level check on *program*.

    Args:
        program: an assembled program.
        check_registers: include the use-before-def dataflow (the one
            check whose cost grows with program size).
    """
    diagnostics: List[Diagnostic] = []
    if not program.instructions:
        diagnostics.append(
            Diagnostic("warning", "empty-program",
                       "program has no instructions")
        )
        return LintReport(program.name, tuple(diagnostics))

    cfg = build_cfg(program)
    diagnostics.extend(_check_branch_targets(program))
    diagnostics.extend(_check_fallthrough(cfg))
    diagnostics.extend(_check_unreachable(cfg))
    if check_registers:
        diagnostics.extend(_check_use_before_def(cfg))
    diagnostics.sort(
        key=lambda d: (d.address if d.address is not None else -1, d.code)
    )
    return LintReport(program.name, tuple(diagnostics))


def lint_source(source: str, name: str = "<asm>") -> LintReport:
    """Assemble *source* and lint the result.

    Assembly failures (undefined/duplicate labels, syntax errors) become
    ``asm-error`` diagnostics instead of exceptions, so callers get one
    uniform report type.
    """
    from ..asm.assembler import assemble

    try:
        program = assemble(source, name=name)
    except AsmSyntaxError as exc:
        return LintReport(
            name,
            (Diagnostic("error", "asm-error", str(exc)),),
        )
    return lint_program(program)


# -- individual checks ------------------------------------------------------


def _check_branch_targets(program: Program) -> List[Diagnostic]:
    found: List[Diagnostic] = []
    for i, instr in enumerate(program.instructions):
        if not (instr.is_conditional_branch or instr.is_direct_jump):
            continue
        source = program.address_of(i)
        target = source + instr.imm
        if not program.in_text(target):
            kind = "branch" if instr.is_conditional_branch else "jump"
            found.append(
                Diagnostic(
                    "error", "branch-to-data",
                    f"{kind} target 0x{target:08x} is outside the text "
                    "segment",
                    address=source,
                )
            )
    return found


def _check_fallthrough(cfg: ControlFlowGraph) -> List[Diagnostic]:
    last = cfg.blocks[-1]
    if last.is_padding and len(cfg.blocks) > 1:
        # trailing scatter padding is never executed
        return []
    terminator = cfg.terminator(last)
    if terminator.falls_through:
        return [
            Diagnostic(
                "error", "fallthrough-end",
                "execution can fall through the final instruction of the "
                "text segment",
                address=cfg.program.address_of(last.end - 1),
            )
        ]
    return []


def _check_unreachable(cfg: ControlFlowGraph) -> List[Diagnostic]:
    reachable = cfg.reachable_blocks()
    found: List[Diagnostic] = []
    for block in cfg.blocks:
        if block.index in reachable or block.is_padding or len(block) == 0:
            continue
        found.append(
            Diagnostic(
                "warning", "unreachable",
                f"unreachable block of {len(block)} instruction(s)",
                address=cfg.address_of(block),
            )
        )
    return found


def _instruction_reads(instr: Instruction) -> Tuple[int, ...]:
    fmt = instr.format
    if fmt is Format.R or fmt is Format.B:
        return (instr.rs1, instr.rs2)
    if fmt is Format.STORE:
        return (instr.rs1, instr.rs2)
    if fmt in (Format.I, Format.LOAD, Format.JR):
        return (instr.rs1,)
    if instr.opcode is Opcode.ECALL:
        return (_A0,)
    return ()


def _instruction_defs(instr: Instruction) -> Tuple[int, ...]:
    fmt = instr.format
    if fmt in (Format.R, Format.I, Format.LOAD, Format.J, Format.JR,
               Format.U):
        return (instr.rd,) if instr.rd != 0 else ()
    if instr.opcode is Opcode.ECALL:
        return (_A0,)
    return ()


def _check_use_before_def(cfg: ControlFlowGraph) -> List[Diagnostic]:
    """Must-defined dataflow per function; warn on temporary reads that
    can see an undefined (or call-clobbered) register."""
    program = cfg.program
    entries = sorted(cfg.function_entries)

    def function_of(block_id: int) -> int:
        pos = bisect_right(entries, block_id)
        return entries[pos - 1] if pos else cfg.entry

    # out-state per block, initialised to TOP (all defined); the transfer
    # function is monotone decreasing, so the worklist terminates
    out_state: Dict[int, int] = {b.index: _ALL_MASK for b in cfg.blocks}
    in_state: Dict[int, int] = {}
    reachable = cfg.reachable_blocks()
    worklist = deque(sorted(reachable))
    queued = set(worklist)
    while worklist:
        block_id = worklist.popleft()
        queued.discard(block_id)
        block = cfg.blocks[block_id]
        if block_id in cfg.function_entries or block_id == cfg.entry:
            state = _ENTRY_MASK
        else:
            fn = function_of(block_id)
            preds = [
                p for p in cfg.predecessors.get(block_id, ())
                if function_of(p) == fn
            ]
            if preds:
                state = _ALL_MASK
                for p in preds:
                    state &= out_state[p]
            else:
                state = _ALL_MASK  # no in-function path: stay silent
        in_state[block_id] = state
        new_out = _transfer(program, block, state, None)
        if new_out != out_state[block_id]:
            out_state[block_id] = new_out
            for succ in block.successors:
                if succ in reachable and succ not in queued:
                    worklist.append(succ)
                    queued.add(succ)

    # reporting pass over the fixpoint states
    seen: Set[Tuple[int, int]] = set()
    found: List[Diagnostic] = []

    def report(pc: int, reg: int) -> None:
        if (pc, reg) in seen:
            return
        seen.add((pc, reg))
        found.append(
            Diagnostic(
                "warning", "use-before-def",
                f"register {register_name(reg)} may be read before it is "
                "written in this function",
                address=pc,
            )
        )

    for block_id in sorted(reachable):
        block = cfg.blocks[block_id]
        _transfer(
            program, block, in_state.get(block_id, _ALL_MASK), report
        )
    return found


def _transfer(
    program: Program,
    block,
    state: int,
    report,
) -> int:
    """Walk a block, updating the defined-register mask; optionally report
    undefined temporary reads via *report(pc, reg)*."""
    for i in range(block.start, block.end):
        instr = program.instructions[i]
        if report is not None:
            for reg in _instruction_reads(instr):
                if reg in _TEMPORARIES and not (state >> reg) & 1:
                    report(program.address_of(i), reg)
        for reg in _instruction_defs(instr):
            state |= 1 << reg
        if instr.is_call:
            # the callee clobbers caller-saved registers; a0 returns a
            # value and ra holds the link
            state &= ~_CALLER_MASK
            state |= (1 << _A0) | (1 << _RA)
    return state
