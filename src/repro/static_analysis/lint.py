"""Static lint/verifier pass over assembled programs.

Structured diagnostics for the defects the assembler cannot (or does not)
reject.  The register rules all run on the generic dataflow engine in
:mod:`.dataflow` — must-defined for use-before-def, liveness for dead
stores, reaching definitions for loop-invariant branch conditions.

=================================  ========  ================================
code                               severity  meaning
=================================  ========  ================================
``asm-error``                      error     source failed to assemble
                                             (undefined or duplicate label,
                                             syntax error) — only produced
                                             by :func:`lint_source`
``branch-to-data``                 error     branch/jump target outside the
                                             text segment
``fallthrough-end``                error     a reachable path runs off the
                                             end of text
``unreachable``                    warning   basic block no control path
                                             reaches, entered by fallthrough
                                             from other dead code
``unreachable-after-unconditional``  warning  basic block no control path
                                             reaches, sitting right after an
                                             unconditional transfer (jump,
                                             return, halt) — the common
                                             orphaned-label shape (the
                                             assembler's ``.skip`` scatter
                                             padding is recognised and
                                             suppressed)
``use-before-def``                 warning   a caller-saved temporary read
                                             before any write on some path
                                             from the function entry
                                             (including clobbers across
                                             calls)
``dead-store``                     warning   a write to a temporary register
                                             that no path reads before it is
                                             overwritten, clobbered by a
                                             call, or control leaves the
                                             function
``loop-invariant-branch``          warning   a conditional branch inside a
                                             loop whose condition registers
                                             have no reaching definition in
                                             the loop body — it decides the
                                             same way every iteration
``jump-table-conflict``            warning   an address-taken (jump-table)
                                             label that ordinary control
                                             flow also enters — the block
                                             has both indirect-jump and
                                             direct/fallthrough predecessors
``empty-program``                  warning   the text segment holds no
                                             instructions
=================================  ========  ================================

Register discipline: at a function entry ``zero``/``ra``/``sp``/``gp``/
``tp``, the arguments ``a0``–``a7`` and the callee-saved ``s0``–``s11``
are considered defined; the temporaries ``t0``–``t6`` are not.  A call
clobbers every caller-saved register except the ``a0`` return value; an
``ecall`` reads and redefines ``a0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from ..asm.lexer import AsmSyntaxError
from ..isa.program import Program
from ..isa.registers import register_name
from .cfg import ControlFlowGraph, build_cfg
from .dataflow import (
    A0 as _A0,
    CALLER_SAVED,
    RA as _RA,
    TEMPORARIES,
    LiveRegisters,
    MustDefinedRegisters,
    ReachingDefinitions,
    instruction_defs,
    instruction_reads,
    mask_of,
    solve,
)

_CALLER_MASK = mask_of(CALLER_SAVED)
from .loops import LoopForest, find_loops


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    Attributes:
        severity: ``"error"`` or ``"warning"``.
        code: stable machine-readable code (see module docstring).
        message: human-readable description.
        address: text address the finding anchors to (None for
            program-level findings).
    """

    severity: str
    code: str
    message: str
    address: Optional[int] = None

    def render(self) -> str:
        where = f"0x{self.address:08x}: " if self.address is not None else ""
        return f"{self.severity}: {where}{self.message} [{self.code}]"

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (for the CLI envelope)."""
        return {
            "severity": self.severity,
            "code": self.code,
            "message": self.message,
            "address": self.address,
        }


@dataclass
class LintReport:
    """All diagnostics for one program."""

    name: str
    diagnostics: Tuple[Diagnostic, ...]

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when there are no errors (warnings allowed)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """True when there are no diagnostics at all."""
        return not self.diagnostics

    def render(self) -> str:
        if self.clean:
            return f"{self.name}: clean"
        lines = [f"{self.name}: {len(self.errors)} error(s), "
                 f"{len(self.warnings)} warning(s)"]
        lines.extend(f"  {d.render()}" for d in self.diagnostics)
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (for the CLI envelope)."""
        return {
            "name": self.name,
            "ok": self.ok,
            "clean": self.clean,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }


def lint_program(
    program: Program, check_registers: bool = True
) -> LintReport:
    """Run every program-level check on *program*.

    Args:
        program: an assembled program.
        check_registers: include the dataflow-backed register checks
            (use-before-def, dead-store, loop-invariant-branch — the
            checks whose cost grows with program size).
    """
    diagnostics: List[Diagnostic] = []
    if not program.instructions:
        diagnostics.append(
            Diagnostic("warning", "empty-program",
                       "program has no instructions")
        )
        return LintReport(program.name, tuple(diagnostics))

    cfg = build_cfg(program)
    diagnostics.extend(_check_branch_targets(program))
    diagnostics.extend(_check_fallthrough(cfg))
    diagnostics.extend(_check_unreachable(cfg))
    diagnostics.extend(_check_jump_table_conflicts(cfg))
    if check_registers:
        diagnostics.extend(_check_use_before_def(cfg))
        diagnostics.extend(_check_dead_stores(cfg))
        diagnostics.extend(_check_loop_invariant_branches(cfg))
    diagnostics.sort(
        key=lambda d: (d.address if d.address is not None else -1, d.code)
    )
    return LintReport(program.name, tuple(diagnostics))


def lint_source(source: str, name: str = "<asm>") -> LintReport:
    """Assemble *source* and lint the result.

    Assembly failures (undefined/duplicate labels, syntax errors) become
    ``asm-error`` diagnostics instead of exceptions, so callers get one
    uniform report type.
    """
    from ..asm.assembler import assemble

    try:
        program = assemble(source, name=name)
    except AsmSyntaxError as exc:
        return LintReport(
            name,
            (Diagnostic("error", "asm-error", str(exc)),),
        )
    return lint_program(program)


# -- individual checks ------------------------------------------------------


def _check_branch_targets(program: Program) -> List[Diagnostic]:
    found: List[Diagnostic] = []
    for i, instr in enumerate(program.instructions):
        if not (instr.is_conditional_branch or instr.is_direct_jump):
            continue
        source = program.address_of(i)
        target = source + instr.imm
        if not program.in_text(target):
            kind = "branch" if instr.is_conditional_branch else "jump"
            found.append(
                Diagnostic(
                    "error", "branch-to-data",
                    f"{kind} target 0x{target:08x} is outside the text "
                    "segment",
                    address=source,
                )
            )
    return found


def _check_fallthrough(cfg: ControlFlowGraph) -> List[Diagnostic]:
    last = cfg.blocks[-1]
    if last.is_padding and len(cfg.blocks) > 1:
        # trailing scatter padding is never executed
        return []
    terminator = cfg.terminator(last)
    if terminator.falls_through:
        return [
            Diagnostic(
                "error", "fallthrough-end",
                "execution can fall through the final instruction of the "
                "text segment",
                address=cfg.program.address_of(last.end - 1),
            )
        ]
    return []


def _check_unreachable(cfg: ControlFlowGraph) -> List[Diagnostic]:
    reachable = cfg.reachable_blocks()
    found: List[Diagnostic] = []
    for block in cfg.blocks:
        if block.index in reachable or block.is_padding or len(block) == 0:
            continue
        # orphaned label right after a jump/return/halt, or dead code only
        # entered by fallthrough from other dead code?
        preceding = (
            cfg.program.instructions[block.start - 1]
            if block.start > 0 else None
        )
        after_unconditional = (
            preceding is None or not preceding.falls_through
        )
        found.append(
            Diagnostic(
                "warning",
                "unreachable-after-unconditional" if after_unconditional
                else "unreachable",
                f"unreachable block of {len(block)} instruction(s)"
                + (" after an unconditional transfer"
                   if after_unconditional else ""),
                address=cfg.address_of(block),
            )
        )
    return found


def _check_jump_table_conflicts(cfg: ControlFlowGraph) -> List[Diagnostic]:
    """Address-taken labels that ordinary control flow also enters.

    Such a block has two kinds of predecessors — indirect jumps (via the
    jump table) and direct branches or fallthrough — which defeats any
    single-entry region assumption (superblock formation must end a
    region at it) and usually signals a label doing double duty."""
    found: List[Diagnostic] = []
    for block_id in sorted(cfg.indirect_targets):
        direct = [
            p for p in cfg.predecessors.get(block_id, ())
            if not cfg.terminator(cfg.blocks[p]).is_indirect_jump
        ]
        if direct:
            found.append(
                Diagnostic(
                    "warning", "jump-table-conflict",
                    "jump-table target is also entered by direct control "
                    f"flow from {len(direct)} block(s)",
                    address=cfg.address_of(cfg.blocks[block_id]),
                )
            )
    return found


def _check_use_before_def(cfg: ControlFlowGraph) -> List[Diagnostic]:
    """Must-defined dataflow per function; warn on temporary reads that
    can see an undefined (or call-clobbered) register."""
    program = cfg.program
    result = solve(cfg, MustDefinedRegisters(cfg))

    seen: Set[Tuple[int, int]] = set()
    found: List[Diagnostic] = []
    for block_id in sorted(cfg.reachable_blocks()):
        block = cfg.blocks[block_id]
        state = result.in_states[block_id]
        for i in range(block.start, block.end):
            instr = program.instructions[i]
            for reg in instruction_reads(instr):
                if (
                    reg in TEMPORARIES
                    and not (state >> reg) & 1
                    and (program.address_of(i), reg) not in seen
                ):
                    seen.add((program.address_of(i), reg))
                    found.append(
                        Diagnostic(
                            "warning", "use-before-def",
                            f"register {register_name(reg)} may be read "
                            "before it is written in this function",
                            address=program.address_of(i),
                        )
                    )
            for reg in instruction_defs(instr):
                state |= 1 << reg
            if instr.is_call:
                # mirror MustDefinedRegisters.transfer: the callee
                # clobbers caller-saved registers, a0/ra come back defined
                state &= ~_CALLER_MASK
                state |= (1 << _A0) | (1 << _RA)
    return found


def _check_dead_stores(cfg: ControlFlowGraph) -> List[Diagnostic]:
    """Liveness-backed dead stores to temporaries.

    Only the temporaries are judged: writes to callee-saved registers,
    arguments and the return value have conventions attached that make
    "never read again inside this program" a weak signal."""
    program = cfg.program
    result = solve(cfg, LiveRegisters())
    found: List[Diagnostic] = []
    for block_id in sorted(cfg.reachable_blocks()):
        block = cfg.blocks[block_id]
        hits: List[Tuple[int, int]] = []

        def observe(i: int, live_after: int) -> None:
            instr = program.instructions[i]
            if instr.is_call:
                return
            for reg in instruction_defs(instr):
                if reg in TEMPORARIES and not (live_after >> reg) & 1:
                    hits.append((i, reg))

        LiveRegisters.through_block(
            cfg, block, result.out_states[block_id], observe
        )
        for i, reg in sorted(hits):
            found.append(
                Diagnostic(
                    "warning", "dead-store",
                    f"value written to {register_name(reg)} is never read "
                    "(overwritten, clobbered by a call, or dead at "
                    "function exit)",
                    address=program.address_of(i),
                )
            )
    return found


def _check_loop_invariant_branches(
    cfg: ControlFlowGraph, forest: Optional[LoopForest] = None
) -> List[Diagnostic]:
    """Branches inside loops whose condition cannot change across
    iterations: no reaching definition of any condition register lies in
    the loop body, so the branch decides identically every time."""
    forest = forest if forest is not None else find_loops(cfg)
    if not forest.loops:
        return []
    problem = ReachingDefinitions(cfg)
    result = solve(cfg, problem)
    program = cfg.program
    found: List[Diagnostic] = []
    for pc, block_id in cfg.conditional_branches():
        loop = forest.innermost(block_id)
        if loop is None:
            continue
        block = cfg.blocks[block_id]
        # reaching-def state just before the terminator
        state = list(result.in_states[block_id])
        for i in range(block.start, block.end - 1):
            instr = program.instructions[i]
            for reg in problem._defined_regs(instr):
                state[reg] = 1 << problem._site_bit[(reg, i)]
        branch = program.instructions[block.end - 1]
        condition_regs = [r for r in instruction_reads(branch) if r != 0]
        if not condition_regs:
            continue  # compares against zero only: trivially invariant
        body_blocks = loop.body
        invariant = True
        for reg in condition_regs:
            for site in problem.sites_reaching(tuple(state), reg):
                if site is problem.ENTRY_SITE:
                    continue
                if cfg.block_at(site).index in body_blocks:
                    invariant = False
                    break
            if not invariant:
                break
        if invariant:
            names = ", ".join(
                register_name(r) for r in sorted(set(condition_regs))
            )
            found.append(
                Diagnostic(
                    "warning", "loop-invariant-branch",
                    f"branch condition ({names}) has no definition inside "
                    "the enclosing loop; it resolves the same way every "
                    "iteration",
                    address=pc,
                )
            )
    return found
