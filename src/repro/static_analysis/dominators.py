"""Dominator computation (Cooper–Harvey–Kennedy iterative algorithm).

Works on the block graph of a :class:`~repro.static_analysis.cfg.ControlFlowGraph`.
Because an assembled program is a whole image — an entry point plus many
functions only reachable through calls — the tree is rooted at a *virtual*
root with edges to the entry and every function entry, so every reachable
block has a well-defined immediate dominator without stitching the call
graph into the CFG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from .cfg import ControlFlowGraph

#: Sentinel block id for the virtual root.
VIRTUAL_ROOT = -1


@dataclass
class DominatorTree:
    """Immediate-dominator relation over reachable blocks.

    Attributes:
        idom: block id -> immediate dominator block id (``VIRTUAL_ROOT``
            for roots).  Unreachable blocks are absent.
        rpo: reverse postorder of the reachable blocks (roots first).
    """

    idom: Dict[int, int]
    rpo: List[int]

    def dominates(self, a: int, b: int) -> bool:
        """True if *a* dominates *b* (reflexively)."""
        node: Optional[int] = b
        while node is not None and node != VIRTUAL_ROOT:
            if node == a:
                return True
            node = self.idom.get(node)
        return a == VIRTUAL_ROOT

    def dominators_of(self, block_id: int) -> List[int]:
        """The dominator chain of *block_id*, nearest first."""
        chain: List[int] = []
        node = self.idom.get(block_id)
        while node is not None and node != VIRTUAL_ROOT:
            chain.append(node)
            node = self.idom.get(node)
        return chain


def compute_dominators(
    cfg: ControlFlowGraph, roots: Optional[Iterable[int]] = None
) -> DominatorTree:
    """Compute immediate dominators for every reachable block.

    Args:
        cfg: the control-flow graph.
        roots: root block ids; defaults to the entry plus all function
            entries (every place control can materialise from outside
            the intra-procedural edges).
    """
    root_set = (
        set(roots) if roots is not None
        else {cfg.entry, *cfg.function_entries}
    )

    # reverse postorder from the virtual root
    order: List[int] = []
    seen: Set[int] = set()
    # iterative DFS with explicit finish events, deterministic order
    stack = [(r, False) for r in sorted(root_set, reverse=True)]
    while stack:
        node, finished = stack.pop()
        if finished:
            order.append(node)
            continue
        if node in seen:
            continue
        seen.add(node)
        stack.append((node, True))
        for succ in reversed(cfg.blocks[node].successors):
            if succ not in seen:
                stack.append((succ, False))
    rpo = list(reversed(order))
    rpo_index = {block_id: i for i, block_id in enumerate(rpo)}

    preds: Dict[int, List[int]] = {
        block_id: [
            p for p in cfg.predecessors.get(block_id, ()) if p in rpo_index
        ]
        for block_id in rpo
    }

    idom: Dict[int, int] = {r: VIRTUAL_ROOT for r in root_set}

    def intersect(a: int, b: int) -> int:
        while a != b:
            if a == VIRTUAL_ROOT or b == VIRTUAL_ROOT:
                return VIRTUAL_ROOT
            while rpo_index[a] > rpo_index[b]:
                a = idom[a]
                if a == VIRTUAL_ROOT:
                    return VIRTUAL_ROOT
            while rpo_index[b] > rpo_index[a]:
                b = idom[b]
                if b == VIRTUAL_ROOT:
                    return VIRTUAL_ROOT
        return a

    changed = True
    while changed:
        changed = False
        for block_id in rpo:
            if block_id in root_set:
                continue
            candidates = [p for p in preds[block_id] if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(new_idom, p)
            if idom.get(block_id) != new_idom:
                idom[block_id] = new_idom
                changed = True

    return DominatorTree(idom=idom, rpo=rpo)
