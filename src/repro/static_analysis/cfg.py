"""Control-flow graph construction over assembled programs.

The CFG is the substrate every other static pass consumes: basic blocks
split at branch targets and control transfers, edges derived from the
terminator kind, and the call/function structure recovered from ``jal``
links.  Nothing here looks at a trace — the point of the subsystem is to
predict branch behaviour *without* running the program.

Computed-jump conservatism: ``jalr`` has no static target, so its
successors are taken to be every address-taken text label (the assembler
records ``.word label`` jump-table entries on the
:class:`~repro.isa.program.Program`); a non-linking ``jalr`` with no known
table is treated as a return.  Linking jumps (``call``) get a fallthrough
edge — the callee is assumed to return — and the call target is recorded
as a function entry rather than an intra-procedural edge, so loops never
leak across function boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..isa.instructions import Instruction
from ..isa.program import INSTRUCTION_SIZE, Program


@dataclass(frozen=True)
class BasicBlock:
    """A maximal straight-line instruction run.

    Attributes:
        index: block id (position in address order).
        start: index of the first instruction (into ``program.instructions``).
        end: one past the last instruction.
        successors: block ids control may transfer to.
        is_padding: True if every instruction is the assembler's ``.skip``
            filler (never-executed scatter padding between functions).
    """

    index: int
    start: int
    end: int
    successors: Tuple[int, ...] = ()
    is_padding: bool = False

    def __len__(self) -> int:
        return self.end - self.start


@dataclass
class ControlFlowGraph:
    """Basic blocks, edges and function structure of one program.

    Attributes:
        program: the analysed program.
        blocks: all basic blocks in address order.
        entry: block id of the program entry point.
        function_entries: block ids that start a function (the entry point
            and every ``call`` target).
        indirect_targets: blocks whose address is taken (jump-table
            labels).  They stay inside their enclosing function — they are
            extra reachability roots, not function boundaries.
        call_sites: (caller block id, callee entry block id) pairs.
        predecessors: reverse edges, by block id.
    """

    program: Program
    blocks: List[BasicBlock]
    entry: int
    function_entries: FrozenSet[int]
    indirect_targets: FrozenSet[int]
    call_sites: Tuple[Tuple[int, int], ...]
    predecessors: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    _block_of: Dict[int, int] = field(default_factory=dict)

    @property
    def block_count(self) -> int:
        return len(self.blocks)

    @property
    def edge_count(self) -> int:
        return sum(len(b.successors) for b in self.blocks)

    def block_at(self, instr_index: int) -> BasicBlock:
        """The block containing the instruction at *instr_index*."""
        return self.blocks[self._block_of[instr_index]]

    def block_at_address(self, address: int) -> BasicBlock:
        """The block containing the instruction at byte *address*."""
        return self.block_at(self.program.index_of(address))

    def instructions_in(self, block: BasicBlock) -> List[Instruction]:
        """The instructions of *block*, in order."""
        return self.program.instructions[block.start : block.end]

    def terminator(self, block: BasicBlock) -> Instruction:
        """The last instruction of *block*."""
        return self.program.instructions[block.end - 1]

    def address_of(self, block: BasicBlock) -> int:
        """Byte address of the first instruction of *block*."""
        return self.program.address_of(block.start)

    def conditional_branches(self) -> List[Tuple[int, int]]:
        """(branch PC, owning block id) for every conditional branch."""
        found = []
        for block in self.blocks:
            for i in range(block.start, block.end):
                if self.program.instructions[i].is_conditional_branch:
                    found.append((self.program.address_of(i), block.index))
        return found

    def reachable_blocks(self) -> Set[int]:
        """Block ids reachable from the entry, a function entry, or an
        address-taken label (the conservative root set)."""
        seen: Set[int] = set()
        frontier = [self.entry, *self.function_entries, *self.indirect_targets]
        while frontier:
            block_id = frontier.pop()
            if block_id in seen:
                continue
            seen.add(block_id)
            frontier.extend(self.blocks[block_id].successors)
        return seen

    def owning_function(self, block_id: int) -> int:
        """The function entry a block belongs to (nearest entry at or
        before it in address order — the symbol-extent attribution used
        throughout the toolchain)."""
        best = self.entry
        for entry in self.function_entries:
            if entry <= block_id and entry > best:
                best = entry
        # blocks before the first entry belong to the program entry
        return best if best <= block_id else self.entry

    def edges(self) -> Iterator[Tuple[int, int]]:
        """All (source block id, destination block id) edges."""
        for block in self.blocks:
            for succ in block.successors:
                yield block.index, succ


def _padding_run(instr: Instruction) -> bool:
    """True for the assembler's `.skip` filler word (a canonical nop)."""
    return (
        instr.opcode.name == "ADDI"
        and instr.rd == 0
        and instr.rs1 == 0
        and instr.imm == 0
    )


def build_cfg(program: Program) -> ControlFlowGraph:
    """Build the control-flow graph of *program*.

    Leaders are the entry point, every static branch/jump target, every
    call target and address-taken label, and every instruction following a
    control transfer.  Successor edges follow the terminator semantics
    described in the module docstring.
    """
    instrs = program.instructions
    n = len(instrs)
    if n == 0:
        entry_block = BasicBlock(index=0, start=0, end=0)
        return ControlFlowGraph(
            program=program,
            blocks=[entry_block],
            entry=0,
            function_entries=frozenset(),
            indirect_targets=frozenset(),
            call_sites=(),
            predecessors={0: ()},
            _block_of={},
        )

    jump_targets = program.jump_table_targets()
    entry_index = _safe_index(program, program.entry_point) or 0

    # -- leaders ----------------------------------------------------------
    leaders: Set[int] = {0, entry_index}
    call_target_indices: Set[int] = set()
    for i, instr in enumerate(instrs):
        if instr.is_conditional_branch or instr.is_direct_jump:
            target = _safe_index(program, program.address_of(i) + instr.imm)
            if target is not None:
                leaders.add(target)
                if instr.is_call:
                    call_target_indices.add(target)
        if (instr.is_control or instr.is_halt) and i + 1 < n:
            leaders.add(i + 1)
    for address in jump_targets:
        leaders.add(program.index_of(address))

    ordered = sorted(leaders)
    block_index_of_leader = {leader: i for i, leader in enumerate(ordered)}

    # -- blocks and edges -------------------------------------------------
    blocks: List[BasicBlock] = []
    block_of: Dict[int, int] = {}
    call_sites: List[Tuple[int, int]] = []
    for bi, start in enumerate(ordered):
        end = ordered[bi + 1] if bi + 1 < len(ordered) else n
        for i in range(start, end):
            block_of[i] = bi
        terminator = instrs[end - 1]
        successors: List[int] = []

        def link(instr_index: Optional[int]) -> None:
            if instr_index is not None and instr_index in block_index_of_leader:
                successors.append(block_index_of_leader[instr_index])

        term_addr = program.address_of(end - 1)
        if terminator.is_conditional_branch:
            link(_safe_index(program, term_addr + terminator.imm))
            if end < n:
                link(end)
        elif terminator.is_direct_jump:
            target = _safe_index(program, term_addr + terminator.imm)
            if terminator.is_call:
                if target is not None:
                    call_sites.append((bi, block_index_of_leader[target]))
                if end < n:
                    link(end)  # the callee returns here
            else:
                link(target)
        elif terminator.is_indirect_jump:
            if terminator.is_call:
                # indirect call: conservatively, any jump-table label
                # could be the callee; control resumes at the fallthrough
                for address in sorted(jump_targets):
                    call_sites.append(
                        (bi, block_index_of_leader[program.index_of(address)])
                    )
                if end < n:
                    link(end)
            elif not terminator.is_return:
                # computed jump: conservatively, any jump-table label
                for address in sorted(jump_targets):
                    link(program.index_of(address))
            # returns have no intra-procedural successors
        elif terminator.is_halt:
            pass
        elif end < n:
            link(end)  # plain fallthrough into the next leader

        padding = all(_padding_run(instrs[i]) for i in range(start, end))
        blocks.append(
            BasicBlock(
                index=bi,
                start=start,
                end=end,
                successors=tuple(dict.fromkeys(successors)),
                is_padding=padding,
            )
        )

    # de-duplicate call sites, preserve discovery order
    unique_calls = tuple(dict.fromkeys(call_sites))
    function_entries = frozenset(
        {block_index_of_leader[entry_index]}
        | {block_index_of_leader[i] for i in call_target_indices}
    )
    indirect_targets = frozenset(
        block_index_of_leader[program.index_of(address)]
        for address in jump_targets
    )

    predecessors: Dict[int, List[int]] = {b.index: [] for b in blocks}
    for block in blocks:
        for succ in block.successors:
            predecessors[succ].append(block.index)

    return ControlFlowGraph(
        program=program,
        blocks=blocks,
        entry=block_index_of_leader[entry_index],
        function_entries=function_entries,
        indirect_targets=indirect_targets,
        call_sites=unique_calls,
        predecessors={
            bid: tuple(preds) for bid, preds in predecessors.items()
        },
        _block_of=block_of,
    )


def _safe_index(program: Program, address: int) -> Optional[int]:
    """Instruction index of *address*, or None when it leaves the text
    segment (the lint pass reports those as branch-to-data)."""
    offset = address - program.text_base
    if offset % INSTRUCTION_SIZE:
        return None
    index = offset // INSTRUCTION_SIZE
    if not 0 <= index < len(program.instructions):
        return None
    return index
