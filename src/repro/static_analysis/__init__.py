"""Static CFG analysis: profile-free conflict estimation + assembly lint.

The paper's §5 branch allocation is *compiler-controlled* — it presumes the
compiler can decide, before the program ever runs, which static branches
will interleave.  This package supplies that static view over assembled
:class:`~repro.isa.program.Program` objects:

* :mod:`.cfg` — basic blocks and control-flow edges (with computed-jump
  conservatism via assembler-recorded jump tables);
* :mod:`.dominators` — immediate dominators (Cooper–Harvey–Kennedy);
* :mod:`.loops` — natural loops and the loop nesting forest;
* :mod:`.estimator` — a predicted
  :class:`~repro.analysis.conflict_graph.ConflictGraph` from shared-loop
  structure, letting :class:`~repro.allocation.allocator.BranchAllocator`
  run with **no profiling or simulation step**;
* :mod:`.lint` — structured diagnostics (unreachable code, branch-to-data,
  fallthrough off text, use-before-def).
"""

from .cfg import BasicBlock, ControlFlowGraph, build_cfg
from .dominators import VIRTUAL_ROOT, DominatorTree, compute_dominators
from .estimator import (
    DEFAULT_LOOP_ITERS,
    StaticConflictEstimate,
    StaticConflictEstimator,
    estimate_conflict_graph,
)
from .lint import Diagnostic, LintReport, lint_program, lint_source
from .loops import LoopForest, NaturalLoop, find_loops

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "DEFAULT_LOOP_ITERS",
    "Diagnostic",
    "DominatorTree",
    "LintReport",
    "LoopForest",
    "NaturalLoop",
    "StaticConflictEstimate",
    "StaticConflictEstimator",
    "VIRTUAL_ROOT",
    "build_cfg",
    "compute_dominators",
    "estimate_conflict_graph",
    "find_loops",
    "lint_program",
    "lint_source",
]
